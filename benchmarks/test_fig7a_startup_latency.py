"""Figure 7a — MRNet micro-benchmark: tool instantiation latency.

Paper series: "Flat", "4-way Fanout", "8-way Fanout" over 0–600
back-ends; flat climbs to ≈ 850–900 s (serialized rsh) while the tree
curves grow "quite slowly" because MRNet creates the process tree in
parallel (§4.1).
"""

import pytest

from repro.evaluation import DEFAULT_BACKEND_SWEEP, fig7a_instantiation

BACKENDS = DEFAULT_BACKEND_SWEEP


def run_sweep():
    _, rows = fig7a_instantiation(BACKENDS)
    return rows


@pytest.mark.benchmark(group="fig7a")
def test_fig7a_instantiation_latency(benchmark, report):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        "fig7a_startup_latency",
        "Figure 7a: tool instantiation latency (seconds)",
        ["back-ends", "flat", "4-way", "8-way"],
        rows,
    )
    by_n = {r[0]: r for r in rows}
    # Shape: flat grows ~linearly with a large per-launch constant and
    # lands in the paper's 750–1000 s band at 600 back-ends.
    assert 750 < by_n[600][1] < 1000
    assert by_n[600][1] / by_n[128][1] == pytest.approx(600 / 128, rel=0.15)
    # Trees stay below ~60 s and grow sub-linearly.
    for n, flat, t4, t8 in rows:
        assert t4 <= flat + 1e-9 and t8 <= flat + 1e-9
    assert by_n[600][2] < 60 and by_n[600][3] < 60
    assert by_n[600][2] / by_n[128][2] < 2.0
    # Crossover: trees win decisively beyond ~64 back-ends.
    assert by_n[600][1] / by_n[600][2] > 15
