"""Start-up latency and co-located link throughput (paper §2.5, Fig 7a).

Two scenarios, both comparing the PR-5 runtime against its serial
strawman:

1. **startup_64leaf_depth3** — full ``Network()`` instantiation of a
   64-leaf, depth-3 (fan-out 4) process tree.  Baseline: the
   sequential builder (one Popen + ``LISTENING`` read per internal
   node, serial back-end attaches).  New: parallel recursive
   instantiation — each comm node spawns its own subtree, listener
   addresses travel up the data plane, and back-end attaches run
   concurrently.  The paper's Figure 7a point: start-up should scale
   with tree *depth*, not node count.

2. **shm_relay_hop** — packets/s through one co-located link carrying
   relay-hop shaped traffic (8-packet batches of ``%ad`` arrays, the
   adaptive-flush frame size an internal process actually forwards).
   Baseline: loopback TCP.  New: the shared-memory ring transport
   negotiated on the same listener.

3. **colocated_1000node** — a 1000-leaf, depth-3 (fan-out 10) tree
   hosted entirely in one process by ``Network(colocate=True)``: all
   110 internal nodes share ONE selector-loop thread with comm-to-comm
   edges on in-process deque links.  The gated "speedup" is the
   steady-state thread-census reduction (threads the solo runtime
   would spend — one per internal node — over threads the colocated
   host actually spends), a structural ratio that cannot flake;
   ``colocated_startup_s`` and a live SUM wave are recorded as
   evidence the tree instantiates in single-digit seconds and works.

Writes ``BENCH_startup.json`` (repo root by default) with all
numbers plus speedups; ``--smoke`` runs a fast sanity pass for CI
(smaller tree, fewer frames) whose ratios are gated against the
committed smoke references by ``check_regression.py``.

Usage::

   PYTHONPATH=src python benchmarks/bench_startup.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.batching import encode_batch  # noqa: E402
from repro.core.network import Network  # noqa: E402
from repro.core.packet import Packet  # noqa: E402
from repro.topology.generators import balanced_tree  # noqa: E402
from repro.transport.channel import Inbox  # noqa: E402
from repro.transport.shm import live_segments  # noqa: E402
from repro.transport.tcp import TcpListener, tcp_connect_retry  # noqa: E402


# -- scenario 1: instantiation latency --------------------------------------


def time_startup(topology, instantiation: str) -> float:
    """Seconds for one full ``Network()`` bring-up (ready included)."""
    t0 = time.monotonic()
    net = Network(
        topology, transport="process", instantiation=instantiation, shm="off"
    )
    elapsed = time.monotonic() - t0
    net.shutdown()
    return elapsed


def bench_startup(fanout: int, depth: int, rounds: int) -> dict:
    seq = rec = float("inf")
    for _ in range(rounds):
        seq = min(seq, time_startup(balanced_tree(fanout, depth), "sequential"))
        rec = min(rec, time_startup(balanced_tree(fanout, depth), "recursive"))
    return {
        "fanout": fanout,
        "depth": depth,
        "backends": fanout**depth,
        "internal_nodes": sum(fanout**d for d in range(1, depth)),
        "rounds": rounds,
        "sequential_s": round(seq, 4),
        "recursive_s": round(rec, 4),
        "speedup": round(seq / rec, 2),
    }


# -- scenario 2: co-located link throughput ---------------------------------


def relay_frame(packets_per_message: int, elements: int) -> bytes:
    """One relay-hop wire frame: a batch of array-bearing packets."""
    values = tuple(range(elements))
    packets = [
        Packet(5, 200 + i, "%ad", (values,))
        for i in range(packets_per_message)
    ]
    return bytes(encode_batch(packets))


def measure_link_pps(shm: bool, frame: bytes, n_frames: int, ppm: int) -> float:
    """Packets/s across one link: a sender thread blasts *n_frames*
    while the main thread drains the receiving inbox."""
    inbox = Inbox()
    listener = TcpListener(inbox)
    peer_inbox = Inbox()
    result = {}

    def connect():
        result["end"] = tcp_connect_retry(
            listener.address, peer_inbox, shm=shm
        )

    t = threading.Thread(target=connect)
    t.start()
    server_end = listener.accept(timeout=10)
    t.join()
    client = result["end"]
    if shm:
        assert client.transport_kind == "shm", "upgrade was refused"

    t0 = time.monotonic()
    sender = threading.Thread(
        target=lambda: [client.send(frame) for _ in range(n_frames)]
    )
    sender.start()
    got = 0
    while got < n_frames:
        _, payload = inbox.get(timeout=30)
        assert payload is not None, "link died mid-benchmark"
        got += 1
    elapsed = time.monotonic() - t0
    sender.join()
    client.close()
    server_end.close()
    listener.close()
    # Let reader threads release their ring mappings before the next
    # measurement (and before interpreter exit: the resource tracker
    # warns about segments still mapped at shutdown).
    deadline = time.monotonic() + 5
    while live_segments() and time.monotonic() < deadline:
        time.sleep(0.01)
    return n_frames * ppm / elapsed


def bench_shm_relay(
    n_frames: int, repeats: int, packets_per_message: int = 8,
    elements: int = 2048,
) -> dict:
    frame = relay_frame(packets_per_message, elements)
    tcp_pps = shm_pps = 0.0
    for _ in range(repeats):
        tcp_pps = max(
            tcp_pps, measure_link_pps(False, frame, n_frames, packets_per_message)
        )
        shm_pps = max(
            shm_pps, measure_link_pps(True, frame, n_frames, packets_per_message)
        )
    return {
        "packets_per_message": packets_per_message,
        "elements": elements,
        "frame_bytes": len(frame),
        "frames": n_frames,
        "repeats": repeats,
        "tcp_pps": round(tcp_pps),
        "shm_pps": round(shm_pps),
        "speedup": round(shm_pps / tcp_pps, 2),
    }


# -- scenario 3: colocated thread census ------------------------------------


def bench_colocated(fanout: int, depth: int) -> dict:
    """Whole tree in one process on one shared event-loop thread."""
    from repro.filters import TFILTER_SUM

    before = set(threading.enumerate())
    t0 = time.monotonic()
    net = Network(balanced_tree(fanout, depth), colocate=True)
    startup_s = time.monotonic() - t0
    host_threads = len(
        [t for t in threading.enumerate() if t not in before]
    )
    n_internal = len(net._commnodes)
    try:
        stream = net.new_stream(
            net.get_broadcast_communicator(), transform=TFILTER_SUM
        )
        t0 = time.monotonic()
        stream.send("%d", 0)
        for rank in sorted(net.backends):
            _, s = net.backends[rank].recv(timeout=30)
            s.send("%d", 1)
        result = stream.recv(timeout=30)
        wave_s = time.monotonic() - t0
        assert result.values == (len(net.backends),), "wave corrupted"
    finally:
        net.shutdown()
    return {
        "fanout": fanout,
        "depth": depth,
        "backends": fanout**depth,
        "internal_nodes": n_internal,
        "colocated_startup_s": round(startup_s, 4),
        "sum_wave_s": round(wave_s, 4),
        "colocated_threads": host_threads,
        # The solo event-loop runtime spends one thread per internal
        # node; the gated ratio is that census over what the colocated
        # host actually spends.  Structural, so it never flakes.
        "solo_threads": n_internal,
        "speedup": round(n_internal / host_threads, 2),
    }


# -- driver -----------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_startup.json"
    )
    args = parser.parse_args(argv)

    if args.smoke:
        # Depth 3 even in smoke: recursive instantiation only pays off
        # with real depth, and a depth-2 tree's ratio is pure noise.
        startup = bench_startup(fanout=2, depth=3, rounds=1)
        relay = bench_shm_relay(n_frames=1000, repeats=2)
        colocated = bench_colocated(fanout=4, depth=3)
    else:
        startup = bench_startup(fanout=4, depth=3, rounds=3)
        relay = bench_shm_relay(n_frames=2000, repeats=3)
        colocated = bench_colocated(fanout=10, depth=3)

    doc = {
        "benchmark": "bench_startup",
        "description": (
            "Process-tree instantiation latency (sequential vs parallel "
            "recursive, Fig 7a), co-located link throughput (loopback "
            "TCP vs shared-memory rings), and the colocated single-loop "
            "runtime's thread census on a 1000-leaf tree"
        ),
        "mode": "smoke" if args.smoke else "full",
        "python": platform.python_version(),
        "results": {
            "startup_64leaf_depth3": startup,
            "shm_relay_hop": relay,
            "colocated_1000node": colocated,
        },
    }
    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    print(json.dumps(doc["results"], indent=2))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
