"""Observability overhead microbenchmark: what the metrics/tracing
layer costs on the relay hot path.

PR 4 replaced the ad-hoc dict counters with typed metric objects
(`repro.obs.metrics`) and added optional Figure 3 span tracing
(`repro.obs.tracing`).  Both ride the §4.2.1 "negligible overhead"
relay path, so their cost must be provably negligible too.  This
benchmark times one relay hop three ways:

1. **twin** — an instrumentation-stripped replica of the relay loop:
   lazy unbatch, per-packet stream lookup, re-batch, vectored send.
   Exactly the mechanical work a comm node does for a pass-through
   stream, with every counter bump and tracing hook deleted.
2. **off** — a real :class:`~repro.core.commnode.NodeCore` relaying
   the same messages with metrics on and ``tracer=None`` (the
   production default).
3. **on** — the same node with a :class:`TraceRecorder` attached
   (recv/demux/rebatch/send spans recorded every hop).

The headline numbers are ``overhead_off_ratio`` (off/twin) and
``overhead_on_ratio`` (on/twin); ``check_regression.py`` gates them at
<5% and <15% respectively in full mode.  Results merge into
``BENCH_dataplane.json`` (preserving the other benchmarks' entries).

Usage::

   PYTHONPATH=src python benchmarks/bench_observability.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import gc
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.batching import PacketBuffer, decode_batch, encode_batch  # noqa: E402
from repro.core.commnode import NodeCore  # noqa: E402
from repro.core.packet import Packet  # noqa: E402
from repro.filters.registry import default_registry  # noqa: E402
from repro.obs.tracing import TraceRecorder  # noqa: E402
from repro.transport.channel import Inbox  # noqa: E402


class _NullEnd:
    """A parent link that swallows sends (the hop under test is local)."""

    def __init__(self, link_id: int = 1):
        self.link_id = link_id
        self.closed = False
        self.nbytes = 0

    def send(self, payload: bytes) -> None:
        self.nbytes += len(payload)


class _StrippedCore(NodeCore):
    """The instrumentation-stripped twin of the relay loop.

    Identical dispatch machinery — liveness bookkeeping, per-packet
    demux, stream-table miss, parent-buffer re-batch, batched send —
    with every counter bump, histogram observe, and tracing hook
    deleted.  The instrumented/twin time ratio is therefore exactly
    the observability layer's overhead.
    """

    def handle_payload(self, link_id, payload):
        if self.wedged:
            return
        if self._pending_children:
            self.admit_pending_children()
        if payload is None:
            self._handle_link_closed(link_id)
            return
        self._last_seen[link_id] = self.clock()
        if self.parent is not None and link_id == self.parent_link_id:
            for packet in decode_batch(payload):
                self.dispatch(link_id, packet)
            return
        streams = self.streams
        pbuf = self._parent_buffer
        queued = False
        for packet in decode_batch(payload):
            sid = packet.stream_id
            if sid == 0 or pbuf is None or sid in streams:
                self.dispatch(link_id, packet)
            else:
                pbuf.add(packet)
                queued = True
        if queued:
            self._note_pending()

    def _handle_data_up(self, link_id, packet):
        manager = self.streams.get(packet.stream_id)
        if manager is None:
            self._queue_up(packet)
            return
        if manager.passthrough:
            if not manager.closed:
                self._queue_up(packet)
            return
        for out in manager.push_upstream(link_id, packet):
            self._queue_up(out)

    def _queue_up(self, packet):
        if self._parent_buffer is not None:
            self._parent_buffer.add(packet)
            self._note_pending()
        else:
            self.deliver_local(packet)

    def _flush_buffer(self, link_id, end, buf):
        packets = buf.drain()
        end.send(encode_batch(packets))


def make_relay_node(stripped: bool = False, tracer: TraceRecorder = None):
    """A comm node with a parent sink and no stream state: every data
    packet arriving from link 2 takes the pure relay path upstream."""
    cls = _StrippedCore if stripped else NodeCore
    core = cls(
        "bench-relay", default_registry(), expected_ranks=0,
        parent=_NullEnd(), inbox=Inbox(),
    )
    core.tracer = tracer
    return core


def make_payload(n_packets: int) -> bytes:
    return encode_batch(
        [
            Packet(50, i, "%d %lf %s", (i, i * 0.5, f"metric-{i}"), origin_rank=i)
            for i in range(n_packets)
        ]
    )


def _bench_interleaved(fns: dict, rounds: int, repeats: int = 10) -> dict:
    """Per-config wall times for *repeats* interleaved measurements.

    Returns ``name -> [t_0, ..., t_{repeats-1}]``.  All configs are
    timed back-to-back within each repeat, so ratios computed *within*
    a repeat share CPU state (frequency scaling, thermal throttling)
    and are robust to drift that would bias consecutive per-config
    runs.  Collection is disabled around each timing so GC pauses from
    the per-hop packet garbage don't land on one config's clock.
    """
    times = {name: [] for name in fns}
    gc.disable()
    try:
        for _ in range(repeats):
            for name, fn in fns.items():
                gc.collect()
                start = time.perf_counter()
                for _ in range(rounds):
                    fn()
                times[name].append(time.perf_counter() - start)
    finally:
        gc.enable()
    return times


def _median(values) -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


def bench_relay_overhead(n_packets: int, rounds: int, repeats: int = 10) -> dict:
    """Relay hop cost: stripped twin vs. metrics-on vs. tracing-on."""
    payload = make_payload(n_packets)

    core_twin = make_relay_node(stripped=True)
    core_off = make_relay_node()
    core_on = make_relay_node(
        tracer=TraceRecorder("bench-relay", clock=core_off.clock)
    )

    def run(core):
        def one_hop():
            core.handle_payload(2, payload)
            core.flush()
        return one_hop

    fns = {"twin": run(core_twin), "off": run(core_off), "on": run(core_on)}
    for _ in range(3):  # warmup: buffers primed, code paths cache-warm
        for fn in fns.values():
            fn()

    times = _bench_interleaved(fns, rounds, repeats)
    t_twin, t_off, t_on = (min(times[k]) for k in ("twin", "off", "on"))
    # Overhead ratios are the median of per-repeat ratios: each repeat
    # times all three configs back-to-back, so its ratio is immune to
    # the CPU-frequency drift that makes independent best-of numbers
    # disagree by more than the effect being measured.
    off_ratio = _median(
        o / t for o, t in zip(times["off"], times["twin"])
    )
    on_ratio = _median(
        o / t for o, t in zip(times["on"], times["twin"])
    )
    pps = lambda t: n_packets * rounds / t  # noqa: E731
    return {
        "packets_per_message": n_packets,
        "rounds": rounds,
        "repeats": repeats,
        "twin_pps": round(pps(t_twin), 1),
        "metrics_off_tracing_pps": round(pps(t_off), 1),
        "tracing_on_pps": round(pps(t_on), 1),
        "overhead_off_ratio": round(off_ratio, 3),
        "overhead_on_ratio": round(on_ratio, 3),
    }


def bench_stats_gather(fanout: int, rounds: int) -> dict:
    """Wall time for one full STATS_SNAPSHOT tree gather (seconds)."""
    from repro.core.network import Network
    from repro.topology import balanced_tree

    net = Network(balanced_tree(fanout, 2), transport="local")
    try:
        net.stats()  # warmup
        timings = []
        for _ in range(rounds):
            start = time.perf_counter()
            snap = net.stats()
            timings.append(time.perf_counter() - start)
        meta = snap["meta"]
        assert meta["replies"] == meta["expected"], meta
    finally:
        net.shutdown()
    return {
        "fanout": fanout,
        "internal_nodes": meta["expected"],
        "rounds": rounds,
        "gather_ms_best": round(min(timings) * 1e3, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="fast sanity pass (CI)"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_dataplane.json",
        help="JSON results file to merge into",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        relay_rounds, relay_repeats, gather_fanout, gather_rounds = 50, 6, 2, 3
    else:
        relay_rounds, relay_repeats, gather_fanout, gather_rounds = 300, 20, 4, 10

    results = {
        "obs_relay_overhead": bench_relay_overhead(
            256, relay_rounds, relay_repeats
        ),
        "obs_stats_gather": bench_stats_gather(gather_fanout, gather_rounds),
    }
    results["obs_relay_overhead"]["mode"] = "smoke" if args.smoke else "full"

    # Merge into the shared results file, preserving every entry owned
    # by the other benchmarks (bench_dataplane.py, bench_recovery.py)
    # and their reference_speedups bookkeeping.
    doc = {}
    if args.out.exists():
        try:
            doc = json.loads(args.out.read_text())
        except (json.JSONDecodeError, OSError):
            doc = {}
    merged = doc.get("results", {})
    merged.update(results)
    doc["results"] = merged
    doc.setdefault("benchmark", "bench_dataplane")
    args.out.write_text(json.dumps(doc, indent=2) + "\n")

    row = results["obs_relay_overhead"]
    print(f"{'config':<24} {'pps':>14} {'overhead':>10}")
    print(f"{'twin (stripped)':<24} {row['twin_pps']:>14} {'1.000x':>10}")
    print(
        f"{'metrics, tracing off':<24} {row['metrics_off_tracing_pps']:>14} "
        f"{row['overhead_off_ratio']:>9.3f}x"
    )
    print(
        f"{'metrics + tracing on':<24} {row['tracing_on_pps']:>14} "
        f"{row['overhead_on_ratio']:>9.3f}x"
    )
    g = results["obs_stats_gather"]
    print(
        f"stats gather ({g['internal_nodes']} internal nodes): "
        f"{g['gather_ms_best']} ms"
    )
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
