"""Many-stream scaling: bulk creation, idle-tick flatness, multi-metric waves.

Three scenarios for the PR-10 many-stream runtime (ROADMAP item 2 —
"thousands of simultaneous communicators with per-group routing
state"), all on the colocated 64-leaf depth-3 tree the paper's tool
scenarios assume:

1. **bulk_creation** — streams/s creating many streams over one
   shared communicator.  Baseline: a ``Network.new_stream()`` loop
   (one ``TAG_NEW_STREAM`` control wave per stream, one full
   ``StreamManager`` per stream per node, eagerly).  New:
   ``Network.new_streams()`` — ONE ``TAG_NEW_STREAMS`` control wave
   announcing the whole batch against interned
   :class:`~repro.core.routing.CommGroup` references; nodes register
   O(1) lazy specs and materialize managers only on first data.
   The gated ``speedup`` is the per-stream creation-rate ratio.

2. **idle_tick** — event-loop tick cost as a function of *total*
   stream count.  A standalone ``NodeCore`` carries N open (eager)
   streams, none with pending timed waves; one tick is
   ``poll_streams()`` + ``next_timeout_deadline()`` — exactly what
   the EventLoop pays per iteration per core.  The gated
   ``tick_ratio`` compares N=5000 against N=64: with the O(active)
   active-set + deadline heap it must stay flat (idle streams cost
   nothing), where the old per-tick linear scan grew ~78x.

3. **multistream_wave** — per-wave latency with 16 concurrent metric
   streams (the Figure-9 16-way shape recorded in
   ``benchmarks/results/fig9_16metrics.txt``) vs a single-stream
   baseline on the same tree.  Every back-end contributes one value
   per stream per round; the gated ``speedup`` is single-stream
   per-wave latency over 16-way per-stream per-wave latency — the
   acceptance bar is "multi-stream no worse than single-stream",
   i.e. speedup >= ~1.

Writes ``BENCH_multistream.json`` (repo root by default); ``--smoke``
runs a fast pass for CI (smaller batch, fewer rounds) gated by
``check_regression.py --fresh-multistream``.

Usage::

   PYTHONPATH=src python benchmarks/bench_multistream.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.commnode import NodeCore  # noqa: E402
from repro.core.network import Network  # noqa: E402
from repro.core.protocol import make_endpoint_report, make_new_stream  # noqa: E402
from repro.filters.registry import (  # noqa: E402
    SFILTER_WAITFORALL,
    TFILTER_SUM,
    default_registry,
)
from repro.topology.generators import balanced_tree  # noqa: E402
from repro.transport.channel import Channel, Inbox  # noqa: E402


# -- scenario 1: bulk + lazy stream creation --------------------------------


def _all_nodes_know(net, stream_id) -> bool:
    """True once every comm node has the stream (manager or lazy spec)."""
    for node in net._commnodes:
        core = node.core
        if stream_id not in core.streams and stream_id not in core._stream_specs:
            return False
    return True


def _settle_creation(net, last_stream_id, timeout=60.0) -> None:
    deadline = time.monotonic() + timeout
    while not _all_nodes_know(net, last_stream_id):
        if time.monotonic() > deadline:
            raise RuntimeError("stream creation did not settle")
        net._pump(0.001)


def bench_bulk_creation(fanout: int, depth: int, n_bulk: int, n_loop: int) -> dict:
    """Streams/s: one new_streams() batch vs a new_stream() loop.

    The loop baseline uses a smaller count (*n_loop*) because at 5k
    streams it is painfully slow — rates are per-stream, so the ratio
    is count-independent.  Both timings end only when every comm node
    in the tree knows the last stream (creation is a control wave,
    not a local bookkeeping trick).
    """
    net = Network(balanced_tree(fanout, depth), colocate=True)
    try:
        comm = net.get_broadcast_communicator()

        t0 = time.monotonic()
        for _ in range(n_loop):
            stream = net.new_stream(comm, transform=TFILTER_SUM)
        _settle_creation(net, stream.stream_id)
        loop_s = time.monotonic() - t0

        t0 = time.monotonic()
        streams = net.new_streams(
            [(comm, {"transform": TFILTER_SUM}) for _ in range(n_bulk)]
        )
        _settle_creation(net, streams[-1].stream_id)
        bulk_s = time.monotonic() - t0

        loop_rate = n_loop / loop_s
        bulk_rate = n_bulk / bulk_s
    finally:
        net.shutdown()
    return {
        "fanout": fanout,
        "depth": depth,
        "backends": fanout**depth,
        "bulk_streams": n_bulk,
        "loop_streams": n_loop,
        "bulk_s": round(bulk_s, 4),
        "loop_s": round(loop_s, 4),
        "bulk_streams_per_s": round(bulk_rate),
        "loop_streams_per_s": round(loop_rate),
        "speedup": round(bulk_rate / loop_rate, 2),
    }


# -- scenario 2: idle-tick flatness -----------------------------------------


def _idle_core(n_streams: int) -> NodeCore:
    """A standalone NodeCore carrying *n_streams* open idle streams."""
    registry = default_registry()
    node_inbox = Inbox()
    parent_inbox = Inbox()
    parent = Channel(parent_inbox, node_inbox).end_b
    core = NodeCore("bench-node", registry, 4, parent=parent, inbox=node_inbox)
    links = []
    for _ in range(2):
        child = Channel(node_inbox, Inbox())
        core.add_child(child.end_a)
        links.append(child.link_id)
    core.dispatch(links[0], make_endpoint_report([0, 1]))
    core.dispatch(links[1], make_endpoint_report([2, 3]))
    for sid in range(1, n_streams + 1):
        core.handle_control_down(
            make_new_stream(sid, [0, 1, 2, 3], SFILTER_WAITFORALL, TFILTER_SUM)
        )
    core.flush()
    assert len(core.streams) == n_streams
    return core


def _time_ticks(core: NodeCore, rounds: int) -> float:
    """Mean seconds per (poll_streams + next_timeout_deadline) tick."""
    t0 = time.perf_counter()
    for _ in range(rounds):
        core.poll_streams()
        core.next_timeout_deadline()
    return (time.perf_counter() - t0) / rounds


def bench_idle_tick(n_small: int, n_large: int, rounds: int) -> dict:
    small = _time_ticks(_idle_core(n_small), rounds)
    large = _time_ticks(_idle_core(n_large), rounds)
    return {
        "streams_small": n_small,
        "streams_large": n_large,
        "rounds": rounds,
        "tick_small_us": round(small * 1e6, 3),
        "tick_large_us": round(large * 1e6, 3),
        # O(active): with every stream idle, the 5000-stream tick must
        # cost the same as the 64-stream tick (the old linear scan
        # scaled this ratio with the stream count).
        "tick_ratio": round(large / small, 2) if small > 0 else 0.0,
    }


# -- scenario 3: 16-metric wave latency (Figure 9 shapes) -------------------


def _drive_waves(net, streams, rounds: int) -> float:
    """Seconds/wave/stream: every back-end sends 1 value on every
    stream, front-end receives every reduced wave, *rounds* times."""
    backends = [net.backends[r] for r in sorted(net.backends)]
    # Make sure every back-end knows every stream before timing.
    deadline = time.monotonic() + 30
    want = {s.stream_id for s in streams}
    while True:
        for be in backends:
            while be.poll():
                pass
        if all(want <= set(be.stream_ids) for be in backends):
            break
        if time.monotonic() > deadline:
            raise RuntimeError("streams never reached the back-ends")
        net._pump(0.001)
    t0 = time.monotonic()
    for _ in range(rounds):
        for be in backends:
            for stream in streams:
                be.get_stream(stream.stream_id).send("%d", 1)
            be.flush()
        for stream in streams:
            values = stream.recv_values(timeout=60)
            assert values == (len(backends),), "wave corrupted"
    elapsed = time.monotonic() - t0
    return elapsed / (rounds * len(streams))


def bench_multistream_wave(
    fanout: int, depth: int, n_streams: int, rounds: int
) -> dict:
    net = Network(balanced_tree(fanout, depth), colocate=True)
    try:
        comm = net.get_broadcast_communicator()
        single = net.new_streams([(comm, {"transform": TFILTER_SUM})])
        single_s = _drive_waves(net, single, rounds)
        multi = net.new_streams(
            [(comm, {"transform": TFILTER_SUM}) for _ in range(n_streams)]
        )
        multi_s = _drive_waves(net, multi, rounds)
    finally:
        net.shutdown()
    return {
        "fanout": fanout,
        "depth": depth,
        "backends": fanout**depth,
        "metric_streams": n_streams,
        "rounds": rounds,
        "single_wave_ms": round(single_s * 1e3, 4),
        "multi_wave_per_stream_ms": round(multi_s * 1e3, 4),
        # >= 1 means 16 concurrent metric streams cost no more per
        # wave than one stream (the Figure 9 acceptance bar).
        "speedup": round(single_s / multi_s, 2),
    }


# -- driver -----------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true")
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_multistream.json"
    )
    args = parser.parse_args(argv)

    if args.smoke:
        creation = bench_bulk_creation(fanout=4, depth=3, n_bulk=500, n_loop=60)
        tick = bench_idle_tick(n_small=64, n_large=5000, rounds=2000)
        wave = bench_multistream_wave(fanout=4, depth=3, n_streams=16, rounds=3)
    else:
        creation = bench_bulk_creation(fanout=4, depth=3, n_bulk=5000, n_loop=250)
        tick = bench_idle_tick(n_small=64, n_large=5000, rounds=10000)
        wave = bench_multistream_wave(fanout=4, depth=3, n_streams=16, rounds=10)

    doc = {
        "benchmark": "bench_multistream",
        "description": (
            "Many-stream scaling on the colocated 64-leaf tree: bulk "
            "(one-wave, lazy) stream creation vs the new_stream loop, "
            "O(active) idle-tick flatness at 5000 streams, and 16-way "
            "Figure-9 metric-wave latency vs a single stream"
        ),
        "mode": "smoke" if args.smoke else "full",
        "python": platform.python_version(),
        "results": {
            "bulk_creation": creation,
            "idle_tick": tick,
            "multistream_wave": wave,
        },
    }
    args.out.write_text(json.dumps(doc, indent=2) + "\n")
    print(json.dumps(doc["results"], indent=2))
    print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
