"""Figure 9 (a–d) — fraction of offered load serviced by the front-end.

Four panels (1, 8, 16, 32 metrics), daemons 4–256, curves "Flat",
"4-way", "8-way", "16-way Fanout"; offered load is 5·D·M samples/s.
Paper shape: the flat configuration degrades quickly as daemons ×
metrics grow (≈ 60 % at 64 daemons × 32 metrics; < 5 % at 256 × 32),
while every MRNet fan-out processes the entire offered load at every
tested configuration (§4.2.2).
"""

import pytest

from repro.sim.frontend_load import frontend_load_fraction, offered_rate
from repro.topology import balanced_tree_for

DAEMONS = [4, 16, 64, 128, 256]
METRICS = [1, 8, 16, 32]
FANOUTS = [4, 8, 16]


def run_sweep():
    panels = {}
    for m in METRICS:
        rows = []
        for d in DAEMONS:
            row = [d, frontend_load_fraction(d, m)]
            for f in FANOUTS:
                row.append(
                    frontend_load_fraction(d, m, balanced_tree_for(f, d))
                )
            row.append(offered_rate(d, m))
            rows.append(tuple(row))
        panels[m] = rows
    return panels


@pytest.mark.benchmark(group="fig9")
def test_fig9_fraction_of_offered_load(benchmark, report):
    panels = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    for m, rows in panels.items():
        report(
            f"fig9_{m}metrics",
            f"Figure 9 ({m} metric{'s' if m > 1 else ''}): fraction of "
            "offered load serviced by the front-end",
            ["daemons", "flat", "4-way", "8-way", "16-way", "offered/s"],
            rows,
        )
    flat = {m: {r[0]: r[1] for r in rows} for m, rows in panels.items()}
    # Paper anchors: ≈60% at 64×32; <5% at 256×32.
    assert 0.5 < flat[32][64] < 0.7
    assert flat[32][256] < 0.05
    # With few metrics the flat front-end keeps up everywhere tested.
    assert all(flat[1][d] == 1.0 for d in DAEMONS)
    # Degradation is monotone in both daemons and metrics.
    for m in METRICS:
        vals = [flat[m][d] for d in DAEMONS]
        assert all(a >= b for a, b in zip(vals, vals[1:]))
    for d in DAEMONS:
        vals = [flat[m][d] for m in METRICS]
        assert all(a >= b for a, b in zip(vals, vals[1:]))
    # Every MRNet fan-out holds the full offered load at every config.
    for m, rows in panels.items():
        for row in rows:
            assert row[2] == row[3] == row[4] == 1.0
