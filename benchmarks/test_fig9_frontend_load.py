"""Figure 9 (a–d) — fraction of offered load serviced by the front-end.

Four panels (1, 8, 16, 32 metrics), daemons 4–256, curves "Flat",
"4-way", "8-way", "16-way Fanout"; offered load is 5·D·M samples/s.
Paper shape: the flat configuration degrades quickly as daemons ×
metrics grow (≈ 60 % at 64 daemons × 32 metrics; < 5 % at 256 × 32),
while every MRNet fan-out processes the entire offered load at every
tested configuration (§4.2.2).
"""

import pytest

from repro.sim.frontend_load import frontend_load_fraction, offered_rate
from repro.topology import balanced_tree_for

DAEMONS = [4, 16, 64, 128, 256]
METRICS = [1, 8, 16, 32]
FANOUTS = [4, 8, 16]


def run_sweep():
    panels = {}
    for m in METRICS:
        rows = []
        for d in DAEMONS:
            row = [d, frontend_load_fraction(d, m)]
            for f in FANOUTS:
                row.append(
                    frontend_load_fraction(d, m, balanced_tree_for(f, d))
                )
            row.append(offered_rate(d, m))
            rows.append(tuple(row))
        panels[m] = rows
    return panels


@pytest.mark.benchmark(group="fig9")
def test_fig9_fraction_of_offered_load(benchmark, report):
    panels = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    for m, rows in panels.items():
        report(
            f"fig9_{m}metrics",
            f"Figure 9 ({m} metric{'s' if m > 1 else ''}): fraction of "
            "offered load serviced by the front-end",
            ["daemons", "flat", "4-way", "8-way", "16-way", "offered/s"],
            rows,
        )
    flat = {m: {r[0]: r[1] for r in rows} for m, rows in panels.items()}
    # Paper anchors: ≈60% at 64×32; <5% at 256×32.
    assert 0.5 < flat[32][64] < 0.7
    assert flat[32][256] < 0.05
    # With few metrics the flat front-end keeps up everywhere tested.
    assert all(flat[1][d] == 1.0 for d in DAEMONS)
    # Degradation is monotone in both daemons and metrics.
    for m in METRICS:
        vals = [flat[m][d] for d in DAEMONS]
        assert all(a >= b for a, b in zip(vals, vals[1:]))
    for d in DAEMONS:
        vals = [flat[m][d] for m in METRICS]
        assert all(a >= b for a, b in zip(vals, vals[1:]))
    # Every MRNet fan-out holds the full offered load at every config.
    for m, rows in panels.items():
        for row in rows:
            assert row[2] == row[3] == row[4] == 1.0


@pytest.mark.benchmark(group="fig9")
def test_fig9_live_gateway_offered_load(benchmark, report):
    """Figure 9's question asked of the LIVE gateway, not the simulator:
    what fraction of offered load does the front-end service as demand
    outgrows capacity?  A colocated tree with echo daemons is
    calibrated to its wave capacity C, then offered 0.5×, 1× and 2× C
    through the admission-controlled gateway.  The simulator's flat
    front-end silently falls behind; the gateway instead shreds the
    overload into *typed* ``Overloaded`` rejections while servicing at
    least the gated floor — bounded queue, no tree stall.
    """
    import bench_gateway

    net, responder = bench_gateway.build_tree(2, 2)
    try:
        capacity = bench_gateway.calibrate_capacity(net, window_s=0.6)
        rows = []

        def sweep():
            for multiplier in (0.5, 1.0, 2.0):
                row = bench_gateway.bench_offered_load(
                    net, capacity, multiplier, duration_s=0.8
                )
                rows.append(
                    (
                        f"{multiplier:g}x",
                        row["offered"],
                        row["serviced"],
                        sum(row["shed"].values()),
                        row["serviced_fraction"],
                        row["shed_mean_ms"],
                    )
                )
            return rows

        benchmark.pedantic(sweep, rounds=1, iterations=1)
    finally:
        responder.stop()
        net.shutdown()

    report(
        "fig9_live_gateway",
        f"Figure 9 (live gateway): serviced fraction vs offered load "
        f"(capacity {capacity:.0f} waves/s, 4 daemons)",
        ["offered", "queries", "serviced", "shed", "fraction", "shed-ms"],
        rows,
    )
    by_mult = {r[0]: r for r in rows}
    # Below saturation the gateway services everything it is offered.
    assert by_mult["0.5x"][4] >= 0.95
    # At 2x the overload is shed as typed rejections, never queued
    # unboundedly — and the serviced fraction holds the gated floor.
    assert by_mult["2x"][3] > 0, "2x offered load produced no sheds"
    assert by_mult["2x"][4] >= bench_gateway.SERVICED_FLOOR_2X
