"""Ablation A3 — time-aligned vs. ordinal aggregation (§3.2, Figure 5).

"The Paradyn design recognizes that its back-ends collect data
asynchronously, so ordinal aggregation may combine samples
representing different intervals of the application's execution."

Ground truth: four daemons each contribute a known piecewise-constant
rate, so the true aggregated value over any interval is exact.  The
daemons sample *asynchronously* — each with its own sampling period,
so the i-th samples of different daemons drift apart over the run.
We aggregate with Paradyn's time-aligned scheme and with the ordinal
baseline and compare both series against the truth over each output
sample's own interval.

Expected: time-aligned error stays at numerical noise for any period
spread (proportional splitting conserves data exactly — the Figure 6
claim); ordinal error grows with the spread because position-aligned
samples cover increasingly different time intervals.
"""

import math

import pytest

from repro.paradyn.perfdata import (
    DataSample,
    OrdinalAggregator,
    TimeAlignedAggregator,
)

DAEMONS = 4
HORIZON = 20.0
OUT_INTERVAL = 0.5
BASE_PERIOD = 0.5


RATE_PERIOD = 2.0  # seconds between rate changes (slower than sampling)


def true_rate(d: int, t: float) -> float:
    """Daemon d's instantaneous rate at time t (piecewise constant,
    changing every RATE_PERIOD so interval mixing is visible)."""
    return 1.0 + d + (2.0 if int(t / RATE_PERIOD) % 2 == 0 else 0.0)


def daemon_samples(d: int, period: float):
    """Contiguous samples carrying the exact integral of the rate."""
    samples = []
    t = 0.0
    while t < HORIZON:
        end = t + period
        value, cur = 0.0, t
        while cur < end:
            nxt = min(math.floor(cur) + 1.0, end)
            value += true_rate(d, cur) * (nxt - cur)
            cur = nxt
        samples.append(DataSample(value, t, end))
        t = end
    return samples


def true_interval_value(t0: float, t1: float) -> float:
    total, cur = 0.0, t0
    while cur < t1:
        nxt = min(math.floor(cur) + 1.0, t1)
        total += sum(true_rate(d, cur) for d in range(DAEMONS)) * (nxt - cur)
        cur = nxt
    return total


def run_experiment(spread: float):
    """Aggregate with both schemes; return (aligned_err, ordinal_err)."""
    periods = [
        BASE_PERIOD,
        BASE_PERIOD * (1.0 - spread),
        BASE_PERIOD * (1.0 + spread),
        BASE_PERIOD,
    ]
    streams = [daemon_samples(d, periods[d]) for d in range(DAEMONS)]
    aligned = TimeAlignedAggregator(DAEMONS, OUT_INTERVAL, op="sum")
    ordinal = OrdinalAggregator(DAEMONS, op="sum")
    aligned_out, ordinal_out = [], []
    max_len = max(len(s) for s in streams)
    for i in range(max_len):
        for d in range(DAEMONS):
            if i < len(streams[d]):
                aligned_out.extend(aligned.add_sample(d, streams[d][i]))
                ordinal_out.extend(ordinal.add_sample(d, streams[d][i]))

    def series_error(outputs):
        errs = []
        for s in outputs:
            if s.end > HORIZON - 1.0:  # ignore the ragged tail
                continue
            truth = true_interval_value(s.start, s.end)
            if truth > 0:
                errs.append(abs(s.value - truth) / truth)
        assert errs, "aggregation produced no comparable output samples"
        return sum(errs) / len(errs)

    return series_error(aligned_out), series_error(ordinal_out)


@pytest.mark.benchmark(group="ablation-alignment")
def test_ablation_time_alignment(benchmark, report):
    spreads = [0.0, 0.1, 0.2, 0.4]
    results = benchmark.pedantic(
        lambda: [(s, *run_experiment(s)) for s in spreads], rounds=1, iterations=1
    )
    rows = [
        (f"{s:.2f}", aligned * 100, ordinal * 100)
        for s, aligned, ordinal in results
    ]
    report(
        "ablation_alignment",
        "Ablation A3: mean relative error (%) of aggregated series vs "
        "ground truth under asynchronous sampling (period spread)",
        ["period-spread", "time-aligned", "ordinal"],
        rows,
    )
    for s, aligned, ordinal in results:
        # Time-aligned attribution error stays within the sampling
        # granularity (a straddling sample's value is assumed uniform
        # over its interval) — a few percent at most.
        assert aligned < 0.05, f"aligned error too high at spread {s}"
        if s > 0:
            # Ordinal mixes execution intervals: an order of magnitude
            # worse than the aligned scheme.
            assert ordinal > aligned * 10
    # Ordinal error grows with the spread; synchronous sampling is exact
    # under both schemes.
    ordinals = [r[2] for r in results]
    assert ordinals[-1] > ordinals[1]
    assert ordinals[0] < 1e-9 and results[0][1] < 1e-9
