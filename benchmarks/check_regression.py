"""Compare a fresh bench_dataplane run against the committed baseline.

CI guard for the data-plane fast paths: fails (exit 1) if the
``relay_hop`` or ``pipelined_reduction`` *speedup ratio* of a fresh
run drops more than 30% below the committed ``BENCH_dataplane.json``
reference.
Ratios (new/baseline on the same machine, same run) are compared
rather than absolute throughput so the check is portable across CI
hardware.

The committed file records per-mode references under
``reference_speedups`` (smoke runs use far fewer rounds and a smaller
tree, so their ratios are not comparable to full-mode ones).

With ``--fresh-startup`` the same ratio gate also covers the
bench_startup.py scenarios (recursive-instantiation speedup and
shm-vs-loopback link throughput) against ``BENCH_startup.json``.

With ``--fresh-multistream`` the many-stream scaling gates run
against a fresh ``bench_multistream.py`` output (falling back to the
committed ``BENCH_multistream.json``): bulk ``new_streams()``
creation must beat the per-stream ``new_stream()`` loop by the floor
ratio (10x full, 5x smoke), the idle event-loop tick must stay flat
between 64 and 5000 open streams (the O(active) structural bar), and
16 concurrent metric streams must cost no more per wave per stream
than a single stream.  All three are absolute structural bars.

With ``--fresh-gateway`` the gateway serving gates run against a
fresh ``bench_gateway.py`` output (falling back to the committed
``BENCH_gateway.json``): identical concurrent queries must coalesce
to exactly one wave, the serviced fraction under 2× saturation
offered load must stay at or above the floor, and the mean typed-shed
decision latency must stay under the ceiling.  These are absolute
structural bars (the shed decision is an in-process O(1) check), so
no committed-ratio dance is needed.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py \
        --fresh /tmp/bench_dataplane_smoke.json \
        [--fresh-startup /tmp/bench_startup_smoke.json] \
        [--committed BENCH_dataplane.json] [--tolerance 0.3]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

GUARDED_SCENARIOS = (
    "relay_hop",
    "pipelined_reduction",
    "allreduce_tree",
)
STARTUP_SCENARIOS = (
    "startup_64leaf_depth3",
    "shm_relay_hop",
    "colocated_1000node",
)


def reference_speedups(committed: dict, mode: str) -> dict:
    """The committed speedup ratios comparable to a *mode* run.

    Entries without a ``speedup`` field (e.g. bench_recovery.py's
    recovery-latency and heartbeat-overhead rows, merged into the same
    file) are not speedup scenarios and are skipped.
    """
    per_mode = committed.get("reference_speedups", {})
    if mode in per_mode:
        return per_mode[mode]
    if committed.get("mode") == mode:
        return {
            name: row["speedup"]
            for name, row in committed["results"].items()
            if "speedup" in row
        }
    raise SystemExit(
        f"committed benchmark has no reference for mode {mode!r} "
        f"(has: {sorted(per_mode) or committed.get('mode')!r})"
    )


def check_heartbeat_overhead(fresh: dict, committed: dict, ceiling: float) -> bool:
    """Enforce the steady-state heartbeat cost bar, if measured.

    Prefers a fresh ``heartbeat_overhead`` entry (a bench_recovery.py
    run on this machine); falls back to the committed one.  Returns
    True when the gate fails.
    """
    row = fresh.get("results", {}).get("heartbeat_overhead") or committed.get(
        "results", {}
    ).get("heartbeat_overhead")
    if row is None or "overhead_ratio" not in row:
        return False
    ratio = row["overhead_ratio"]
    status = "ok" if ratio < ceiling else "REGRESSED"
    print(
        f"{'heartbeat_overhead':<20} {'':>10} {ratio:>9.3f}x "
        f"{ceiling:>9.2f}x  {status}"
    )
    return ratio >= ceiling


def check_obs_overhead(fresh: dict, committed: dict) -> bool:
    """Enforce the observability-layer overhead bars, if measured.

    The ``obs_relay_overhead`` entry (bench_observability.py) records
    the relay-hop cost of the metrics layer relative to an
    instrumentation-stripped twin.  Full-mode ceilings: <5% with
    tracing off, <15% with tracing on.  Smoke runs use far fewer
    rounds/repeats, so their ratios get proportionally looser bars
    (the full-mode numbers are the committed evidence).  Returns True
    when a gate fails.
    """
    row = fresh.get("results", {}).get("obs_relay_overhead") or committed.get(
        "results", {}
    ).get("obs_relay_overhead")
    if row is None or "overhead_off_ratio" not in row:
        return False
    smoke = row.get("mode") == "smoke"
    gates = (
        ("obs overhead (off)", row["overhead_off_ratio"], 1.15 if smoke else 1.05),
        ("obs overhead (on)", row["overhead_on_ratio"], 1.30 if smoke else 1.15),
    )
    failed = False
    for label, ratio, ceiling in gates:
        status = "ok" if ratio < ceiling else "REGRESSED"
        print(f"{label:<20} {'':>10} {ratio:>9.3f}x {ceiling:>9.2f}x  {status}")
        failed |= ratio >= ceiling
    return failed


def check_recovery_latency(fresh: dict, committed: dict) -> bool:
    """Enforce the repair-time bars, if measured.

    Two absolute ceilings (wall-clock on any reasonable machine, so no
    committed-ratio dance is needed): a plain kill must repair to full
    membership in under 5 s (``recovery_latency.repair_ms``), and a
    mid-chunked-wave kill with checkpointing on must reach a
    byte-identical wave in under 5 s (``wave_recovery.wave_recovery_ms``).
    Returns True when a gate fails.
    """
    gates = (
        ("repair_latency", "recovery_latency", "repair_ms"),
        ("wave_recovery", "wave_recovery", "wave_recovery_ms"),
    )
    failed = False
    for label, scenario, field in gates:
        row = fresh.get("results", {}).get(scenario) or committed.get(
            "results", {}
        ).get(scenario)
        if row is None or field not in row:
            continue
        ms = row[field]
        status = "ok" if ms < 5000.0 else "REGRESSED"
        print(f"{label:<20} {'':>10} {ms:>8.1f}ms {'5000.00ms':>11}  {status}")
        failed |= ms >= 5000.0
    return failed


def check_checkpoint_overhead(fresh: dict, committed: dict) -> bool:
    """Enforce the steady-state checkpointing cost bar, if measured.

    The ``checkpoint_overhead`` entry (bench_recovery.py) compares wave
    latency with ``checkpoint_interval`` unset vs. set on an otherwise
    identical tree.  Full-mode ceiling: <15% with checkpointing on
    (the acceptance bar); smoke runs use far fewer rounds, so their
    ratio gets a proportionally looser bar.  Returns True when the
    gate fails.
    """
    row = fresh.get("results", {}).get("checkpoint_overhead") or committed.get(
        "results", {}
    ).get("checkpoint_overhead")
    if row is None or "overhead_ratio" not in row:
        return False
    smoke = row.get("mode") == "smoke"
    ceiling = 1.30 if smoke else 1.15
    ratio = row["overhead_ratio"]
    status = "ok" if ratio < ceiling else "REGRESSED"
    print(
        f"{'checkpoint_overhead':<20} {'':>10} {ratio:>9.3f}x "
        f"{ceiling:>9.2f}x  {status}"
    )
    return ratio >= ceiling


def check_multistream(doc: dict) -> bool:
    """Enforce the many-stream scaling bars on a bench_multistream.py
    output.

    Three absolute gates (structural properties of the runtime, so no
    committed-ratio dance): bulk creation >= 10x the new_stream loop
    (5x in smoke mode, whose small batch amortizes the constant wave
    cost over fewer streams); the 5000-stream idle tick within 3x of
    the 64-stream tick (both are sub-microsecond heap peeks — the old
    linear scan sat at ~78x); and 16-way wave latency per stream no
    worse than 1.25x single-stream.  Returns True when a gate fails.
    """
    results = doc.get("results", {})
    smoke = doc.get("mode") == "smoke"
    failed = False

    creation = results.get("bulk_creation")
    if creation is not None:
        floor = 5.0 if smoke else 10.0
        got = creation["speedup"]
        status = "ok" if got >= floor else "REGRESSED"
        print(
            f"{'bulk_creation':<20} {'':>10} {got:>9.2f}x "
            f"{floor:>9.2f}x  {status}"
        )
        failed |= got < floor

    tick = results.get("idle_tick")
    if tick is not None:
        ceiling = 3.0
        ratio = tick["tick_ratio"]
        status = "ok" if ratio <= ceiling else "REGRESSED"
        print(
            f"{'idle_tick_flatness':<20} {'':>10} {ratio:>9.2f}x "
            f"{ceiling:>9.2f}x  {status}"
        )
        failed |= ratio > ceiling

    wave = results.get("multistream_wave")
    if wave is not None:
        floor = 0.8  # speedup >= 0.8 <=> per-stream cost <= 1.25x single
        got = wave["speedup"]
        status = "ok" if got >= floor else "REGRESSED"
        print(
            f"{'multistream_wave':<20} {'':>10} {got:>9.2f}x "
            f"{floor:>9.2f}x  {status}"
        )
        failed |= got < floor
    return failed


def check_gateway(doc: dict) -> bool:
    """Enforce the gateway serving bars on a bench_gateway.py output.

    Three gates, all absolute (see bench_gateway.py's ``gates`` block,
    which travels with the results): coalescing must resolve ≥100
    identical concurrent queries with exactly one wave; the serviced
    fraction at 2× offered load must hold the floor; and the mean
    typed-shed decision must stay under the latency ceiling.  Returns
    True when a gate fails.
    """
    results = doc.get("results", {})
    gates = doc.get("gates", {})
    min_coalesced = gates.get("min_coalesced_queries", 100)
    floor = gates.get("serviced_floor_2x", 0.30)
    ceiling = gates.get("shed_mean_ms_ceiling", 5.0)
    failed = False

    co = results.get("coalescing_10k")
    if co is not None:
        one_wave = (
            co["waves"] == 1
            and co["queries_coalesced"] >= min_coalesced - 1
            and co["concurrent_identical_queries"] >= min_coalesced
        )
        status = "ok" if one_wave else "REGRESSED"
        print(
            f"{'gateway_coalescing':<20} {'':>10} "
            f"{co['concurrent_identical_queries']:>6}q/{co['waves']}w "
            f"{'1 wave':>11}  {status}"
        )
        failed |= not one_wave

    two_x = results.get("offered_load", {}).get("2x")
    if two_x is not None:
        frac = two_x["serviced_fraction"]
        status = "ok" if frac >= floor else "REGRESSED"
        print(
            f"{'gateway_serviced_2x':<20} {'':>10} {frac:>9.3f} "
            f"{floor:>9.2f}f  {status}"
        )
        failed |= frac < floor
        shed_ms = two_x["shed_mean_ms"]
        typed = sum(two_x["shed"].values()) > 0
        shed_ok = typed and shed_ms <= ceiling
        status = "ok" if shed_ok else "REGRESSED"
        print(
            f"{'gateway_shed_latency':<20} {'':>10} {shed_ms:>8.3f}m "
            f"{ceiling:>8.2f}ms  {status}"
        )
        failed |= not shed_ok
    return failed


def check_speedups(
    fresh: dict, committed: dict, scenarios, tolerance: float
) -> bool:
    """Ratio-vs-committed gate shared by both benchmark files.

    Returns True when any guarded scenario's fresh speedup drops more
    than *tolerance* below the committed reference for the same mode.
    """
    reference = reference_speedups(committed, fresh.get("mode", "full"))
    failed = False
    print(f"{'scenario':<22} {'committed':>10} {'fresh':>10} {'floor':>10}")
    for name in scenarios:
        ref = reference.get(name)
        row = fresh.get("results", {}).get(name)
        if ref is None or row is None or "speedup" not in row:
            # Unknown or non-speedup entries (recovery-latency rows,
            # scenarios added after the baseline was committed) are
            # not comparable; skip rather than crash.
            print(f"{name:<22} {'-':>10} {'-':>10} {'-':>10}  skipped")
            continue
        got = row["speedup"]
        floor = (1.0 - tolerance) * ref
        status = "ok" if got >= floor else "REGRESSED"
        print(f"{name:<22} {ref:>9.2f}x {got:>9.2f}x {floor:>9.2f}x  {status}")
        failed |= got < floor
    return failed


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", type=Path, required=True)
    parser.add_argument(
        "--committed", type=Path, default=REPO_ROOT / "BENCH_dataplane.json"
    )
    parser.add_argument(
        "--fresh-startup",
        type=Path,
        default=None,
        help="fresh bench_startup.py output to gate (omit to skip)",
    )
    parser.add_argument(
        "--committed-startup",
        type=Path,
        default=REPO_ROOT / "BENCH_startup.json",
    )
    parser.add_argument(
        "--fresh-gateway",
        type=Path,
        default=None,
        help="fresh bench_gateway.py output to gate (omit to skip)",
    )
    parser.add_argument(
        "--committed-gateway",
        type=Path,
        default=REPO_ROOT / "BENCH_gateway.json",
    )
    parser.add_argument(
        "--fresh-multistream",
        type=Path,
        default=None,
        help="fresh bench_multistream.py output to gate (omit to skip)",
    )
    parser.add_argument(
        "--committed-multistream",
        type=Path,
        default=REPO_ROOT / "BENCH_multistream.json",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.3,
        help="allowed fractional drop in speedup ratio (default 0.3 = 30%%)",
    )
    parser.add_argument(
        "--hb-ceiling",
        type=float,
        default=1.10,
        help="max heartbeat-on/off wave-latency ratio (default 1.10)",
    )
    args = parser.parse_args(argv)

    fresh = json.loads(args.fresh.read_text())
    committed = json.loads(args.committed.read_text())

    failed = check_speedups(fresh, committed, GUARDED_SCENARIOS, args.tolerance)

    if args.fresh_startup is not None:
        if args.committed_startup.exists():
            failed |= check_speedups(
                json.loads(args.fresh_startup.read_text()),
                json.loads(args.committed_startup.read_text()),
                STARTUP_SCENARIOS,
                args.tolerance,
            )
        else:
            print("startup baseline absent; skipping startup gates")

    if args.fresh_gateway is not None:
        failed |= check_gateway(json.loads(args.fresh_gateway.read_text()))
    elif args.committed_gateway.exists():
        failed |= check_gateway(json.loads(args.committed_gateway.read_text()))

    if args.fresh_multistream is not None:
        failed |= check_multistream(
            json.loads(args.fresh_multistream.read_text())
        )
    elif args.committed_multistream.exists():
        failed |= check_multistream(
            json.loads(args.committed_multistream.read_text())
        )

    if check_heartbeat_overhead(fresh, committed, args.hb_ceiling):
        print("FAIL: heartbeat overhead exceeds ceiling", file=sys.stderr)
        failed = True
    if check_obs_overhead(fresh, committed):
        print("FAIL: observability overhead exceeds ceiling", file=sys.stderr)
        failed = True
    if check_recovery_latency(fresh, committed):
        print("FAIL: fault recovery exceeds the 5 s ceiling", file=sys.stderr)
        failed = True
    if check_checkpoint_overhead(fresh, committed):
        print("FAIL: checkpoint overhead exceeds ceiling", file=sys.stderr)
        failed = True
    if failed:
        print("FAIL: benchmark speedup regressed >30% vs committed baseline",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
