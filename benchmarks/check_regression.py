"""Compare a fresh bench_dataplane run against the committed baseline.

CI guard for the data-plane fast paths: fails (exit 1) if the
``relay_hop`` or ``tree_fanin`` *speedup ratio* of a fresh run drops
more than 30% below the committed ``BENCH_dataplane.json`` reference.
Ratios (new/baseline on the same machine, same run) are compared
rather than absolute throughput so the check is portable across CI
hardware.

The committed file records per-mode references under
``reference_speedups`` (smoke runs use far fewer rounds and a smaller
tree, so their ratios are not comparable to full-mode ones).

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py \
        --fresh /tmp/bench_dataplane_smoke.json \
        [--committed BENCH_dataplane.json] [--tolerance 0.3]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]

GUARDED_SCENARIOS = ("relay_hop", "tree_fanin")


def reference_speedups(committed: dict, mode: str) -> dict:
    """The committed speedup ratios comparable to a *mode* run."""
    per_mode = committed.get("reference_speedups", {})
    if mode in per_mode:
        return per_mode[mode]
    if committed.get("mode") == mode:
        return {
            name: row["speedup"] for name, row in committed["results"].items()
        }
    raise SystemExit(
        f"committed benchmark has no reference for mode {mode!r} "
        f"(has: {sorted(per_mode) or committed.get('mode')!r})"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", type=Path, required=True)
    parser.add_argument(
        "--committed", type=Path, default=REPO_ROOT / "BENCH_dataplane.json"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.3,
        help="allowed fractional drop in speedup ratio (default 0.3 = 30%%)",
    )
    args = parser.parse_args(argv)

    fresh = json.loads(args.fresh.read_text())
    committed = json.loads(args.committed.read_text())
    reference = reference_speedups(committed, fresh.get("mode", "full"))

    failed = False
    print(f"{'scenario':<20} {'committed':>10} {'fresh':>10} {'floor':>10}")
    for name in GUARDED_SCENARIOS:
        ref = reference[name]
        got = fresh["results"][name]["speedup"]
        floor = (1.0 - args.tolerance) * ref
        status = "ok" if got >= floor else "REGRESSED"
        print(f"{name:<20} {ref:>9.2f}x {got:>9.2f}x {floor:>9.2f}x  {status}")
        if got < floor:
            failed = True

    if failed:
        print("FAIL: data-plane speedup regressed >30% vs committed baseline",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
