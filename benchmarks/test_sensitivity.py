"""Calibration sensitivity — do the paper's claims survive being wrong
about the testbed?

The simulated cluster's constants (gap, overheads, rsh cost, per-byte
cost) are calibrated to Blue Pacific anchors, but the *claims* we
reproduce are structural: serialized flat tools collapse, pipelined
trees don't.  This bench perturbs every LogGP/cluster constant by
±50 % and re-checks the qualitative assertions of Figures 7a–7c — if
a shape claim only held at the calibrated point, the reproduction
would be an artifact of tuning, not of the architecture.
"""

import pytest

from repro.sim.cluster import BLUE_PACIFIC
from repro.sim.collectives import CollectiveSim
from repro.sim.instantiation import simulate_instantiation
from repro.topology import balanced_tree_for, flat_topology

SCALES = [0.5, 1.0, 2.0]
N = 512


def perturbed_params():
    """ClusterParams grid: every knob at 0.5×, 1×, 2× (one at a time,
    plus the all-scaled corners)."""
    out = []
    base = BLUE_PACIFIC
    for s in SCALES:
        logp = base.logp
        out.append(("g", s, base.with_(logp=logp.with_(g=logp.g * s))))
        out.append(("o", s, base.with_(logp=logp.with_(o=logp.o * s))))
        out.append(("L", s, base.with_(logp=logp.with_(L=logp.L * s))))
        out.append(("G", s, base.with_(logp=logp.with_(G=logp.G * s))))
        out.append(("rsh", s, base.with_(rsh_cost=base.rsh_cost * s)))
        out.append(
            ("fe-op", s, base.with_(frontend_op_cost=base.frontend_op_cost * s))
        )
        out.append(
            (
                "all",
                s,
                base.with_(
                    logp=logp.with_(
                        g=logp.g * s, o=logp.o * s, L=logp.L * s, G=logp.G * s
                    ),
                    rsh_cost=base.rsh_cost * s,
                    frontend_op_cost=base.frontend_op_cost * s,
                ),
            )
        )
    return out


def check_shapes(params):
    """The Figures 7a/7b/7c qualitative claims under one calibration."""
    flat = flat_topology(N)
    tree = balanced_tree_for(8, N)
    inst_ratio = (
        simulate_instantiation(flat, params).latency
        / simulate_instantiation(tree, params).latency
    )
    rt_ratio = (
        CollectiveSim(flat, params).roundtrip().latency
        / CollectiveSim(tree, params).roundtrip().latency
    )
    thr_flat = CollectiveSim(flat, params).pipelined_reductions(waves=30).throughput
    thr_tree = CollectiveSim(tree, params).pipelined_reductions(waves=30).throughput
    return inst_ratio, rt_ratio, thr_tree / max(thr_flat, 1e-12)


@pytest.mark.benchmark(group="sensitivity")
def test_shape_claims_robust_to_calibration(benchmark, report):
    results = benchmark.pedantic(
        lambda: [
            (knob, scale, *check_shapes(params))
            for knob, scale, params in perturbed_params()
        ],
        rounds=1,
        iterations=1,
    )
    rows = [
        (f"{knob} x{scale:g}", inst, rt, thr)
        for knob, scale, inst, rt, thr in results
    ]
    report(
        "sensitivity",
        f"Calibration sensitivity at {N} back-ends: tree-vs-flat advantage "
        "(instantiation, round-trip, throughput ratios) under ±2x knob "
        "perturbations",
        ["perturbation", "inst-ratio", "rt-ratio", "thr-ratio"],
        rows,
    )
    for knob, scale, inst_ratio, rt_ratio, thr_ratio in results:
        label = f"{knob} x{scale}"
        # Figure 7a: trees instantiate at least 10x faster at 512.
        assert inst_ratio > 10, f"instantiation claim broke under {label}"
        # Figure 7b: trees at least 5x lower round-trip latency.
        assert rt_ratio > 5, f"round-trip claim broke under {label}"
        # Figure 7c: trees sustain at least 5x the flat throughput.
        assert thr_ratio > 5, f"throughput claim broke under {label}"
