"""Figure 4 / §2.6 — balanced vs. unbalanced topology analysis.

The paper compares a fully-populated balanced tree (Figure 4a: fan-out
4, depth 2, 16 back-ends — broadcast in 8g + 4o + 2L, a new operation
every 4g) with an unbalanced binomial-based tree (Figure 4b: same 16
back-ends, six-way root fan-out — possibly lower single-operation
latency, but at least 6g between operations).  Balanced trees win on
pipelined throughput, which is why the paper's experiments use them.
"""

import pytest

from repro.sim.collectives import CollectiveSim
from repro.sim.logp import (
    LogGPParams,
    balanced_kary_broadcast_closed_form,
    broadcast_latency,
    injection_gap,
    pipelined_gap,
    pipelined_throughput,
)
from repro.topology import analyze, balanced_tree, unbalanced_fig4

# Gap-dominated parameters, the regime §2.6 discusses.
P = LogGPParams(L=20e-6, o=10e-6, g=1e-3, G=0.0)


def run_analysis():
    bal = balanced_tree(4, 2)  # Figure 4a
    unbal = unbalanced_fig4()  # Figure 4b
    rows = []
    for name, spec in (("balanced-4a", bal), ("unbalanced-4b", unbal)):
        stats = analyze(spec)
        rows.append(
            (
                name,
                stats.num_backends,
                stats.root_fanout,
                broadcast_latency(spec, P) * 1e3,
                injection_gap(spec, P) * 1e3,
                pipelined_gap(spec, P) * 1e3,
                pipelined_throughput(spec, P),
            )
        )
    return bal, unbal, rows


@pytest.mark.benchmark(group="fig4")
def test_fig4_balanced_vs_unbalanced(benchmark, report):
    bal, unbal, rows = benchmark.pedantic(run_analysis, rounds=1, iterations=1)
    report(
        "fig4_topology_analysis",
        "Figure 4: balanced (a) vs unbalanced (b) topologies, 16 back-ends "
        "(latencies/gaps in ms)",
        ["topology", "BEs", "root-fan", "bcast-lat", "inject-gap", "pipe-gap", "ops/s"],
        rows,
    )
    by = {r[0]: r for r in rows}
    # Both reach the same 16 back-ends; the unbalanced root is 6-way.
    assert by["balanced-4a"][1] == by["unbalanced-4b"][1] == 16
    assert by["unbalanced-4b"][2] == 6

    # The paper's closed form: 8g + 4o + 2L for Figure 4a.
    assert broadcast_latency(bal, P) == pytest.approx(
        8 * P.g + 4 * P.o + 2 * P.L
    )
    assert broadcast_latency(bal, P) == pytest.approx(
        balanced_kary_broadcast_closed_form(4, 2, P)
    )
    # "a single broadcast operation using this topology may complete
    # before the balanced tree's broadcast" — true when gaps dominate.
    assert by["unbalanced-4b"][3] < by["balanced-4a"][3]
    # "the tool can start a new broadcast each 4g cycles" vs "at least 6g".
    assert by["balanced-4a"][4] == pytest.approx(4 * P.g * 1e3)
    assert by["unbalanced-4b"][4] == pytest.approx(6 * P.g * 1e3)
    # Balanced wins sustained throughput — the paper's conclusion.
    assert by["balanced-4a"][6] > by["unbalanced-4b"][6]

    # Cross-check the analytic model against the DES: pipelined rates
    # should rank the same way.
    des_bal = CollectiveSim(bal).pipelined_reductions(waves=40).throughput
    des_unbal = CollectiveSim(unbal).pipelined_reductions(waves=40).throughput
    assert des_bal >= des_unbal * 0.95
