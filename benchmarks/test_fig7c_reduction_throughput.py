"""Figure 7c — MRNet micro-benchmark: data reduction throughput.

A stream of back-to-back reductions.  Paper shape: every topology
starts near the harness-bound ≈ 80 ops/s; the flat topology collapses
hyperbolically (the front-end handles every message of every wave and
"cannot start a subsequent reduction before the previous operation
completes"), while moderate-fan-out trees pipeline waves and hold
throughput high out to 600 back-ends (§4.1).
"""

import pytest

from repro.evaluation import DEFAULT_BACKEND_SWEEP, fig7c_throughput

BACKENDS = DEFAULT_BACKEND_SWEEP
WAVES = 60


def run_sweep():
    _, rows = fig7c_throughput(BACKENDS, waves=WAVES)
    return rows


@pytest.mark.benchmark(group="fig7c")
def test_fig7c_reduction_throughput(benchmark, report):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        "fig7c_reduction_throughput",
        "Figure 7c: data reduction throughput (operations/second)",
        ["back-ends", "flat", "4-way", "8-way"],
        rows,
    )
    by_n = {r[0]: r for r in rows}
    # All topologies start together near the ≈80 ops/s peak.
    assert 55 < by_n[4][1] < 90
    assert by_n[4][1] == pytest.approx(by_n[4][3], rel=0.2)
    # Flat decays hyperbolically below 12 ops/s by 600 back-ends.
    flat_curve = [r[1] for r in rows]
    assert all(a >= b - 1e-9 for a, b in zip(flat_curve, flat_curve[1:]))
    assert by_n[600][1] < 12
    # Trees hold high, roughly level throughput at scale.
    assert by_n[600][2] > 55 and by_n[600][3] > 55
    assert by_n[600][3] / by_n[16][3] > 0.75
    # Crossover factor at 600: trees win by >5x.
    assert by_n[600][3] / by_n[600][1] > 5
