"""Data-plane microbenchmark: lazy zero-copy vs. eager decode/re-encode.

Measures the three hop patterns the zero-copy lazy data plane targets
(paper §2.3: internal processes forward packets "by reference whenever
possible"):

1. **relay hop** — a comm node receives a batched message for a stream
   it holds no state for and forwards it unchanged.  Baseline: full
   eager decode (per-field parse + per-element validation, as the seed
   tree did) followed by a from-scratch re-encode.  New: header-only
   lazy decode, re-batching the original wire frames.
2. **8-ary fan-out** — one inbound downstream message flooded to eight
   children (eight `PacketBuffer`s, eight encodes).
3. **10k-element float reduction** — one wave of eight ``%alf`` packets
   summed by ``TFILTER_SUM``.  Baseline: tuple-decoded values and the
   per-element Python fold.  New: read-only ndarray views off the wire
   and a vectorized ``np.add`` reduction.
4. **end-to-end tree fan-in** — a live fan-out-16 depth-2 tree on TCP
   loopback; every backend bursts packets up a pass-through stream and
   the front end drains the flood.  Compares the selector event loop
   (adaptive flush batching, vectored writes) against the legacy
   thread-per-link runtime: wave latency and front-end inbound
   packets-per-message.
5. **pipelined large-payload reduction** — a depth-3 tree summing one
   multi-megabyte ``%alf`` array per back-end.  Baseline: whole-wave
   store-and-forward (``chunk_bytes=None``), which both serializes the
   hops and reallocates giant (mmap-ceiling) buffers at every level.
   New: ``chunk_bytes`` pipeline fragments reduced incrementally so
   consecutive hops overlap and buffers stay arena-sized.
6. **reduce-to-all** — the same tree and payload on a
   ``WAVE_REDUCE_TO_ALL`` stream: the reduced wave is also broadcast
   back down to every back-end, chunked vs. whole.

Writes ``BENCH_dataplane.json`` (repo root by default) with baseline
and new numbers plus speedups.  ``--smoke`` runs a fast sanity pass
(used by CI); it still checks that the lazy relay path wins, just with
fewer iterations.

Usage::

   PYTHONPATH=src python benchmarks/bench_dataplane.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import struct
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.batching import PacketBuffer, decode_batch, encode_batch  # noqa: E402
from repro.core.packet import Packet, PacketDecodeError  # noqa: E402
from repro.filters.base import FilterState  # noqa: E402
from repro.filters.transform import sum_filter  # noqa: E402

_U32 = struct.Struct(">I")


def decode_batch_validating(data):
    """The seed-equivalent eager path: full decode + value revalidation."""
    view = memoryview(data)
    (count,) = _U32.unpack_from(view, 0)
    offset = _U32.size
    packets = []
    for _ in range(count):
        (length,) = _U32.unpack_from(view, offset)
        offset += _U32.size
        end = offset + length
        if end > len(view):
            raise PacketDecodeError("truncated packet body")
        packet, consumed = Packet.decode_from(view[offset:end], 0, trusted=False)
        if consumed != length:
            raise PacketDecodeError("packet frame length mismatch")
        packets.append(packet)
        offset = end
    return packets


def _bench(fn, rounds: int, repeats: int = 3) -> float:
    """Best-of-N wall time for *rounds* calls of *fn* (seconds)."""
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(rounds):
            fn()
        timings.append(time.perf_counter() - start)
    return min(timings)


def make_relay_payload(n_packets: int) -> bytes:
    return encode_batch(
        [
            Packet(50, i, "%d %lf %s", (i, i * 0.5, f"metric-{i}"), origin_rank=i)
            for i in range(n_packets)
        ]
    )


def bench_relay(payload: bytes, n_packets: int, rounds: int) -> dict:
    """One relay hop: unbatch, queue toward parent, re-batch."""

    def eager():
        encode_batch(decode_batch_validating(payload))

    def lazy():
        encode_batch(decode_batch(payload))

    assert lazy_output_matches(payload)
    t_eager = _bench(eager, rounds)
    t_lazy = _bench(lazy, rounds)
    pps = lambda t: n_packets * rounds / t  # noqa: E731
    return {
        "packets_per_message": n_packets,
        "rounds": rounds,
        "baseline_pps": round(pps(t_eager), 1),
        "lazy_pps": round(pps(t_lazy), 1),
        "speedup": round(t_eager / t_lazy, 2),
    }


def lazy_output_matches(payload: bytes) -> bool:
    """The lazy relay must forward byte-identical messages."""
    return encode_batch(decode_batch(payload)) == payload


def bench_fanout(payload: bytes, n_packets: int, fanout: int, rounds: int) -> dict:
    """One inbound message flooded to *fanout* children."""

    def run(decoder):
        packets = decoder(payload)
        buffers = [PacketBuffer(i) for i in range(fanout)]
        for p in packets:
            for buf in buffers:
                buf.add(p)
        for buf in buffers:
            buf.encode()

    t_eager = _bench(lambda: run(decode_batch_validating), rounds)
    t_lazy = _bench(lambda: run(decode_batch), rounds)
    pps = lambda t: n_packets * fanout * rounds / t  # noqa: E731
    return {
        "packets_per_message": n_packets,
        "fanout": fanout,
        "rounds": rounds,
        "baseline_pps": round(pps(t_eager), 1),
        "lazy_pps": round(pps(t_lazy), 1),
        "speedup": round(t_eager / t_lazy, 2),
    }


def _tree_wave_latency(fanout: int, depth: int, burst: int, rounds: int):
    """Best-of-N latency for one burst fan-in wave over a live TCP tree.

    Builds a ``balanced_tree(fanout, depth)`` network, opens a
    pass-through stream (``TFILTER_NULL`` + ``SFILTER_DONTWAIT``), and
    times one full wave: broadcast a probe, every backend answers with
    *burst* packets, the front end drains all of them.  Returns the
    best wave time plus the front end's inbound packets-per-message
    ratio (how well comm nodes coalesced the fan-in).
    """
    from repro.core.network import Network
    from repro.filters import TFILTER_NULL
    from repro.filters.registry import SFILTER_DONTWAIT
    from repro.topology import balanced_tree

    net = Network(balanced_tree(fanout, depth), transport="tcp")
    try:
        comm = net.get_broadcast_communicator()
        stream = net.new_stream(comm, transform=TFILTER_NULL, sync=SFILTER_DONTWAIT)
        backends = [net.backends[r] for r in sorted(net.backends)]
        n = len(backends)

        def one_wave():
            stream.send("%d", 0)
            for be in backends:
                _, bstream = be.recv(timeout=60)
                for _ in range(burst):
                    bstream.send("%d", 1)
            got = 0
            while got < n * burst:
                stream.recv(timeout=60)
                got += 1

        one_wave()  # warmup: routes learned, buffers primed
        timings = []
        for _ in range(rounds):
            start = time.perf_counter()
            one_wave()
            timings.append(time.perf_counter() - start)
        fe = net.stats()["0:front-end"]
        pkts_per_msg = fe["packets_in"] / max(fe["messages_in"], 1)
    finally:
        net.shutdown()
    return min(timings), pkts_per_msg


def bench_tree(fanout: int, depth: int, burst: int, rounds: int) -> dict:
    """Absolute end-to-end wave latency over a live TCP tree.

    Exercises the full I/O stack — one selector loop per comm node,
    adaptive flush batching, vectored writes.  Until the thread-per-link
    driver was removed this scenario was a ratio against the legacy
    ``io_mode="threads"`` baseline; it is now a latency record (no
    ``speedup`` field, so check_regression.py skips it).
    """
    t_event, ppm_event = _tree_wave_latency(fanout, depth, burst, rounds)
    return {
        "fanout": fanout,
        "depth": depth,
        "burst_per_backend": burst,
        "rounds": rounds,
        "eventloop_wave_ms": round(t_event * 1e3, 2),
        "eventloop_fe_packets_per_message": round(ppm_event, 2),
    }


def _collective_wave_latency(
    chunk_bytes, pattern, n_elements: int, rounds: int, depth: int = 3
):
    """Best-of-N latency for one large-payload collective wave.

    Builds a ``balanced_tree(2, depth)`` TCP network, opens a
    ``TFILTER_SUM`` stream with the given ``chunk_bytes``/``pattern``,
    and times one full wave: broadcast a probe, every back-end answers
    with an ``n_elements`` float64 array, the front-end receives the
    aggregate (and, for reduce-to-all patterns, every back-end drains
    its broadcast copy too).  Payloads are pre-built ndarrays so the
    driver measures the tree, not tuple→array conversion.
    """
    import numpy as np

    from repro.core.network import Network
    from repro.core.protocol import WAVE_REDUCE
    from repro.filters import TFILTER_SUM
    from repro.topology import balanced_tree

    net = Network(balanced_tree(2, depth), transport="tcp")
    try:
        stream = net.new_stream(
            net.get_broadcast_communicator(),
            transform=TFILTER_SUM,
            chunk_bytes=chunk_bytes,
            pattern=pattern,
        )
        payload = np.arange(n_elements, dtype=np.float64) % 257
        payload.setflags(write=False)
        backends = [net.backends[r] for r in sorted(net.backends)]
        reduce_to_all = pattern != WAVE_REDUCE

        def one_wave():
            stream.send("%d", 0)
            for be in backends:
                _, bstream = be.recv(timeout=120)
                bstream.send("%alf", payload)
            stream.recv(timeout=120)
            if reduce_to_all:
                for be in backends:
                    be.recv(timeout=120)  # the down-broadcast copy

        one_wave()  # warmup: routes learned, buffers primed
        timings = []
        for _ in range(rounds):
            start = time.perf_counter()
            one_wave()
            timings.append(time.perf_counter() - start)
    finally:
        net.shutdown()
    return min(timings)


def bench_pipelined_reduction(n_elements: int, chunk_bytes: int, rounds: int) -> dict:
    """Chunked pipelined reduction vs. whole-wave baseline at depth 3.

    The whole-wave baseline (``chunk_bytes=None``) store-and-forwards
    each complete payload at every hop; the pipelined run splits it
    into ``chunk_bytes`` fragments reduced incrementally, so hop k
    processes fragment i while hop k−1 processes fragment i+1.
    """
    from repro.core.protocol import WAVE_REDUCE

    t_whole = _collective_wave_latency(None, WAVE_REDUCE, n_elements, rounds)
    t_piped = _collective_wave_latency(chunk_bytes, WAVE_REDUCE, n_elements, rounds)
    return {
        "payload_mb": round(n_elements * 8 / (1 << 20), 2),
        "depth": 3,
        "chunk_bytes": chunk_bytes,
        "rounds": rounds,
        "baseline_wave_ms": round(t_whole * 1e3, 2),
        "pipelined_wave_ms": round(t_piped * 1e3, 2),
        "speedup": round(t_whole / t_piped, 2),
    }


def bench_allreduce(n_elements: int, chunk_bytes: int, rounds: int) -> dict:
    """Reduce-to-all (up-reduce + down-broadcast) with and without
    chunking: fragments broadcast back down as they are reduced, so
    the downward hops overlap the tail of the upward reduction."""
    from repro.core.protocol import WAVE_REDUCE_TO_ALL

    t_whole = _collective_wave_latency(
        None, WAVE_REDUCE_TO_ALL, n_elements, rounds
    )
    t_piped = _collective_wave_latency(
        chunk_bytes, WAVE_REDUCE_TO_ALL, n_elements, rounds
    )
    return {
        "payload_mb": round(n_elements * 8 / (1 << 20), 2),
        "depth": 3,
        "chunk_bytes": chunk_bytes,
        "rounds": rounds,
        "baseline_wave_ms": round(t_whole * 1e3, 2),
        "pipelined_wave_ms": round(t_piped * 1e3, 2),
        "speedup": round(t_whole / t_piped, 2),
    }


def bench_reduction(n_elements: int, wave_size: int, rounds: int) -> dict:
    """A TFILTER_SUM wave of %alf packets, one per child."""
    frames = [
        encode_batch(
            [
                Packet(
                    60,
                    1,
                    "%alf",
                    (tuple(float(i + c) for i in range(n_elements)),),
                    origin_rank=c,
                )
            ]
        )
        for c in range(wave_size)
    ]

    def run(decoder):
        wave = [decoder(f)[0] for f in frames]
        (out,) = sum_filter(wave, FilterState())
        out.to_bytes()

    # sanity: both paths agree
    eager_wave = [decode_batch_validating(f)[0] for f in frames]
    lazy_wave = [decode_batch(f)[0] for f in frames]
    (ref,) = sum_filter(eager_wave, FilterState())
    (vec,) = sum_filter(lazy_wave, FilterState())
    assert all(
        abs(a - b) < 1e-6 for a, b in zip(ref.values[0], vec.values[0])
    ), "vectorized reduction disagrees with scalar fold"

    t_eager = _bench(lambda: run(decode_batch_validating), rounds)
    t_lazy = _bench(lambda: run(decode_batch), rounds)
    ops = lambda t: rounds / t  # noqa: E731
    return {
        "elements": n_elements,
        "wave_size": wave_size,
        "rounds": rounds,
        "baseline_ops_per_s": round(ops(t_eager), 2),
        "vectorized_ops_per_s": round(ops(t_lazy), 2),
        "speedup": round(t_eager / t_lazy, 2),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="fast sanity pass (CI)"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_dataplane.json",
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        relay_rounds, fanout_rounds, reduce_rounds = 20, 10, 5
        tree_fanout, tree_rounds = 4, 2
        # Smoke keeps the tree small and the payload at 1 MiB so CI
        # stays fast; the pipelining win at this scale is modest.
        pipe_elements, pipe_chunk, pipe_rounds = 1 << 17, 1 << 17, 2
    else:
        relay_rounds, fanout_rounds, reduce_rounds = 300, 100, 60
        tree_fanout, tree_rounds = 16, 5
        # 32 MiB of float64 per back-end, 1 MiB pipeline fragments.
        # At this size every whole-wave hop allocates buffers past the
        # allocator's mmap ceiling (fresh zero-filled pages per wave),
        # while 1 MiB fragments recycle through the arena — the
        # big-payload pathology pipelining exists to fix.
        pipe_elements, pipe_chunk, pipe_rounds = 1 << 22, 1 << 20, 3

    n_packets = 256
    payload = make_relay_payload(n_packets)

    results = {
        "relay_hop": bench_relay(payload, n_packets, relay_rounds),
        "fanout_8ary": bench_fanout(payload, n_packets, 8, fanout_rounds),
        "reduction_10k_lf": bench_reduction(10_000, 8, reduce_rounds),
        "tree_fanin": bench_tree(tree_fanout, 2, 8, tree_rounds),
        "pipelined_reduction": bench_pipelined_reduction(
            pipe_elements, pipe_chunk, pipe_rounds
        ),
        "allreduce_tree": bench_allreduce(
            pipe_elements, pipe_chunk, pipe_rounds
        ),
    }

    # Per-mode speedup references (smoke ratios are not comparable to
    # full-mode ones).  Preserve the other mode's reference when
    # regenerating, so CI's check_regression.py always has a baseline
    # matching its run mode.  Other benchmarks (bench_recovery.py)
    # merge their own result entries into the same file; preserve
    # those too, and never assume a foreign entry has a "speedup".
    mode = "smoke" if args.smoke else "full"
    reference = {}
    prior_results = {}
    if args.out.exists():
        try:
            prior = json.loads(args.out.read_text())
            reference = prior.get("reference_speedups", {})
            prior_results = prior.get("results", {})
        except (json.JSONDecodeError, OSError):
            reference, prior_results = {}, {}
    reference[mode] = {
        name: row["speedup"]
        for name, row in results.items()
        if "speedup" in row
    }
    merged_results = {
        name: row
        for name, row in prior_results.items()
        if name not in results
    }
    merged_results.update(results)

    doc = {
        "benchmark": "bench_dataplane",
        "description": (
            "Per-hop data-plane cost: eager decode/validate/re-encode "
            "(seed baseline) vs. zero-copy lazy decode (new)"
        ),
        "mode": mode,
        "python": sys.version.split()[0],
        "results": merged_results,
        "reference_speedups": reference,
    }
    args.out.write_text(json.dumps(doc, indent=2) + "\n")

    print(f"{'scenario':<20} {'baseline':>14} {'new':>14} {'speedup':>9}")
    for name, row in results.items():
        if "speedup" not in row:
            continue
        base = row.get(
            "baseline_pps",
            row.get("baseline_ops_per_s", row.get("baseline_wave_ms")),
        )
        new = row.get(
            "lazy_pps",
            row.get(
                "vectorized_ops_per_s",
                row.get("eventloop_wave_ms", row.get("pipelined_wave_ms")),
            ),
        )
        print(f"{name:<20} {base:>14,.1f} {new:>14,.1f} {row['speedup']:>8.2f}x")
    print(f"\nresults written to {args.out}")

    if results["relay_hop"]["speedup"] < (1.5 if args.smoke else 3.0):
        print("FAIL: relay-hop speedup below threshold", file=sys.stderr)
        return 1
    # The live-tree comparisons are noise-prone at smoke scale; enforce
    # the acceptance bars only on full runs.
    if not args.smoke and results["pipelined_reduction"]["speedup"] < 2.0:
        print(
            "FAIL: pipelined-reduction wave-latency speedup below 2x",
            file=sys.stderr,
        )
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
