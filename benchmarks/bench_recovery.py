"""Chaos benchmark: recovery latency and steady-state heartbeat cost.

Two questions the fault-tolerance layer must answer with numbers:

1. **Recovery latency** — kill one internal node of a live
   fan-out-4 × depth-2 TCP tree (seeded
   :class:`repro.faultinject.FaultSchedule`, so every run kills the
   same node at the same point) and measure

   * ``degraded_wave_ms``: kill → the in-flight Wait-For-All wave
     completes over the survivors, and
   * ``repair_ms``: kill → a wave again covers the *full* rank set
     (orphans re-adopted, routing and stream membership rebuilt).

2. **Heartbeat overhead** — the steady-state price of liveness
   probing: wave latency on an identical tree and workload with
   heartbeats off vs. probing at ``--hb-interval``.  The acceptance
   bar is < 10% regression (``overhead_ratio < 1.10``).

Results are merged into ``BENCH_dataplane.json`` (new keys beside the
data-plane scenarios; entries carry no ``speedup`` field and are
skipped by the speedup regression guard)::

   PYTHONPATH=src python benchmarks/bench_recovery.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import REPAIR, Network  # noqa: E402
from repro.faultinject import FaultInjector, FaultSchedule  # noqa: E402
from repro.filters import TFILTER_NULL, TFILTER_SUM  # noqa: E402
from repro.filters.registry import SFILTER_DONTWAIT  # noqa: E402
from repro.topology import balanced_tree  # noqa: E402


def _poll_backends(net, replied):
    for rank, be in net.backends.items():
        if be.shut_down or rank in replied:
            continue
        try:
            got = be.poll()
        except Exception:
            replied.add(rank)
            continue
        if got is None:
            continue
        _, bstream = got
        try:
            bstream.send("%d", 1)
        except Exception:
            pass
        replied.add(rank)


def _drive_wave(net, stream, timeout=30.0):
    """Broadcast-and-reduce one wave; returns the aggregated sum."""
    stream.send("%d", 0)
    net.flush()
    deadline = time.monotonic() + timeout
    replied = set()
    while time.monotonic() < deadline:
        _poll_backends(net, replied)
        try:
            return stream.recv(timeout=0.02).values[0]
        except TimeoutError:
            continue
    raise TimeoutError("wave did not complete")


def bench_recovery_latency(fanout: int, depth: int, rounds: int, seed: int) -> dict:
    n = fanout**depth
    degraded, repaired, adopted = [], [], []
    for r in range(rounds):
        net = Network(balanced_tree(fanout, depth), transport="tcp", policy=REPAIR)
        try:
            stream = net.new_stream(
                net.get_broadcast_communicator(), transform=TFILTER_SUM
            )
            assert _drive_wave(net, stream) == n

            # Broadcast a wave, let it reach the leaves, then fire the
            # seeded kill while the wave is in flight.
            stream.send("%d", 0)
            net.flush()
            time.sleep(0.05)
            sched = FaultSchedule.random(
                FaultInjector(net), seed=seed + r, n_faults=1, horizon=0.0
            )
            sched.arm()
            sched.poll()  # horizon 0: the kill fires immediately
            t_kill = time.monotonic()

            replied = set()
            while True:
                _poll_backends(net, replied)
                try:
                    stream.recv(timeout=0.02)
                    break
                except TimeoutError:
                    if time.monotonic() - t_kill > 30.0:
                        raise TimeoutError("degraded wave never completed")
            degraded.append((time.monotonic() - t_kill) * 1e3)

            # Drive waves until full membership returns.
            while True:
                if _drive_wave(net, stream) == n:
                    break
                if time.monotonic() - t_kill > 30.0:
                    raise TimeoutError("membership never recovered")
            repaired.append((time.monotonic() - t_kill) * 1e3)
            adopted.append(net.stats()["recovery"]["orphans_adopted"])
        finally:
            net.shutdown()
    return {
        "fanout": fanout,
        "depth": depth,
        "rounds": rounds,
        "seed": seed,
        "degraded_wave_ms": round(statistics.median(degraded), 2),
        "repair_ms": round(statistics.median(repaired), 2),
        "orphans_adopted_per_round": round(statistics.mean(adopted), 2),
    }


def _wave_latency(hb_interval: float, fanout: int, depth: int, burst: int, rounds: int):
    """Best-of-N burst fan-in wave latency (mirrors bench_dataplane's
    tree_fanin workload) at the given heartbeat setting."""
    net = Network(
        balanced_tree(fanout, depth),
        transport="tcp",
        heartbeat_interval=hb_interval,
    )
    try:
        stream = net.new_stream(
            net.get_broadcast_communicator(),
            transform=TFILTER_NULL,
            sync=SFILTER_DONTWAIT,
        )
        backends = [net.backends[r] for r in sorted(net.backends)]
        n = len(backends)

        def one_wave():
            stream.send("%d", 0)
            for be in backends:
                _, bstream = be.recv(timeout=60)
                for _ in range(burst):
                    bstream.send("%d", 1)
            got = 0
            while got < n * burst:
                stream.recv(timeout=60)
                got += 1

        one_wave()  # warmup
        timings = []
        for _ in range(rounds):
            start = time.perf_counter()
            one_wave()
            timings.append(time.perf_counter() - start)
    finally:
        net.shutdown()
    return min(timings)


def bench_heartbeat_overhead(
    fanout: int, depth: int, burst: int, rounds: int, interval: float
) -> dict:
    t_off = _wave_latency(0.0, fanout, depth, burst, rounds)
    t_on = _wave_latency(interval, fanout, depth, burst, rounds)
    return {
        "fanout": fanout,
        "depth": depth,
        "burst_per_backend": burst,
        "rounds": rounds,
        "heartbeat_interval_s": interval,
        "wave_ms_heartbeats_off": round(t_off * 1e3, 2),
        "wave_ms_heartbeats_on": round(t_on * 1e3, 2),
        "overhead_ratio": round(t_on / t_off, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="fast sanity pass (CI)")
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_dataplane.json",
        help="benchmark JSON to merge results into",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--hb-interval", type=float, default=0.05, help="probe period (s)"
    )
    args = parser.parse_args(argv)

    if args.smoke:
        rec_rounds, hb_rounds, burst, fanout = 2, 3, 4, 4
    else:
        rec_rounds, hb_rounds, burst, fanout = 5, 8, 8, 4

    recovery = bench_recovery_latency(fanout, 2, rec_rounds, args.seed)
    overhead = bench_heartbeat_overhead(fanout, 2, burst, hb_rounds, args.hb_interval)

    doc = {}
    if args.out.exists():
        try:
            doc = json.loads(args.out.read_text())
        except (json.JSONDecodeError, OSError):
            doc = {}
    doc.setdefault("benchmark", "bench_dataplane")
    doc.setdefault("results", {})
    doc["results"]["recovery_latency"] = recovery
    doc["results"]["heartbeat_overhead"] = overhead
    args.out.write_text(json.dumps(doc, indent=2) + "\n")

    print(
        f"recovery ({fanout}-ary depth-2, {rec_rounds} rounds): "
        f"degraded wave {recovery['degraded_wave_ms']:.1f} ms, "
        f"full repair {recovery['repair_ms']:.1f} ms, "
        f"{recovery['orphans_adopted_per_round']:.1f} orphans/round"
    )
    print(
        f"heartbeats @ {args.hb_interval}s: wave "
        f"{overhead['wave_ms_heartbeats_off']:.2f} ms -> "
        f"{overhead['wave_ms_heartbeats_on']:.2f} ms "
        f"(ratio {overhead['overhead_ratio']:.3f})"
    )
    print(f"results merged into {args.out}")

    if recovery["repair_ms"] >= 5000.0:
        print("FAIL: full repair took >= 5 s", file=sys.stderr)
        return 1
    # The wave-latency comparison is noise-prone at smoke scale;
    # enforce the <10% acceptance bar only on full runs.
    if not args.smoke and overhead["overhead_ratio"] >= 1.10:
        print("FAIL: heartbeat overhead >= 10%", file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
