"""Chaos benchmark: recovery latency and steady-state heartbeat cost.

Four questions the fault-tolerance layer must answer with numbers:

1. **Recovery latency** — kill one internal node of a live
   fan-out-4 × depth-2 TCP tree (seeded
   :class:`repro.faultinject.FaultSchedule`, so every run kills the
   same node at the same point) and measure

   * ``degraded_wave_ms``: kill → the in-flight Wait-For-All wave
     completes over the survivors, and
   * ``repair_ms``: kill → a wave again covers the *full* rank set
     (orphans re-adopted, routing and stream membership rebuilt).

2. **Heartbeat overhead** — the steady-state price of liveness
   probing: wave latency on an identical tree and workload with
   heartbeats off vs. probing at ``--hb-interval``.  The acceptance
   bar is < 10% regression (``overhead_ratio < 1.10``).

3. **Wave recovery** — kill an internal node mid-*chunked*-wave under
   ``repair`` with checkpointing on, and measure ``wave_recovery_ms``:
   kill → a wave completes **byte-identical** to the fault-free
   result (orphan history replay deduplicated by checkpoint-seeded
   watermarks; no contribution lost or doubled).

4. **Checkpoint overhead** — the steady-state price of periodic
   ``TAG_CHECKPOINT`` deposits: wave latency with
   ``checkpoint_interval`` unset vs. set.  The acceptance bar is
   < 15% with checkpointing on (``overhead_ratio < 1.15``).

Results are merged into ``BENCH_dataplane.json`` (new keys beside the
data-plane scenarios; entries carry no ``speedup`` field and are
skipped by the speedup regression guard)::

   PYTHONPATH=src python benchmarks/bench_recovery.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import statistics
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import REPAIR, Network  # noqa: E402
from repro.faultinject import FaultInjector, FaultSchedule  # noqa: E402
from repro.filters import TFILTER_NULL, TFILTER_SUM  # noqa: E402
from repro.filters.registry import SFILTER_DONTWAIT  # noqa: E402
from repro.topology import balanced_tree  # noqa: E402


def _poll_backends(net, replied):
    for rank, be in net.backends.items():
        if be.shut_down or rank in replied:
            continue
        try:
            got = be.poll()
        except Exception:
            replied.add(rank)
            continue
        if got is None:
            continue
        _, bstream = got
        try:
            bstream.send("%d", 1)
        except Exception:
            pass
        replied.add(rank)


def _drive_wave(net, stream, timeout=30.0):
    """Broadcast-and-reduce one wave; returns the aggregated sum."""
    stream.send("%d", 0)
    net.flush()
    deadline = time.monotonic() + timeout
    replied = set()
    while time.monotonic() < deadline:
        _poll_backends(net, replied)
        try:
            return stream.recv(timeout=0.02).values[0]
        except TimeoutError:
            continue
    raise TimeoutError("wave did not complete")


def bench_recovery_latency(fanout: int, depth: int, rounds: int, seed: int) -> dict:
    n = fanout**depth
    degraded, repaired, adopted = [], [], []
    for r in range(rounds):
        net = Network(balanced_tree(fanout, depth), transport="tcp", policy=REPAIR)
        try:
            stream = net.new_stream(
                net.get_broadcast_communicator(), transform=TFILTER_SUM
            )
            assert _drive_wave(net, stream) == n

            # Broadcast a wave, let it reach the leaves, then fire the
            # seeded kill while the wave is in flight.
            stream.send("%d", 0)
            net.flush()
            time.sleep(0.05)
            sched = FaultSchedule.random(
                FaultInjector(net), seed=seed + r, n_faults=1, horizon=0.0
            )
            sched.arm()
            sched.poll()  # horizon 0: the kill fires immediately
            t_kill = time.monotonic()

            replied = set()
            while True:
                _poll_backends(net, replied)
                try:
                    stream.recv(timeout=0.02)
                    break
                except TimeoutError:
                    if time.monotonic() - t_kill > 30.0:
                        raise TimeoutError("degraded wave never completed")
            degraded.append((time.monotonic() - t_kill) * 1e3)

            # Drive waves until full membership returns.
            while True:
                if _drive_wave(net, stream) == n:
                    break
                if time.monotonic() - t_kill > 30.0:
                    raise TimeoutError("membership never recovered")
            repaired.append((time.monotonic() - t_kill) * 1e3)
            adopted.append(net.stats()["recovery"]["orphans_adopted"])
        finally:
            net.shutdown()
    return {
        "fanout": fanout,
        "depth": depth,
        "rounds": rounds,
        "seed": seed,
        "degraded_wave_ms": round(statistics.median(degraded), 2),
        "repair_ms": round(statistics.median(repaired), 2),
        "orphans_adopted_per_round": round(statistics.mean(adopted), 2),
    }


def bench_wave_recovery(rounds: int, checkpoint_interval: float) -> dict:
    """Kill an internal node mid-chunked-wave; time to a byte-identical wave.

    A 2-ary depth-2 TCP tree under ``repair`` with checkpointing on
    runs one fault-free chunked reference wave, then loses the comm
    node parenting ranks 0-1 while rank 0's fragment sequence is in
    flight.  The measured latency is kill → the first wave whose
    reassembled array equals the fault-free result exactly (every
    contribution once: replayed histories deduplicated by the
    checkpoint-seeded watermark at the adopter).
    """
    n_elems, chunk_bytes = 1024, 2048
    payload = tuple(float(i % 97) for i in range(n_elems))
    expected = (tuple(v * 4 for v in payload),)
    latencies, retransmitted = [], []

    def drive_chunked_wave(net, stream, pending, timeout=30.0):
        """Poll *pending* back-ends to contribute; return one wave."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            for rank in list(pending):
                be = net.backends[rank]
                try:
                    got = be.poll()
                except Exception:
                    pending.discard(rank)
                    continue
                if got is None:
                    continue
                _, bstream = got
                try:
                    bstream.send("%alf", payload)
                except Exception:
                    pass
                pending.discard(rank)
            try:
                return stream.recv(timeout=0.02).values
            except TimeoutError:
                continue
        raise TimeoutError("chunked wave did not complete")

    for r in range(rounds):
        net = Network(
            balanced_tree(2, 2),
            transport="tcp",
            policy=REPAIR,
            checkpoint_interval=checkpoint_interval,
        )
        try:
            stream = net.new_stream(
                net.get_broadcast_communicator(),
                transform=TFILTER_SUM,
                chunk_bytes=chunk_bytes,
            )
            # Fault-free reference wave, then wait for the doomed
            # node's checkpoint deposit to land at the front-end.
            stream.send("%d", 0)
            got = drive_chunked_wave(net, stream, set(net.backends))
            assert got == expected
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                net.flush()
                if net._core._checkpoints:
                    break
                time.sleep(0.005)

            # Wave 2: rank 0's fragments are in flight when its parent
            # (deterministically the first comm node) is killed.
            stream.send("%d", 0)
            for rank in sorted(net.backends):
                _, bstream = net.backends[rank].recv(timeout=30.0)
                if rank == 0:
                    bstream.send("%alf", payload)
            FaultInjector(net).kill_commnode(0)
            t_kill = time.monotonic()

            pending = set(net.backends) - {0}
            recovered = None
            while time.monotonic() - t_kill < 30.0:
                try:
                    values = drive_chunked_wave(net, stream, pending, timeout=2.0)
                except TimeoutError:
                    pass
                else:
                    if values == expected:
                        recovered = (time.monotonic() - t_kill) * 1e3
                        break
                # Short (survivor-only) wave or timeout: run another.
                stream.send("%d", 0)
                pending = set(net.backends)
            if recovered is None:
                raise TimeoutError("no byte-identical wave within 30 s")
            latencies.append(recovered)
            retransmitted.append(
                sum(be.chunks_retransmitted for be in net.backends.values())
            )
        finally:
            net.shutdown()
    return {
        "rounds": rounds,
        "elements": n_elems,
        "chunk_bytes": chunk_bytes,
        "checkpoint_interval_s": checkpoint_interval,
        "wave_recovery_ms": round(statistics.median(latencies), 2),
        "chunks_retransmitted_per_round": round(statistics.mean(retransmitted), 2),
    }


def _paired_wave_latency(
    fanout: int,
    depth: int,
    burst: int,
    rounds: int,
    settings_a: dict,
    settings_b: dict,
):
    """Best-of-N burst fan-in wave latency (mirrors bench_dataplane's
    tree_fanin workload) for two network configurations at once.

    The two trees are built side by side and their waves interleaved
    round by round, so background-load drift hits both equally and the
    overhead *ratio* stays meaningful even on a noisy machine — the
    sequential measure-A-then-B layout this replaces conflated load
    swings with the feature under test.
    """
    nets, setups = [], []
    try:
        for settings in (settings_a, settings_b):
            net = Network(
                balanced_tree(fanout, depth), transport="tcp", **settings
            )
            nets.append(net)
            stream = net.new_stream(
                net.get_broadcast_communicator(),
                transform=TFILTER_NULL,
                sync=SFILTER_DONTWAIT,
            )
            backends = [net.backends[r] for r in sorted(net.backends)]
            setups.append((stream, backends))

        def one_wave(stream, backends):
            stream.send("%d", 0)
            for be in backends:
                _, bstream = be.recv(timeout=60)
                for _ in range(burst):
                    bstream.send("%d", 1)
            got = 0
            while got < len(backends) * burst:
                stream.recv(timeout=60)
                got += 1

        for setup in setups:
            one_wave(*setup)  # warmup
        timings = ([], [])
        for _ in range(rounds):
            for i, setup in enumerate(setups):
                start = time.perf_counter()
                one_wave(*setup)
                timings[i].append(time.perf_counter() - start)
    finally:
        for net in nets:
            net.shutdown()
    return min(timings[0]), min(timings[1])


def bench_heartbeat_overhead(
    fanout: int, depth: int, burst: int, rounds: int, interval: float
) -> dict:
    t_off, t_on = _paired_wave_latency(
        fanout, depth, burst, rounds, {}, {"heartbeat_interval": interval}
    )
    return {
        "fanout": fanout,
        "depth": depth,
        "burst_per_backend": burst,
        "rounds": rounds,
        "heartbeat_interval_s": interval,
        "wave_ms_heartbeats_off": round(t_off * 1e3, 2),
        "wave_ms_heartbeats_on": round(t_on * 1e3, 2),
        "overhead_ratio": round(t_on / t_off, 3),
    }


def bench_checkpoint_overhead(
    fanout: int, depth: int, burst: int, rounds: int, interval: float
) -> dict:
    t_off, t_on = _paired_wave_latency(
        fanout, depth, burst, rounds, {}, {"checkpoint_interval": interval}
    )
    return {
        "fanout": fanout,
        "depth": depth,
        "burst_per_backend": burst,
        "rounds": rounds,
        "checkpoint_interval_s": interval,
        "wave_ms_checkpoint_off": round(t_off * 1e3, 2),
        "wave_ms_checkpoint_on": round(t_on * 1e3, 2),
        "overhead_ratio": round(t_on / t_off, 3),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="fast sanity pass (CI)")
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_dataplane.json",
        help="benchmark JSON to merge results into",
    )
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--hb-interval", type=float, default=0.05, help="probe period (s)"
    )
    parser.add_argument(
        "--checkpoint-interval",
        type=float,
        default=0.02,
        help="deposit period (s) for the checkpoint-overhead scenario",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        rec_rounds, hb_rounds, burst, fanout, wr_rounds = 2, 3, 4, 4, 2
    else:
        rec_rounds, hb_rounds, burst, fanout, wr_rounds = 5, 8, 8, 4, 5
    mode = "smoke" if args.smoke else "full"

    recovery = bench_recovery_latency(fanout, 2, rec_rounds, args.seed)
    overhead = bench_heartbeat_overhead(fanout, 2, burst, hb_rounds, args.hb_interval)
    wave_rec = bench_wave_recovery(wr_rounds, args.checkpoint_interval)
    ckpt = bench_checkpoint_overhead(
        fanout, 2, burst, hb_rounds, args.checkpoint_interval
    )

    doc = {}
    if args.out.exists():
        try:
            doc = json.loads(args.out.read_text())
        except (json.JSONDecodeError, OSError):
            doc = {}
    doc.setdefault("benchmark", "bench_dataplane")
    doc.setdefault("results", {})
    doc["results"]["recovery_latency"] = recovery
    doc["results"]["heartbeat_overhead"] = overhead
    doc["results"]["wave_recovery"] = {**wave_rec, "mode": mode}
    doc["results"]["checkpoint_overhead"] = {**ckpt, "mode": mode}
    args.out.write_text(json.dumps(doc, indent=2) + "\n")

    print(
        f"recovery ({fanout}-ary depth-2, {rec_rounds} rounds): "
        f"degraded wave {recovery['degraded_wave_ms']:.1f} ms, "
        f"full repair {recovery['repair_ms']:.1f} ms, "
        f"{recovery['orphans_adopted_per_round']:.1f} orphans/round"
    )
    print(
        f"heartbeats @ {args.hb_interval}s: wave "
        f"{overhead['wave_ms_heartbeats_off']:.2f} ms -> "
        f"{overhead['wave_ms_heartbeats_on']:.2f} ms "
        f"(ratio {overhead['overhead_ratio']:.3f})"
    )
    print(
        f"wave recovery (mid-chunk kill, {wr_rounds} rounds): "
        f"byte-identical wave after {wave_rec['wave_recovery_ms']:.1f} ms, "
        f"{wave_rec['chunks_retransmitted_per_round']:.1f} chunks replayed/round"
    )
    print(
        f"checkpoints @ {args.checkpoint_interval}s: wave "
        f"{ckpt['wave_ms_checkpoint_off']:.2f} ms -> "
        f"{ckpt['wave_ms_checkpoint_on']:.2f} ms "
        f"(ratio {ckpt['overhead_ratio']:.3f})"
    )
    print(f"results merged into {args.out}")

    failed = False
    if recovery["repair_ms"] >= 5000.0:
        print("FAIL: full repair took >= 5 s", file=sys.stderr)
        failed = True
    if wave_rec["wave_recovery_ms"] >= 5000.0:
        print("FAIL: byte-identical wave recovery took >= 5 s", file=sys.stderr)
        failed = True
    # The wave-latency comparisons are noise-prone at smoke scale;
    # enforce the <10% / <15% acceptance bars only on full runs.
    if not args.smoke and overhead["overhead_ratio"] >= 1.10:
        print("FAIL: heartbeat overhead >= 10%", file=sys.stderr)
        failed = True
    if not args.smoke and ckpt["overhead_ratio"] >= 1.15:
        print("FAIL: checkpoint overhead >= 15%", file=sys.stderr)
        failed = True
    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
