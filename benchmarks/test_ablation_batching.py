"""Ablation A2 — packet batching (§2.3 design choice).

"Data packets are batched into packet buffers ... to allow for fewer
larger messages to be sent over busy connections, reducing overall
communication costs."

Two measurements:

1. **Live runtime**: drive a burst of packets through a real comm-node
   tree and read the nodes' message counters — batching should ship
   the burst in far fewer transport messages than packets forwarded.
2. **Cost model**: with a per-message cost ``2o + L`` and per-byte cost
   ``G``, compare shipping N packets individually vs. in batches of
   B — the classic fixed-cost amortization that motivates the design.
"""

import pytest

from repro.core import Network
from repro.core.batching import encode_batch
from repro.core.packet import Packet
from repro.filters import SFILTER_DONTWAIT, TFILTER_NULL
from repro.sim.logp import BLUE_PACIFIC_LOGP, message_cost
from repro.topology import balanced_tree

BURST = 200


def live_batching_counts():
    """Packets forwarded vs transport messages sent at internal nodes."""
    net = Network(balanced_tree(2, 2))
    try:
        comm = net.get_broadcast_communicator()
        stream = net.new_stream(comm, transform=TFILTER_NULL, sync=SFILTER_DONTWAIT)
        for i in range(BURST):
            stream.send("%d %s", i, "x" * 32)
        # Drain everything at the back-ends: each sees the full burst.
        received = 0
        for rank in sorted(net.backends):
            be = net.backends[rank]
            for _ in range(BURST):
                got = be.recv(timeout=10)
                assert got is not None
                received += 1
        packets = sum(n.core.stats["packets_down"] for n in net._commnodes)
        messages = sum(n.core.stats["messages_sent"] for n in net._commnodes)
        return packets, messages, received
    finally:
        net.shutdown()


def model_costs():
    """Simulated cost of N packets sent singly vs in batches."""
    p = BLUE_PACIFIC_LOGP
    pkt = Packet(1, 0, "%d %s", (1, "x" * 32))
    nbytes = pkt.nbytes
    rows = []
    for batch_size in (1, 4, 16, 64):
        n_messages = -(-BURST // batch_size)
        batch_bytes = len(
            encode_batch([pkt] * batch_size)
        )
        cost = n_messages * message_cost(p, batch_bytes)
        rows.append((batch_size, n_messages, batch_bytes, cost * 1e3))
    return rows, nbytes


@pytest.mark.benchmark(group="ablation-batching")
def test_ablation_packet_batching(benchmark, report):
    (packets, messages, received), (rows, _) = benchmark.pedantic(
        lambda: (live_batching_counts(), model_costs()), rounds=1, iterations=1
    )
    table = [(b, n, sz, cost) for b, n, sz, cost in rows]
    table.append(("live", f"{messages} msgs", f"{packets} pkts",
                  packets / max(messages, 1)))
    report(
        "ablation_batching",
        f"Ablation A2: batching {BURST} packets (model costs in ms; last "
        "row: live comm-node counters, value = packets per message)",
        ["batch", "messages", "bytes/batch", "cost-or-ratio"],
        table,
    )
    # Live: all packets delivered; batching shipped multiple packets per
    # transport message on average.
    assert received == BURST * 4
    assert packets >= BURST  # every node forwarded the whole burst
    assert messages < packets, "batching must coalesce the burst"
    # Model: total cost strictly decreases with batch size (per-message
    # overhead amortized; per-byte cost identical).
    costs = [r[3] for r in rows]
    assert costs == sorted(costs, reverse=True)
    assert costs[0] / costs[-1] > 2.0
