"""Figure 7b — MRNet micro-benchmark: round-trip latency.

One broadcast followed by one data reduction, measured through the
discrete-event simulator.  Paper shape: the flat topology serializes
point-to-point transfers at the front-end so latency grows linearly to
≈ 1.2–1.4 s at 600 back-ends; multi-level trees stay roughly level
(well under 0.2 s) because transfers proceed in parallel down/up the
tree (§4.1).
"""

import pytest

from repro.evaluation import DEFAULT_BACKEND_SWEEP, fig7b_roundtrip

BACKENDS = DEFAULT_BACKEND_SWEEP


def run_sweep():
    _, rows = fig7b_roundtrip(BACKENDS)
    return rows


@pytest.mark.benchmark(group="fig7b")
def test_fig7b_roundtrip_latency(benchmark, report):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        "fig7b_roundtrip_latency",
        "Figure 7b: round-trip latency of broadcast + reduction (seconds)",
        ["back-ends", "flat", "4-way", "8-way"],
        rows,
    )
    by_n = {r[0]: r for r in rows}
    # Flat: linear growth into the paper's ≈1.2–1.4 s band at 600.
    assert 0.9 < by_n[600][1] < 1.7
    assert by_n[600][1] / by_n[128][1] == pytest.approx(600 / 128, rel=0.35)
    # Trees: nearly level, far below flat at scale.
    assert by_n[600][2] < 0.25 and by_n[600][3] < 0.25
    assert by_n[600][2] / max(by_n[64][2], 1e-9) < 3
    assert by_n[600][1] / by_n[600][3] > 10
    # At tiny scale all topologies are comparable (curves start together).
    assert by_n[4][1] == pytest.approx(by_n[4][2], rel=0.5)
