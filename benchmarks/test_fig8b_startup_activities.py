"""Figure 8b — Paradyn start-up latency by activity, 512 daemons.

Per-activity comparison of "No MRNet" vs "8-way Fanout".  Paper shape:
every activity that routes data through MRNet (bold names in the
figure) shrinks substantially; "Parse Executable" (pure parallel
daemon work) and the point-to-point representative transfers ("Report
Code Resources", "Report Callgraph") are unchanged — their traffic
still flows through intermediate MRNet processes, whose overhead "was
observed to be negligible" (§4.2.1).  Clock skew detection benefits
most, being the only activity with repeated collective rounds.
"""

import pytest

from repro.paradyn.startup import ACTIVITIES, simulate_startup
from repro.topology import balanced_tree_for

DAEMONS = 512


def run_breakdown():
    flat = simulate_startup(DAEMONS)
    tree = simulate_startup(DAEMONS, balanced_tree_for(8, DAEMONS))
    return flat, tree


@pytest.mark.benchmark(group="fig8b")
def test_fig8b_startup_by_activity(benchmark, report):
    flat, tree = benchmark.pedantic(run_breakdown, rounds=1, iterations=1)
    rows = []
    for activity in ACTIVITIES:
        name = activity.name
        mark = "*" if activity.uses_mrnet else " "
        rows.append(
            (
                f"{mark}{name}",
                flat.per_activity[name],
                tree.per_activity[name],
                flat.per_activity[name] / max(tree.per_activity[name], 1e-9),
            )
        )
    rows.append(("TOTAL", flat.total, tree.total, flat.total / tree.total))
    report(
        "fig8b_startup_activities",
        f"Figure 8b: start-up latency by activity, {DAEMONS} daemons "
        "(* = uses MRNet aggregation/concatenation)",
        ["activity", "no-MRNet (s)", "8-way (s)", "speedup"],
        rows,
    )
    # Every MRNet-aided activity shows a significant latency reduction.
    for activity in ACTIVITIES:
        f, t = flat.per_activity[activity.name], tree.per_activity[activity.name]
        if activity.uses_mrnet:
            assert f / t > 1.5, f"{activity.name} should improve with MRNet"
        else:
            assert f == pytest.approx(t), f"{activity.name} should be unchanged"
    # Clock skew detection benefits most (§4.2.1).
    speedups = {
        a.name: flat.per_activity[a.name] / tree.per_activity[a.name]
        for a in ACTIVITIES
        if a.uses_mrnet
    }
    assert max(speedups, key=speedups.get) == "Find Clock Skew"
    # Overall ≈3.4× (paper's headline for this configuration).
    assert 2.8 < flat.total / tree.total < 4.0
