"""Live threaded-runtime micro-benchmarks (not a paper figure).

These time the *real* Python implementation — packet codec, comm-node
threads, filters — at laptop scale.  They exist to keep the functional
runtime honest (wall-clock regressions show up here) and to document
why the paper's 512-back-end throughput results are regenerated on the
discrete-event simulator instead: the GIL serializes comm-node
threads, so Python wall-clock numbers do not scale the way the
original C++ system does (DESIGN.md, substitution table).
"""

import pytest

from repro.core import Network
from repro.core.batching import decode_batch, encode_batch
from repro.core.packet import Packet
from repro.filters import TFILTER_SUM
from repro.topology import balanced_tree


@pytest.mark.benchmark(group="live-runtime")
def test_live_packet_codec_roundtrip(benchmark):
    packets = [
        Packet(1, i, "%d %lf %s %ad", (i, i * 0.5, f"be{i}", tuple(range(8))))
        for i in range(64)
    ]

    def roundtrip():
        return decode_batch(encode_batch(packets))

    out = benchmark(roundtrip)
    assert out == packets


@pytest.mark.benchmark(group="live-runtime")
def test_live_reduction_roundtrip_16_backends(benchmark):
    """One broadcast + sum-reduction through a real 4x4 tree."""
    net = Network(balanced_tree(4, 2))
    comm = net.get_broadcast_communicator()
    stream = net.new_stream(comm, transform=TFILTER_SUM)
    backends = [net.backends[r] for r in sorted(net.backends)]

    def one_reduction():
        stream.send("%d", 0)
        for be in backends:
            _, bstream = be.recv(timeout=10)
            bstream.send("%d", 1)
        return stream.recv(timeout=10).values[0]

    try:
        total = benchmark(one_reduction)
        assert total == 16
    finally:
        net.shutdown()
