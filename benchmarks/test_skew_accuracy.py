"""§4.2.1 in-text result — clock-skew detection accuracy.

Paper setup: 64 daemons, four-way fan-out (three-level topology);
skews graded against Blue Pacific's globally-synchronous SP switch
clock (here: the simulator's oracle time).  Paper numbers: the
MRNet-based algorithm averaged 10.5 % error (σ = 80.4) vs 17.5 %
(σ = 78.9) for the direct-communication scheme with 100 trials —
"results comparable to the direct-connection method but significantly
more scalable".
"""

import numpy as np
import pytest

from repro.paradyn.clockskew import run_skew_experiment
from repro.topology import balanced_tree

SEEDS = range(12)


def run_experiments():
    rows = []
    for seed in SEEDS:
        res = run_skew_experiment(
            balanced_tree(4, 3), local_trials=20, direct_trials=100, seed=seed
        )
        m_mean, m_std = res.summary("mrnet")
        d_mean, d_std = res.summary("direct")
        rows.append((seed, m_mean, m_std, d_mean, d_std))
    return rows


@pytest.mark.benchmark(group="skew")
def test_skew_detection_accuracy(benchmark, report):
    rows = benchmark.pedantic(run_experiments, rounds=1, iterations=1)
    m_means = np.array([r[1] for r in rows])
    d_means = np.array([r[3] for r in rows])
    m_stds = np.array([r[2] for r in rows])
    d_stds = np.array([r[4] for r in rows])
    table = rows + [
        (
            "mean",
            float(m_means.mean()),
            float(m_stds.mean()),
            float(d_means.mean()),
            float(d_stds.mean()),
        )
    ]
    report(
        "skew_accuracy",
        "Clock-skew accuracy, 64 daemons / 4-way (paper: MRNet 10.5% "
        "sigma 80.4, direct 17.5% sigma 78.9)",
        ["seed", "MRNet err%", "MRNet sigma", "direct err%", "direct sigma"],
        table,
    )
    # Shape: MRNet's average error is smaller than direct's, both land
    # in the paper's ballpark (≈10% vs ≈18%).
    assert m_means.mean() < d_means.mean()
    assert 5 < m_means.mean() < 18
    assert 10 < d_means.mean() < 26
    # Dispersion: MRNet errors are heavier-tailed (paper: its sigma was
    # the slightly higher of the two).
    assert m_stds.mean() > d_stds.mean() * 0.8
