"""Live front-end offload — the Figure 9 mechanism on the real runtime.

Figure 9's scaling numbers come from the calibrated model
(`test_fig9_frontend_load.py`); this bench demonstrates the underlying
*mechanism* on the live threaded runtime at laptop scale: with a flat
topology the front-end receives and processes every daemon's every
sample, while with a tree + the Performance Data Aggregation filter it
receives one already-aligned sample stream — a deterministic
D-fold reduction in front-end packet handling, measured from the
node counters rather than wall clock (which the GIL would pollute).
"""

import pytest

from repro.core import Network
from repro.filters import SFILTER_DONTWAIT, TFILTER_NULL
from repro.paradyn.perfdata import DataSample, PerformanceDataFilter
from repro.topology import balanced_tree, flat_topology

DAEMONS = 16
ROUNDS = 40  # samples per daemon
INTERVAL = 0.5


def drive(net, transform, sync):
    """Send ROUNDS samples per back-end; return (fe_packets, outputs)."""
    comm = net.get_broadcast_communicator()
    stream = net.new_stream(comm, transform=transform, sync=sync)
    stream.send("%d", 0)
    streams = {}
    for rank in sorted(net.backends):
        _, bstream = net.backends[rank].recv(timeout=15)
        streams[rank] = bstream
    for k in range(ROUNDS):
        for rank, bstream in streams.items():
            sample = DataSample(1.0, k * INTERVAL, (k + 1) * INTERVAL)
            bstream.send_packet(
                sample.to_packet(bstream.stream_id, 1101, rank)
            )
    outputs = []
    # Flat/null delivers D*ROUNDS packets; aggregated delivers ROUNDS-ish.
    expected = ROUNDS if transform != TFILTER_NULL else DAEMONS * ROUNDS
    while len(outputs) < expected:
        packet = stream.recv(timeout=15)
        outputs.append(DataSample.from_packet(packet))
        if transform != TFILTER_NULL and len(outputs) == ROUNDS - 1:
            break  # the final interval may wait for stream teardown
    fe_packets = net.stats()["0:front-end"]["packets_up"]
    return fe_packets, outputs


def run_both():
    # Flat/no-aggregation: every sample reaches the front-end.
    flat_net = Network(flat_topology(DAEMONS))
    try:
        flat_fe_packets, flat_out = drive(
            flat_net, TFILTER_NULL, SFILTER_DONTWAIT
        )
    finally:
        flat_net.shutdown()
    # Tree + Performance Data Aggregation filter.
    tree_net = Network(balanced_tree(4, 2))
    try:
        fid = tree_net.registry.register_transform(
            PerformanceDataFilter(interval=INTERVAL, op="sum")
        )
        from repro.filters import SFILTER_WAITFORALL

        tree_fe_packets, tree_out = drive(tree_net, fid, SFILTER_WAITFORALL)
    finally:
        tree_net.shutdown()
    return flat_fe_packets, flat_out, tree_fe_packets, tree_out


@pytest.mark.benchmark(group="live-offload")
def test_live_frontend_offload(benchmark, report):
    flat_fe, flat_out, tree_fe, tree_out = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )
    rows = [
        ("flat / no filter", flat_fe, len(flat_out)),
        ("4-way + PDA filter", tree_fe, len(tree_out)),
        ("reduction factor", round(flat_fe / max(tree_fe, 1), 1), ""),
    ]
    report(
        "live_frontend_offload",
        f"Live front-end offload: packets handled by the front-end for "
        f"{DAEMONS} daemons x {ROUNDS} samples",
        ["configuration", "fe packets", "fe outputs"],
        rows,
    )
    # Flat: the front-end touches every sample.
    assert flat_fe >= DAEMONS * ROUNDS
    # Tree: the front-end sees only its root fan-in worth of aggregated
    # traffic — at least an 8x reduction here (paper: the entire reason
    # MRNet-based Paradyn holds 1.0 in Figure 9).
    assert tree_fe <= flat_fe / 2
    assert flat_fe / tree_fe >= 2
    # And the aggregated stream is correct: every interval sums to D.
    for sample in tree_out:
        assert sample.value == pytest.approx(float(DAEMONS))