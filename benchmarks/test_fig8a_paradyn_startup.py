"""Figure 8a — Paradyn start-up latency vs. number of daemons.

Series: "No MRNet", "4-way", "8-way", "16-way Fanout" over 0–512
daemons, preparing to monitor smg2000.  Paper shape: without MRNet the
serialized front-end communication makes latency take off
super-linearly to ≈ 70 s at 512 daemons; with MRNet the curves are
"much flatter and growth is nearly linear", 3.4× faster at 512 with
the eight-way tree (§4.2.1).
"""

import pytest

from repro.evaluation import DEFAULT_DAEMON_SWEEP, fig8a_startup

DAEMONS = DEFAULT_DAEMON_SWEEP


def run_sweep():
    _, rows = fig8a_startup(DAEMONS)
    return rows


@pytest.mark.benchmark(group="fig8a")
def test_fig8a_paradyn_startup_latency(benchmark, report):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        "fig8a_paradyn_startup",
        "Figure 8a: Paradyn start-up latency (seconds)",
        ["daemons", "no-MRNet", "4-way", "8-way", "16-way"],
        rows,
    )
    by_d = {r[0]: r for r in rows}
    # Paper anchors at 512: ≈70 s without MRNet, ≈20 s with 8-way (3.4×).
    flat512, t8_512 = by_d[512][1], by_d[512][3]
    assert 55 < flat512 < 85
    assert 2.8 < flat512 / t8_512 < 4.0
    # No-MRNet: super-linear take-off (doubling daemons > doubles time).
    assert by_d[512][1] / by_d[256][1] > 2.0
    # MRNet curves: much flatter, sub-linear doubling.
    for col in (2, 3, 4):
        assert by_d[512][col] / by_d[256][col] < 1.8
    # The benefit grows with daemon count (§4.2.1).
    ratios = [by_d[d][1] / by_d[d][3] for d in DAEMONS]
    assert ratios == sorted(ratios)
    # Fan-out choice matters little (curves bunch together).
    assert abs(by_d[512][2] - by_d[512][4]) / by_d[512][2] < 0.25
