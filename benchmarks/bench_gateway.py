"""Gateway serving benchmark: coalescing at 10k sessions, offered-load shedding.

Exercises the front-end serving gateway (``repro.gateway``) the way
Figure 9 (§4.2.2) stresses the front-end: many independent clients
offering more work than the tree can absorb.  Two scenarios:

1. **coalescing_10k** — 10,000 live sessions on one gateway; 150 of
   them submit the *same* query concurrently (pre-queued under
   ``gateway.paused()`` so every submit pre-dates the wave).  The
   acceptance bar from ISSUE 9: all of them resolve with **exactly one
   reduction wave** — 149 ride as coalesced followers (verified via
   the ``queries_coalesced`` counter), every ticket gets the identical
   aggregate.
2. **offered_load** — calibrate the tree's wave capacity C (distinct
   queries back-to-back, no coalescing), then offer 0.5×, 1× and 2× C
   with the admission rate limiter set to C.  Under 2× saturation the
   gateway must shed with *typed* ``Overloaded`` rejections (sub-ms
   decision latency, measured per shed), keep the pending queue
   bounded, and still service at least the gated fraction of offered
   load — no unbounded queue growth, no tree stall.

Writes ``BENCH_gateway.json`` (repo root by default).  ``--smoke``
runs a fast pass for CI with the same structural gates (one wave for
≥100 coalesced queries; typed shedding with a serviced-fraction
floor), just shorter measurement windows.

Usage::

   PYTHONPATH=src python benchmarks/bench_gateway.py [--smoke] [--out PATH]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
if str(REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core import Network  # noqa: E402
from repro.filters import TFILTER_SUM  # noqa: E402
from repro.gateway import (  # noqa: E402
    BackendResponder,
    Gateway,
    Overloaded,
    Query,
)
from repro.topology import balanced_tree  # noqa: E402

WAIT = 60.0

# Structural gates (same bar in smoke and full mode).
MIN_COALESCED_QUERIES = 100
SERVICED_FLOOR_2X = 0.30
SHED_MEAN_MS_CEILING = 5.0


def sum_query(value: int) -> Query:
    return Query("%d", (value,), transform=TFILTER_SUM)


def build_tree(fanout: int, depth: int):
    """A colocated tree with echo daemons behind every leaf."""
    net = Network(balanced_tree(fanout, depth), colocate=True)
    responder = BackendResponder(net.backends)
    return net, responder


def bench_coalescing(net, n_sessions: int, n_submitters: int) -> dict:
    """N identical concurrent queries must cost exactly one wave."""
    gw = Gateway(net, cache_ttl=60.0)
    try:
        t0 = time.perf_counter()
        sessions = [gw.session(f"dash-{i}") for i in range(n_sessions)]
        setup_s = time.perf_counter() - t0
        submitters = sessions[:n_submitters]
        t0 = time.perf_counter()
        with gw.paused():  # pre-queue: every submit pre-dates the wave
            tickets = [s.submit(sum_query(17)) for s in submitters]
        results = {t.result(timeout=WAIT) for t in tickets}
        resolve_s = time.perf_counter() - t0
        stats = gw.stats()
        assert len(results) == 1, f"coalesced waiters disagree: {results}"
        expected = (17 * len(net.backends),)
        assert results == {expected}, f"bad aggregate: {results}"
        return {
            "sessions": n_sessions,
            "concurrent_identical_queries": n_submitters,
            "waves": stats["waves"],
            "queries_coalesced": stats["coalesced"],
            "session_setup_ms": round(setup_s * 1e3, 2),
            "resolve_all_ms": round(resolve_s * 1e3, 2),
        }
    finally:
        gw.close()


def calibrate_capacity(net, window_s: float) -> float:
    """Waves/second the tree services for distinct (uncoalescable)
    queries — the saturation point the offered-load sweep is scaled
    against."""
    gw = Gateway(net, cache_ttl=0.0)
    try:
        session = gw.session("calibrate")
        # Warm-up: stream opened, routes learned.
        session.submit(sum_query(0)).result(timeout=WAIT)
        waves = 0
        seq = 1
        start = time.perf_counter()
        while time.perf_counter() - start < window_s:
            session.submit(sum_query(seq)).result(timeout=WAIT)
            waves += 1
            seq += 1
        elapsed = time.perf_counter() - start
        return waves / elapsed
    finally:
        gw.close()


def bench_offered_load(
    net, capacity: float, multiplier: float, duration_s: float
) -> dict:
    """Offer ``multiplier × capacity`` distinct queries/s for
    *duration_s*; count serviced vs. typed sheds, time each shed
    decision, and watch the pending queue stay bounded."""
    max_pending = 64
    gw = Gateway(
        net,
        rate=capacity,
        burst=max(8.0, capacity / 4),
        max_pending=max_pending,
        cache_ttl=0.0,
    )
    try:
        sessions = [gw.session(f"client-{i}") for i in range(32)]
        offered_rate = capacity * multiplier
        interval = 1.0 / offered_rate
        offered = 0
        admitted = []
        sheds = {"rate": 0, "queue": 0, "backpressure": 0}
        shed_timings = []
        max_pending_seen = 0
        seq = 0
        start = time.perf_counter()
        next_at = start
        while True:
            now = time.perf_counter()
            if now - start >= duration_s:
                break
            if now < next_at:
                time.sleep(min(next_at - now, interval))
                continue
            next_at += interval
            session = sessions[seq % len(sessions)]
            seq += 1
            offered += 1
            t0 = time.perf_counter()
            try:
                admitted.append(session.submit(sum_query(seq)))
            except Overloaded as exc:
                shed_timings.append(time.perf_counter() - t0)
                sheds[exc.reason] += 1
                assert exc.retry_after >= 0.0
            max_pending_seen = max(max_pending_seen, gw.stats()["pending"])
        # Drain: everything admitted must complete (no tree stall).
        for ticket in admitted:
            ticket.result(timeout=WAIT)
        serviced = len(admitted)
        total_shed = sum(sheds.values())
        assert serviced + total_shed == offered
        assert max_pending_seen <= max_pending, "unbounded queue growth"
        shed_mean_ms = (
            sum(shed_timings) / len(shed_timings) * 1e3 if shed_timings else 0.0
        )
        shed_max_ms = max(shed_timings) * 1e3 if shed_timings else 0.0
        return {
            "multiplier": multiplier,
            "offered": offered,
            "serviced": serviced,
            "shed": sheds,
            "serviced_fraction": round(serviced / max(offered, 1), 4),
            "shed_mean_ms": round(shed_mean_ms, 4),
            "shed_max_ms": round(shed_max_ms, 4),
            "max_pending_seen": max_pending_seen,
            "pending_bound": max_pending,
        }
    finally:
        gw.close()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="fast sanity pass (CI)"
    )
    parser.add_argument(
        "--out",
        type=Path,
        default=REPO_ROOT / "BENCH_gateway.json",
        help="where to write the JSON results",
    )
    args = parser.parse_args(argv)

    if args.smoke:
        fanout, depth = 2, 2  # 4 daemons
        n_sessions, n_submitters = 10_000, 128
        calib_s, load_s = 0.6, 1.0
    else:
        fanout, depth = 4, 2  # 16 daemons
        n_sessions, n_submitters = 10_000, 150
        calib_s, load_s = 1.5, 3.0

    net, responder = build_tree(fanout, depth)
    try:
        coalescing = bench_coalescing(net, n_sessions, n_submitters)
        capacity = calibrate_capacity(net, calib_s)
        offered_load = {}
        for multiplier in (0.5, 1.0, 2.0):
            offered_load[f"{multiplier:g}x"] = bench_offered_load(
                net, capacity, multiplier, load_s
            )
    finally:
        responder.stop()
        net.shutdown()

    results = {
        "coalescing_10k": coalescing,
        "capacity_waves_per_s": round(capacity, 1),
        "offered_load": offered_load,
    }
    mode = "smoke" if args.smoke else "full"
    doc = {
        "benchmark": "bench_gateway",
        "description": (
            "Front-end gateway: query coalescing at 10k sessions and "
            "typed load shedding under saturation offered load"
        ),
        "mode": mode,
        "python": sys.version.split()[0],
        "daemons": fanout ** depth,
        "gates": {
            "min_coalesced_queries": MIN_COALESCED_QUERIES,
            "serviced_floor_2x": SERVICED_FLOOR_2X,
            "shed_mean_ms_ceiling": SHED_MEAN_MS_CEILING,
        },
        "results": results,
    }
    args.out.write_text(json.dumps(doc, indent=2) + "\n")

    print(
        f"coalescing: {coalescing['concurrent_identical_queries']} identical "
        f"queries over {coalescing['sessions']} sessions -> "
        f"{coalescing['waves']} wave(s), "
        f"{coalescing['queries_coalesced']} coalesced"
    )
    print(f"capacity: {capacity:,.1f} waves/s on {fanout ** depth} daemons")
    print(
        f"{'offered':>8} {'serviced':>9} {'shed':>6} {'fraction':>9} "
        f"{'shed-mean':>10}"
    )
    for label, row in offered_load.items():
        print(
            f"{label:>8} {row['serviced']:>9} "
            f"{sum(row['shed'].values()):>6} "
            f"{row['serviced_fraction']:>9.3f} {row['shed_mean_ms']:>8.3f}ms"
        )
    print(f"\nresults written to {args.out}")

    failed = False
    if (
        coalescing["waves"] != 1
        or coalescing["queries_coalesced"] < MIN_COALESCED_QUERIES - 1
        or coalescing["concurrent_identical_queries"] < MIN_COALESCED_QUERIES
    ):
        print(
            "FAIL: identical concurrent queries did not coalesce to one wave",
            file=sys.stderr,
        )
        failed = True
    two_x = offered_load["2x"]
    if two_x["serviced_fraction"] < SERVICED_FLOOR_2X:
        print(
            f"FAIL: serviced fraction at 2x offered load "
            f"{two_x['serviced_fraction']:.3f} < {SERVICED_FLOOR_2X}",
            file=sys.stderr,
        )
        failed = True
    if sum(two_x["shed"].values()) == 0:
        print("FAIL: 2x offered load produced no typed sheds", file=sys.stderr)
        failed = True
    if two_x["shed_mean_ms"] > SHED_MEAN_MS_CEILING:
        print(
            f"FAIL: mean shed decision {two_x['shed_mean_ms']:.3f}ms "
            f"> {SHED_MEAN_MS_CEILING}ms",
            file=sys.stderr,
        )
        failed = True
    if failed:
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
