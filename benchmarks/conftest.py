"""Shared helpers for the figure-regeneration benchmarks.

Every benchmark regenerates one table or figure from the paper's
evaluation (§4), prints the same rows/series the paper reports, writes
them under ``benchmarks/results/``, and asserts the *shape* criteria
from DESIGN.md §3 (who wins, by roughly what factor, where curves take
off).  Absolute values come from the calibrated Blue Pacific stand-in
(see EXPERIMENTS.md for paper-vs-measured).
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


def format_table(title: str, header: Sequence[str], rows: List[Sequence]) -> str:
    """Render one paper-style table as aligned text."""
    cells = [[str(h) for h in header]] + [
        [f"{v:.3f}" if isinstance(v, float) else str(v) for v in row]
        for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(header))]
    lines = [title, "=" * len(title)]
    for i, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines) + "\n"


@pytest.fixture
def report():
    """Print a result table and persist it under benchmarks/results/."""

    def _report(name: str, title: str, header, rows) -> str:
        text = format_table(title, header, rows)
        print("\n" + text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{name}.txt").write_text(text)
        return text

    return _report
