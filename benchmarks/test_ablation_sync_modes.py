"""Ablation A1 — synchronization mode (§2.4 design choice).

MRNet's three synchronization filters trade wave completeness against
holding latency.  We replay one deterministic arrival schedule — 16
children delivering 30 waves with per-child clock stagger — through
each mode and measure: how many released waves are *complete* (one
packet per child), and how long packets were held back before release.

Expected: Wait-For-All → 100 % complete waves, highest holding delay;
Do-Not-Wait → zero delay, singleton waves (no aggregation possible);
Time-Out → delay bounded by the timeout, releasing partial waves
whenever the arrival skew exceeds it (here the stagger spans 64 ms
against a 50 ms timeout, so every wave splits).  This is the §2.4
trade-off: Time-Out bounds latency at the cost of aggregation
quality; Wait-For-All gives aligned waves at the cost of waiting for
the slowest child.
"""

import pytest

from repro.core.packet import Packet
from repro.filters.sync import DoNotWaitFilter, TimeOutFilter, WaitForAllFilter

CHILDREN = 16
WAVES = 30
PERIOD = 0.1  # seconds between a child's successive packets
STAGGER = 0.004  # per-child skew of the arrival schedule


class SimClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


def arrival_schedule():
    """(time, child, wave) triples in global time order."""
    events = []
    for wave in range(WAVES):
        for child in range(CHILDREN):
            t = wave * PERIOD + child * STAGGER
            events.append((t, child, wave))
    events.sort()
    return events


def run_mode(mode: str):
    clock = SimClock()
    if mode == "wait-for-all":
        filt = WaitForAllFilter(range(CHILDREN), clock=clock)
    elif mode == "timeout":
        filt = TimeOutFilter(range(CHILDREN), timeout=PERIOD / 2, clock=clock)
    else:
        filt = DoNotWaitFilter(range(CHILDREN), clock=clock)
    arrival_time = {}
    released = []  # (release_time, wave_packets)
    arrivals = arrival_schedule()
    # Drive the filter like a comm-node event loop: process arrivals as
    # they happen and poll time-based criteria on a fine tick.
    tick = 0.001
    end_time = WAVES * PERIOD + CHILDREN * STAGGER + 1.0
    i = 0
    t = 0.0
    while t <= end_time:
        while i < len(arrivals) and arrivals[i][0] <= t:
            at, child, wave = arrivals[i]
            clock.now = at
            arrival_time[(child, wave)] = at
            for out in filt.push(child, Packet(1, wave, "%d", (child,))):
                released.append((at, out))
            i += 1
        clock.now = t
        for out in filt.poll():
            released.append((t, out))
        t += tick
    clock.now = end_time
    for out in filt.flush():
        released.append((clock.now, out))

    total_packets = sum(len(w) for _, w in released)
    complete = sum(1 for _, w in released if len(w) == CHILDREN)
    delays = []
    for release_t, wave_pkts in released:
        for p in wave_pkts:
            delays.append(release_t - arrival_time[(p.values[0], p.tag)])
    mean_delay = sum(delays) / len(delays) if delays else 0.0
    return {
        "waves": len(released),
        "complete": complete,
        "packets": total_packets,
        "mean_delay": mean_delay,
    }


@pytest.mark.benchmark(group="ablation-sync")
def test_ablation_synchronization_modes(benchmark, report):
    results = benchmark.pedantic(
        lambda: {m: run_mode(m) for m in ("wait-for-all", "timeout", "do-not-wait")},
        rounds=1,
        iterations=1,
    )
    rows = [
        (
            mode,
            r["waves"],
            r["complete"],
            f"{r['complete'] / r['waves']:.2f}",
            r["packets"],
            r["mean_delay"] * 1e3,
        )
        for mode, r in results.items()
    ]
    report(
        "ablation_sync_modes",
        "Ablation A1: synchronization modes over one skewed arrival "
        "schedule (delays in ms)",
        ["mode", "waves", "complete", "complete-frac", "packets", "mean-delay"],
        rows,
    )
    wfa, to, dnw = (
        results["wait-for-all"],
        results["timeout"],
        results["do-not-wait"],
    )
    # No packet loss in any mode.
    assert wfa["packets"] == to["packets"] == dnw["packets"] == CHILDREN * WAVES
    # Wait-For-All: perfectly aligned waves.
    assert wfa["complete"] == wfa["waves"] == WAVES
    # Do-Not-Wait: immediate release, singleton waves only.
    assert dnw["complete"] == 0
    assert dnw["mean_delay"] == pytest.approx(0.0, abs=1e-12)
    assert dnw["waves"] == CHILDREN * WAVES
    # Time-Out: bounded delay (≤ timeout + poll tick) and fewer waves
    # than DNW.
    assert to["mean_delay"] <= PERIOD / 2 + 2e-3
    assert to["waves"] <= wfa["waves"] * 2
    # The latency ordering that motivates the design choice.
    assert dnw["mean_delay"] <= to["mean_delay"] <= wfa["mean_delay"] + 1e-9
