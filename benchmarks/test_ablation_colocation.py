"""Ablation A4 — internal-process placement (§2.6 design choice).

The paper recommends running MRNet internal processes "on resources
distinct from those running the application processes" because
co-location (1) contends for CPU/network and (2) creates *imbalance*
that a bulk-synchronous application amplifies through its slowest
process.  This bench sweeps the tool's sampling load over a 64-process
application and reports the application's BSP iteration slowdown under
the two placements.
"""

import pytest

from repro.sim.colocation import simulate_colocation
from repro.topology import balanced_tree_for

N_APP = 64
FANOUT = 4
RATES = [0, 40, 160, 320, 640, 1280]  # tool messages/s per back-end


def run_sweep():
    dedicated = balanced_tree_for(FANOUT, N_APP)  # one host per process
    colocated = balanced_tree_for(
        FANOUT, N_APP, hosts=[f"app{i:03d}" for i in range(N_APP)]
    )
    rows = []
    for rate in RATES:
        ded = simulate_colocation(dedicated, rate)
        col = simulate_colocation(colocated, rate)
        rows.append(
            (rate, ded.slowdown, col.slowdown, col.imbalance,
             max(col.tool_utilization.values(), default=0.0))
        )
    return rows


@pytest.mark.benchmark(group="ablation-colocation")
def test_ablation_placement(benchmark, report):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    report(
        "ablation_colocation",
        "Ablation A4: application BSP-iteration slowdown vs tool load "
        "(64 app processes, 4-way tree)",
        ["msgs/s/BE", "dedicated", "co-located", "imbalance", "max-node-util"],
        rows,
    )
    by_rate = {r[0]: r for r in rows}
    # Dedicated placement never perturbs the application.
    assert all(r[1] == pytest.approx(1.0) for r in rows)
    # Idle tool: co-location harmless too.
    assert by_rate[0][2] == pytest.approx(1.0)
    # Loaded tool: co-location slows the app, monotonically in load.
    colocated = [r[2] for r in rows]
    assert colocated == sorted(colocated)
    assert by_rate[640][2] > 1.1
    # The slowdown is an imbalance effect: only internal-process hosts
    # are slowed, yet the barrier makes everyone wait.
    assert by_rate[640][3] > 1.05
