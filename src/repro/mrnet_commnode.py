"""The ``mrnet_commnode`` program: an internal process as a real OS
process.

"MRNet has two main components: libmrnet, a library that is linked
into a tool's front-end and back-end components, and mrnet_commnode, a
program that runs on intermediate nodes interposed between the
front-end and back-ends." (§2)

The default runtime hosts internal processes as threads, which is
convenient but GIL-bound.  This module is the faithful alternative:
each internal process is a separate Python process connected to its
parent and children over TCP, exactly like the original program — the
codec, batching, synchronization and filter work all run outside the
front-end's interpreter.  ``Network(transport="process")`` launches
these automatically; the program can also be started by hand::

   python -m repro.mrnet_commnode --parent HOST:PORT \
          --children 4 --expected-ranks 16 \
          [--filter /path/to/module.py:func_name] ...

Bootstrap protocol (replacing rsh + the parent's config message of
§2.5):

1. the process opens a listener and prints ``LISTENING <port>`` on
   stdout (its launcher reads this to wire the next tree level);
2. it connects to ``--parent``;
3. it accepts exactly ``--children`` connections;
4. it runs the standard NodeCore event loop until shutdown.

**Recursive instantiation** (``--subtree``, paper §2.5 / Figure 5):
instead of the front-end serially spawning every internal process,
each process receives its whole *subtree* specification and creates
its own internal children — the tree builds itself in O(depth) spawn
rounds instead of O(nodes).  The child's config travels with the
spawn (as a ``fork()`` argument, or JSON on the command line with
``--spawn popen``), and every internal process announces its listener
address to the front-end with a ``TAG_ADDR_REPORT`` control packet
relayed up the data plane, so back-end leaf slots learn where to
attach without any stdout plumbing.  Leaf-child connections are then
accepted *lazily* by the node's event loop while the rest of the tree
is still booting.

Links whose two endpoints share a topology host may be upgraded to
the shared-memory ring transport (``--shm auto``; see
:mod:`repro.transport.shm`) during the connection hello — refusal or
failure falls back to plain TCP transparently.

The process multiplexes all of its sockets through one ``selectors``
loop on the main thread — no per-link reader threads, non-blocking
vectored writes, and timer deadlines instead of polling.  (The legacy
``--io-mode threads`` reader-thread architecture, deprecated in PR 7,
has been removed.)

Custom filters cross the process boundary the same way real MRNet
ships shared objects: as a file path + function name, loaded on every
process in the same order so registry ids agree network-wide.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import time
import traceback
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from .core.commnode import NodeCore
from .core.failure import REPAIR, HeartbeatConfig
from .core.protocol import make_addr_report
from .filters.registry import default_registry
from .transport.channel import Inbox
from .transport.tcp import TcpListener

__all__ = [
    "main",
    "parse_filter_spec",
    "run_commnode",
    "run_commnode_recursive",
    "subtree_spec",
    "RecursiveOpts",
]


def parse_filter_spec(spec: str) -> Tuple[str, str, Optional[str]]:
    """Parse ``path:func`` or ``path:func:fmt`` (fmt may contain spaces
    if the caller quotes; colons inside paths are not supported)."""
    parts = spec.split(":")
    if len(parts) == 2:
        return parts[0], parts[1], None
    if len(parts) == 3:
        return parts[0], parts[1], parts[2] or None
    raise ValueError(f"malformed filter spec {spec!r} (want path:func[:fmt])")


def _parse_host_port(text: str) -> Tuple[str, int]:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"malformed address {text!r} (want host:port)")
    return host, int(port)


# -- recursive instantiation (paper §2.5 mode 1, Figure 5) ------------------
#
# Subtree spec wire format (JSON): every node is an object with
#   "l": "host:index" topology label (host = co-location domain)
#   "r": observability rank          (internal nodes only)
#   "c": [child specs...]            (present iff internal)
# A leaf entry carries only "l" — its back-end attaches later, so the
# node just counts it toward the lazy accept budget.


def subtree_spec(node, obs_rank) -> dict:
    """Serialize a topology node's subtree for recursive spawning.

    *obs_rank* maps internal-node keys to observability ranks (the
    front-end numbers them breadth-first, matching sequential spawn
    order so identities are stable across instantiation modes).
    """
    if node.is_leaf:
        return {"l": node.label}
    return {
        "l": node.label,
        "r": obs_rank[node.key],
        "c": [subtree_spec(c, obs_rank) for c in node.children],
    }


def _host_of(label: str) -> str:
    """The co-location domain of a ``host:index`` topology label."""
    return label.rsplit(":", 1)[0]


def _count_leaves(spec: dict) -> int:
    kids = spec.get("c")
    if not kids:
        return 1
    return sum(_count_leaves(k) for k in kids)


@dataclass
class RecursiveOpts:
    """Everything a subtree spawn must inherit from its parent."""

    filter_specs: List[Tuple[str, str, Optional[str]]] = field(default_factory=list)
    heartbeat: Optional[HeartbeatConfig] = None
    accept_timeout: float = 60.0
    shm: str = "off"  # "auto" upgrades same-host links to shared memory
    spawn: str = "fork"  # how *this* node creates its internal children
    colocate: bool = False  # host same-host internal subtrees in-process
    workers: int = 0  # filter worker threads on a colocated loop
    repair: bool = False  # re-dial a live ancestor when the parent dies
    checkpoint_interval: float = 0.0  # filter-state deposit period (0 = off)

    def command_line(self) -> List[str]:
        """The inheritable flags, as ``--spawn popen`` arguments."""
        args = [
            "--shm", self.shm,
            "--spawn", self.spawn,
            "--accept-timeout", str(self.accept_timeout),
        ]
        if self.colocate:
            args += ["--colocate"]
        if self.repair:
            args += ["--repair"]
        if self.checkpoint_interval > 0:
            args += ["--checkpoint-interval", str(self.checkpoint_interval)]
        if self.workers:
            args += ["--filter-workers", str(self.workers)]
        if self.heartbeat is not None and self.heartbeat.enabled:
            args += [
                "--heartbeat-interval", str(self.heartbeat.interval),
                "--heartbeat-miss", str(self.heartbeat.miss_threshold),
            ]
        for spec in self.filter_specs:
            text = f"{spec[0]}:{spec[1]}"
            if len(spec) > 2 and spec[2]:
                text += f":{spec[2]}"
            args += ["--filter", text]
        return args


def _repair_fn_eventloop(loop, ancestors, accept_timeout: float):
    """Parent-repair closure for selector-driven bodies.

    *ancestors* is the proper-ancestor address chain root-first and
    excluding the (now dead) parent; the orphan re-dials the nearest
    live entry — grandparent first, front-end last — so adoption
    needs no coordinator round-trip.
    """
    from .transport.tcp import tcp_connect_socket_retry

    def repair():
        for addr in reversed(ancestors):
            try:
                sock = tcp_connect_socket_retry(
                    addr, attempts=3, timeout=min(accept_timeout, 5.0)
                )
            except Exception:
                continue
            return loop.add_socket(sock)
        return None

    return repair


class _ForkChild:
    """A ``Popen``-shaped handle for an ``os.fork()`` child."""

    def __init__(self, pid: int, label: str):
        self.pid = pid
        self.label = label
        self._status: Optional[int] = None

    def poll(self) -> Optional[int]:
        if self._status is not None:
            return self._status
        try:
            pid, status = os.waitpid(self.pid, os.WNOHANG)
        except ChildProcessError:
            self._status = 0
            return self._status
        if pid == 0:
            return None
        self._status = os.waitstatus_to_exitcode(status)
        return self._status

    def wait(self, timeout: Optional[float] = None) -> int:
        deadline = None if timeout is None else time.monotonic() + timeout
        while self.poll() is None:
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(f"fork child {self.label} did not exit")
            time.sleep(0.01)
        return self._status

    def kill(self) -> None:
        try:
            os.kill(self.pid, signal.SIGKILL)
        except (ProcessLookupError, PermissionError):
            pass


def _spawn_internal_children(
    spec: dict,
    listener: TcpListener,
    my_host: str,
    opts: RecursiveOpts,
    close_in_child: tuple = (),
    child_ancestors: tuple = (),
) -> list:
    """Create this node's internal children, all at once (Figure 5).

    With ``spawn="fork"`` each child is an ``os.fork()`` of this
    already-initialized interpreter — the subtree spec travels as a
    plain argument, and the fork costs milliseconds where a fresh
    interpreter costs hundreds.  (Bootstrap is single-threaded at this
    point: children are forked before any event loop, channel end, or
    reader thread exists.)  ``spawn="popen"`` execs a new
    ``mrnet_commnode`` with ``--subtree`` JSON on the command line —
    the fully self-describing form, matching how rsh-launched MRNet
    processes receive their configuration.
    """
    handles = []
    addr = listener.address
    for child in spec.get("c", ()):
        if "c" not in child:
            continue  # leaf slot: its back-end connects later
        if opts.spawn == "fork":
            pid = os.fork()
            if pid == 0:
                code = 1
                try:
                    # The parent's listener fds are not ours to hold:
                    # keeping them open would hold their ports
                    # half-alive after the parent exits.  (A colocated
                    # parent hosts several members, hence several.)
                    listener.close()
                    for other in close_in_child:
                        if other is not listener:
                            try:
                                other.close()
                            except Exception:
                                pass
                    code = run_commnode_recursive(
                        child, addr, my_host, opts, announce=_silent,
                        ancestors=child_ancestors,
                    )
                except BaseException:
                    traceback.print_exc()
                finally:
                    os._exit(code)
            handles.append(_ForkChild(pid, child["l"]))
        else:
            import subprocess

            cmd = [
                sys.executable, "-m", "repro.mrnet_commnode",
                "--parent", f"127.0.0.1:{addr[1]}",
                "--parent-host", my_host,
                "--subtree", json.dumps(child, separators=(",", ":")),
            ] + opts.command_line()
            if opts.repair and child_ancestors:
                cmd += [
                    "--ancestors",
                    ",".join(f"{h}:{p}" for h, p in child_ancestors),
                ]
            handles.append(
                subprocess.Popen(cmd, stdout=subprocess.DEVNULL)
            )
    return handles


def _silent(*args, **kwargs) -> None:
    """announce sink for forked children (stdout belongs to the root)."""


def _reap(handles, timeout: float = 5.0) -> None:
    """Collect spawned children; force-kill any that outlive *timeout*."""
    for handle in handles:
        try:
            handle.wait(timeout=timeout)
        except Exception:
            handle.kill()
            try:
                handle.wait(timeout=1.0)
            except Exception:
                pass


def run_commnode_recursive(
    spec: dict,
    parent_addr: Tuple[str, int],
    parent_host: str,
    opts: RecursiveOpts,
    announce=print,
    ancestors: tuple = (),
) -> int:
    """Instantiate this node *and its whole subtree* (paper mode 1).

    Ordering is the heart of the O(depth) claim:

    1. open the listener;
    2. spawn every internal child immediately — the next tree level
       boots in parallel with everything below;
    3. connect upward (offering the shared-memory upgrade when this
       node and its parent share a topology host);
    4. accept the internal children spawned in step 2;
    5. announce ``label host port`` upstream via ``TAG_ADDR_REPORT``
       so the front-end can aim back-end attaches at leaf parents;
    6. run the event loop, accepting leaf (back-end) connections
       lazily as they arrive.
    """
    registry = default_registry()
    for path, func, fmt in opts.filter_specs:
        registry.load_filter_func(path, func, fmt)

    inbox = Inbox()
    listener = TcpListener(inbox)
    announce(f"LISTENING {listener.address[1]}", flush=True)
    my_host = _host_of(spec["l"])
    if opts.colocate:
        # Same-host internal descendants are hosted on this process's
        # shared event loop instead of being spawned; the colocated
        # runner spawns (and reaps) only the off-host ones.
        try:
            return _run_recursive_colocated(
                spec, parent_addr, parent_host, my_host,
                registry, inbox, listener, opts, ancestors,
            )
        finally:
            listener.close()
    children = spec.get("c", [])
    internal = [c for c in children if "c" in c]
    n_leaves = len(children) - len(internal)
    expected = sum(_count_leaves(c) for c in children)

    # A spawned child's repair chain is this node's own proper
    # ancestors plus this node's parent (i.e. everything above the
    # child except the child's parent — us).
    handles = _spawn_internal_children(
        spec, listener, my_host, opts,
        child_ancestors=ancestors + (parent_addr,),
    )
    try:
        return _run_recursive_eventloop(
            spec, parent_addr, parent_host, my_host,
            len(internal), n_leaves, expected, registry, inbox,
            listener, opts, ancestors,
        )
    finally:
        listener.close()
        _reap(handles)


def _recursive_core(
    spec, registry, expected, parent_end, inbox, opts, repair_fn=None
) -> NodeCore:
    core = NodeCore(
        spec["l"], registry, expected, parent=parent_end, inbox=inbox
    )
    core.obs_rank = int(spec.get("r", -1))
    kwargs = {}
    if opts.heartbeat is not None:
        kwargs["heartbeat"] = opts.heartbeat
    if opts.checkpoint_interval > 0:
        kwargs["checkpoint_interval"] = opts.checkpoint_interval
    if opts.repair and repair_fn is not None:
        kwargs["policy"] = REPAIR
        kwargs["repair_fn"] = repair_fn
    if kwargs:
        core.configure_failure(**kwargs)
    return core


def _run_recursive_eventloop(
    spec, parent_addr, parent_host, my_host,
    n_internal, n_leaves, expected, registry, inbox, listener, opts,
    ancestors=(),
) -> int:
    from .transport.eventloop import EventLoop
    from .transport.tcp import tcp_connect_socket_retry_ex

    want_shm = opts.shm == "auto" and parent_host == my_host
    allow_shm = opts.shm == "auto"
    sock, pair = tcp_connect_socket_retry_ex(
        parent_addr, attempts=6, timeout=opts.accept_timeout, shm=want_shm
    )
    loop = EventLoop()
    if pair is not None:
        parent_end = loop.add_shm_link(sock, pair[0], pair[1], owner=True)
    else:
        parent_end = loop.add_socket(sock)
    repair_fn = None
    if opts.repair and ancestors:
        repair_fn = _repair_fn_eventloop(loop, ancestors, opts.accept_timeout)
    core = _recursive_core(
        spec, registry, expected, parent_end, inbox, opts, repair_fn
    )
    for _ in range(n_internal):
        sock_c, pair_c = listener.accept_socket_ex(
            timeout=opts.accept_timeout, allow_shm=allow_shm
        )
        if pair_c is not None:
            core.add_child(loop.add_shm_link(sock_c, pair_c[0], pair_c[1]))
        else:
            core.add_child(loop.add_socket(sock_c))
    core._queue_up(
        make_addr_report(spec["l"], "127.0.0.1", listener.address[1])
    )
    if opts.repair:
        # Keep accepting for the network's lifetime: orphaned
        # descendants re-dial their nearest live ancestor here, and
        # elastic joiners may be pointed at this node by the
        # coordinator, long after the n_leaves budget is spent.
        loop.add_acceptor(listener, remaining=None, allow_shm=allow_shm)
    elif n_leaves:
        # Back-ends attach whenever the front-end reaches them; the
        # loop accepts them without blocking the rest of the subtree.
        loop.add_acceptor(listener, remaining=n_leaves, allow_shm=allow_shm)
    loop.bind(core)
    loop.run()
    return 0


def _run_recursive_colocated(
    spec, parent_addr, parent_host, my_host,
    registry, inbox, listener, opts, ancestors=(),
) -> int:
    """Host the whole same-host subtree group on ONE event loop.

    Walking the subtree spec from this node, every internal descendant
    reachable through a chain of *same-host* internal edges becomes a
    core on this process's shared selector loop, wired to its parent
    with an in-process :class:`~repro.transport.inproc.InprocLink`
    (deque hand-off, no sockets).  Each hosted member still gets its
    own TCP listener — off-host internal children and back-end leaves
    attach to it exactly as in the plain recursive mode, and each
    member announces its ``TAG_ADDR_REPORT`` upstream as usual — so
    the rest of the tree cannot tell the group apart from N separate
    processes, except that it costs one thread instead of N.
    """
    from .transport.eventloop import EventLoop
    from .transport.tcp import tcp_connect_socket_retry_ex

    allow_shm = opts.shm == "auto"
    want_shm = allow_shm and parent_host == my_host
    sock, pair = tcp_connect_socket_retry_ex(
        parent_addr, attempts=6, timeout=opts.accept_timeout, shm=want_shm
    )
    loop = EventLoop(workers=opts.workers)
    if pair is not None:
        parent_end = loop.add_shm_link(sock, pair[0], pair[1], owner=True)
    else:
        parent_end = loop.add_socket(sock)

    # members: (spec, core, listener, n_remote, n_leaves, anc) in
    # preorder; ``anc`` is the member's *full* proper-ancestor address
    # chain (what its spawned children re-dial under repair).
    members: list = []

    def build(node_spec, node_parent_end, node_inbox, node_listener, anc):
        children = node_spec.get("c", [])
        internal = [c for c in children if "c" in c]
        hosted = [c for c in internal if _host_of(c["l"]) == my_host]
        remote = [c for c in internal if _host_of(c["l"]) != my_host]
        n_leaves = len(children) - len(internal)
        # Only the group root can outlive its parent: a hosted
        # member's parent shares this process, so it repairs nothing.
        repair_fn = None
        if not members and opts.repair and ancestors:
            repair_fn = _repair_fn_eventloop(
                loop, ancestors, opts.accept_timeout
            )
        core = _recursive_core(
            node_spec, registry, sum(_count_leaves(c) for c in children),
            node_parent_end, node_inbox, opts, repair_fn,
        )
        if getattr(node_parent_end, "_inproc", False):
            node_parent_end._core = core
        members.append(
            (node_spec, core, node_listener, len(remote), n_leaves, anc)
        )
        for child in hosted:
            p_end, c_end = loop.add_inproc_pair()
            p_end._core = core
            core.add_child(p_end)
            build(
                child, c_end, Inbox(), TcpListener(Inbox()),
                anc + (node_listener.address,),
            )
        return core

    build(spec, parent_end, inbox, listener, ancestors + (parent_addr,))

    # Spawn every member's off-host internal children in one burst —
    # the whole next off-host level boots in parallel (Figure 5), and
    # fork children close ALL group listeners, not just their parent's.
    all_listeners = tuple(m[2] for m in members)
    handles: list = []
    for node_spec, _core, node_listener, n_remote, _n_leaves, anc in members:
        if not n_remote:
            continue
        remote = [
            c for c in node_spec.get("c", ())
            if "c" in c and _host_of(c["l"]) != my_host
        ]
        handles += _spawn_internal_children(
            {"l": node_spec["l"], "c": remote}, node_listener, my_host,
            opts, close_in_child=all_listeners, child_ancestors=anc,
        )

    try:
        for node_spec, core, node_listener, n_remote, n_leaves, _anc in members:
            for _ in range(n_remote):
                sock_c, pair_c = node_listener.accept_socket_ex(
                    timeout=opts.accept_timeout, allow_shm=allow_shm
                )
                if pair_c is not None:
                    core.add_child(
                        loop.add_shm_link(
                            sock_c, pair_c[0], pair_c[1], core=core
                        )
                    )
                else:
                    core.add_child(loop.add_socket(sock_c, core=core))
            core._queue_up(
                make_addr_report(
                    node_spec["l"], "127.0.0.1", node_listener.address[1]
                )
            )
            if opts.repair:
                # Accept forever: re-dialing orphans and elastic
                # joiners arrive long after the leaf budget is spent.
                loop.add_acceptor(
                    node_listener, remaining=None,
                    allow_shm=allow_shm, core=core,
                )
            elif n_leaves:
                loop.add_acceptor(
                    node_listener, remaining=n_leaves,
                    allow_shm=allow_shm, core=core,
                )
            loop.bind(core)
        loop.run()
        return 0
    finally:
        for node_listener in all_listeners:
            try:
                node_listener.close()
            except Exception:
                pass
        _reap(handles)


def run_commnode(
    parent_addr: Tuple[str, int],
    n_children: int,
    expected_ranks: int,
    filter_specs: List[Tuple[str, str, Optional[str]]],
    name: str = "commnode",
    announce=print,
    accept_timeout: float = 60.0,
    heartbeat: Optional["HeartbeatConfig"] = None,
    rank: int = -1,
    repair: bool = False,
    ancestors: tuple = (),
    checkpoint_interval: float = 0.0,
) -> int:
    """The program body; returns a process exit code.

    ``rank`` is this process's observability rank (the launcher's
    spawn order), used only to form the ``rank:hostname`` identity in
    ``STATS_SNAPSHOT`` replies.  With ``repair`` the node re-dials the
    nearest live entry of *ancestors* (proper-ancestor addresses,
    root-first, excluding its own parent) when the parent link dies,
    and keeps accepting connections for its whole life so orphaned
    descendants and elastic joiners can attach.
    """
    registry = default_registry()
    for path, func, fmt in filter_specs:
        registry.load_filter_func(path, func, fmt)

    inbox = Inbox()
    listener = TcpListener(inbox)
    announce(f"LISTENING {listener.address[1]}", flush=True)

    return _run_eventloop(
        listener, parent_addr, n_children, expected_ranks,
        registry, name, inbox, accept_timeout, heartbeat, rank,
        repair, ancestors, checkpoint_interval,
    )


def _configure_core_failure(
    core, heartbeat, repair, repair_fn, checkpoint_interval
) -> None:
    """One configure_failure call carrying everything this body needs."""
    kwargs = {}
    if heartbeat is not None:
        kwargs["heartbeat"] = heartbeat
    if checkpoint_interval > 0:
        kwargs["checkpoint_interval"] = checkpoint_interval
    if repair and repair_fn is not None:
        kwargs["policy"] = REPAIR
        kwargs["repair_fn"] = repair_fn
    if kwargs:
        core.configure_failure(**kwargs)


def _run_eventloop(
    listener, parent_addr, n_children, expected_ranks,
    registry, name, inbox, accept_timeout, heartbeat=None, rank=-1,
    repair=False, ancestors=(), checkpoint_interval=0.0,
) -> int:
    """Selector-driven body: every socket on one loop, zero I/O threads."""
    from .transport.eventloop import EventLoop
    from .transport.tcp import tcp_connect_socket_retry

    loop = EventLoop()
    parent_end = loop.add_socket(
        tcp_connect_socket_retry(parent_addr, attempts=6, timeout=accept_timeout)
    )
    core = NodeCore(
        name, registry, expected_ranks, parent=parent_end, inbox=inbox
    )
    core.obs_rank = rank
    repair_fn = None
    if repair and ancestors:
        repair_fn = _repair_fn_eventloop(loop, ancestors, accept_timeout)
    _configure_core_failure(
        core, heartbeat, repair, repair_fn, checkpoint_interval
    )
    try:
        for _ in range(n_children):
            core.add_child(
                loop.add_socket(listener.accept_socket(timeout=accept_timeout))
            )
    finally:
        if not repair:
            listener.close()
    if repair:
        # Accept for the node's whole life: orphaned descendants
        # re-dial their nearest live ancestor here, and elastic
        # joiners may be handed to this node by the coordinator.
        loop.add_acceptor(listener, remaining=None)
    loop.bind(core)
    try:
        loop.run()
    finally:
        if repair:
            listener.close()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mrnet_commnode",
        description="MRNet internal process (runs between front-end and "
        "back-ends).",
    )
    parser.add_argument(
        "--parent", required=True, help="parent address, host:port"
    )
    parser.add_argument(
        "--children", type=int, default=None,
        help="number of child connections to accept (sequential mode)",
    )
    parser.add_argument(
        "--expected-ranks", type=int, default=None,
        help="back-end ranks in this subtree (gates the endpoint report)",
    )
    parser.add_argument(
        "--subtree", default=None, metavar="JSON",
        help="recursive instantiation: this node's whole subtree spec "
        "(replaces --children/--expected-ranks/--name/--rank; the node "
        "spawns its own internal children)",
    )
    parser.add_argument(
        "--parent-host", default="",
        help="parent's topology host (shared-memory co-location test)",
    )
    parser.add_argument(
        "--shm", choices=("auto", "off"), default="off",
        help="upgrade same-host links to shared-memory rings (auto) "
        "or keep every link on TCP (off, default)",
    )
    parser.add_argument(
        "--spawn", choices=("fork", "popen"), default="fork",
        help="how recursive instantiation creates internal children: "
        "fork this interpreter (default, fast) or exec fresh processes",
    )
    parser.add_argument(
        "--colocate", action="store_true",
        help="recursive instantiation: host same-host internal subtree "
        "members on this process's shared event loop (inproc links) "
        "instead of spawning one process each",
    )
    parser.add_argument(
        "--filter-workers", type=int, default=0,
        help="worker threads for large filter reductions on a "
        "colocated event loop (0 = run filters inline)",
    )
    parser.add_argument(
        "--filter", action="append", default=[], metavar="PATH:FUNC[:FMT]",
        help="custom filter to load (repeatable; order defines ids)",
    )
    parser.add_argument("--name", default="commnode")
    parser.add_argument(
        "--rank", type=int, default=-1,
        help="observability rank used in STATS_SNAPSHOT identities",
    )
    parser.add_argument("--accept-timeout", type=float, default=60.0)
    parser.add_argument(
        "--heartbeat-interval", type=float, default=0.0,
        help="liveness probe period in seconds (0 disables heartbeats)",
    )
    parser.add_argument(
        "--heartbeat-miss", type=int, default=3,
        help="silent intervals before a peer is declared dead",
    )
    parser.add_argument(
        "--repair", action="store_true",
        help="repair policy: survive a dead parent by re-dialing a "
        "live ancestor, and keep accepting connections so orphaned "
        "descendants and joining back-ends can attach",
    )
    parser.add_argument(
        "--ancestors", default="", metavar="HOST:PORT,...",
        help="proper-ancestor addresses, root first and excluding this "
        "node's own parent (repair re-dials the nearest live one)",
    )
    parser.add_argument(
        "--checkpoint-interval", type=float, default=0.0,
        help="period between filter-state checkpoints shipped to the "
        "grandparent (0 disables checkpointing)",
    )
    args = parser.parse_args(argv)

    try:
        specs = [parse_filter_spec(s) for s in args.filter]
        parent_addr = _parse_host_port(args.parent)
        ancestors = tuple(
            _parse_host_port(a) for a in args.ancestors.split(",") if a
        )
    except ValueError as exc:
        parser.error(str(exc))
    heartbeat = None
    if args.heartbeat_interval > 0:
        heartbeat = HeartbeatConfig(
            interval=args.heartbeat_interval,
            miss_threshold=args.heartbeat_miss,
        )
    if args.subtree is not None:
        try:
            spec = json.loads(args.subtree)
        except ValueError as exc:
            parser.error(f"malformed --subtree JSON: {exc}")
        opts = RecursiveOpts(
            filter_specs=specs,
            heartbeat=heartbeat,
            accept_timeout=args.accept_timeout,
            shm=args.shm,
            spawn=args.spawn,
            colocate=args.colocate,
            workers=args.filter_workers,
            repair=args.repair,
            checkpoint_interval=args.checkpoint_interval,
        )
        return run_commnode_recursive(
            spec, parent_addr, args.parent_host, opts, ancestors=ancestors
        )
    if args.children is None or args.expected_ranks is None:
        parser.error("--children and --expected-ranks are required "
                     "without --subtree")
    return run_commnode(
        parent_addr,
        args.children,
        args.expected_ranks,
        specs,
        name=args.name,
        accept_timeout=args.accept_timeout,
        heartbeat=heartbeat,
        rank=args.rank,
        repair=args.repair,
        ancestors=ancestors,
        checkpoint_interval=args.checkpoint_interval,
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
