"""The ``mrnet_commnode`` program: an internal process as a real OS
process.

"MRNet has two main components: libmrnet, a library that is linked
into a tool's front-end and back-end components, and mrnet_commnode, a
program that runs on intermediate nodes interposed between the
front-end and back-ends." (§2)

The default runtime hosts internal processes as threads, which is
convenient but GIL-bound.  This module is the faithful alternative:
each internal process is a separate Python process connected to its
parent and children over TCP, exactly like the original program — the
codec, batching, synchronization and filter work all run outside the
front-end's interpreter.  ``Network(transport="process")`` launches
these automatically; the program can also be started by hand::

   python -m repro.mrnet_commnode --parent HOST:PORT \
          --children 4 --expected-ranks 16 \
          [--filter /path/to/module.py:func_name] ...

Bootstrap protocol (replacing rsh + the parent's config message of
§2.5):

1. the process opens a listener and prints ``LISTENING <port>`` on
   stdout (its launcher reads this to wire the next tree level);
2. it connects to ``--parent``;
3. it accepts exactly ``--children`` connections;
4. it runs the standard NodeCore event loop until shutdown.

With the default ``--io-mode eventloop`` the process multiplexes all
of its sockets through one ``selectors`` loop on the main thread — no
per-link reader threads, non-blocking vectored writes, and timer
deadlines instead of polling.  ``--io-mode threads`` restores the
legacy architecture (one reader thread per link feeding an inbox
drained on a poll interval).

Custom filters cross the process boundary the same way real MRNet
ships shared objects: as a file path + function name, loaded on every
process in the same order so registry ids agree network-wide.
"""

from __future__ import annotations

import argparse
import queue
import sys
from typing import List, Optional, Tuple

from .core.commnode import NodeCore
from .core.failure import HeartbeatConfig
from .filters.registry import default_registry
from .transport.channel import Inbox
from .transport.tcp import TcpListener, tcp_connect_retry

__all__ = ["main", "parse_filter_spec"]


def parse_filter_spec(spec: str) -> Tuple[str, str, Optional[str]]:
    """Parse ``path:func`` or ``path:func:fmt`` (fmt may contain spaces
    if the caller quotes; colons inside paths are not supported)."""
    parts = spec.split(":")
    if len(parts) == 2:
        return parts[0], parts[1], None
    if len(parts) == 3:
        return parts[0], parts[1], parts[2] or None
    raise ValueError(f"malformed filter spec {spec!r} (want path:func[:fmt])")


def _parse_host_port(text: str) -> Tuple[str, int]:
    host, _, port = text.rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"malformed address {text!r} (want host:port)")
    return host, int(port)


def run_commnode(
    parent_addr: Tuple[str, int],
    n_children: int,
    expected_ranks: int,
    filter_specs: List[Tuple[str, str, Optional[str]]],
    name: str = "commnode",
    announce=print,
    accept_timeout: float = 60.0,
    io_mode: str = "eventloop",
    heartbeat: Optional["HeartbeatConfig"] = None,
    rank: int = -1,
) -> int:
    """The program body; returns a process exit code.

    ``rank`` is this process's observability rank (the launcher's
    spawn order), used only to form the ``rank:hostname`` identity in
    ``STATS_SNAPSHOT`` replies.
    """
    registry = default_registry()
    for path, func, fmt in filter_specs:
        registry.load_filter_func(path, func, fmt)

    inbox = Inbox()
    listener = TcpListener(inbox)
    announce(f"LISTENING {listener.address[1]}", flush=True)

    if io_mode == "eventloop":
        return _run_eventloop(
            listener, parent_addr, n_children, expected_ranks,
            registry, name, inbox, accept_timeout, heartbeat, rank,
        )
    return _run_threads(
        listener, parent_addr, n_children, expected_ranks,
        registry, name, inbox, accept_timeout, heartbeat, rank,
    )


def _run_eventloop(
    listener, parent_addr, n_children, expected_ranks,
    registry, name, inbox, accept_timeout, heartbeat=None, rank=-1,
) -> int:
    """Selector-driven body: every socket on one loop, zero I/O threads."""
    from .transport.eventloop import EventLoop
    from .transport.tcp import tcp_connect_socket_retry

    loop = EventLoop()
    parent_end = loop.add_socket(
        tcp_connect_socket_retry(parent_addr, attempts=6, timeout=accept_timeout)
    )
    core = NodeCore(
        name, registry, expected_ranks, parent=parent_end, inbox=inbox
    )
    core.obs_rank = rank
    if heartbeat is not None:
        core.configure_failure(heartbeat=heartbeat)
    try:
        for _ in range(n_children):
            core.add_child(
                loop.add_socket(listener.accept_socket(timeout=accept_timeout))
            )
    finally:
        listener.close()
    loop.bind(core)
    loop.run()
    return 0


def _run_threads(
    listener, parent_addr, n_children, expected_ranks,
    registry, name, inbox, accept_timeout, heartbeat=None, rank=-1,
) -> int:
    """Legacy body: reader thread per link, inbox drained on a timer."""
    parent_end = tcp_connect_retry(
        parent_addr, inbox, attempts=6, timeout=accept_timeout
    )
    core = NodeCore(
        name, registry, expected_ranks, parent=parent_end, inbox=inbox
    )
    core.obs_rank = rank
    if heartbeat is not None:
        core.configure_failure(heartbeat=heartbeat)
    try:
        for _ in range(n_children):
            core.add_child(listener.accept(timeout=accept_timeout))
    finally:
        listener.close()

    # The standard internal-process inbox loop (see CommNode).
    while not core.shutting_down:
        deadline = core.next_timeout_deadline()
        hb = core.next_heartbeat_deadline()
        if hb is not None and (deadline is None or hb < deadline):
            deadline = hb
        if deadline is None:
            poll = 0.05
        else:
            poll = max(deadline - core.clock(), 0.0)
        try:
            link_id, payload = core.inbox.get(timeout=poll)
        except queue.Empty:
            core.poll_streams()
            core.heartbeat_tick()
            core.flush()
            continue
        core.handle_payload(link_id, payload)
        while True:
            try:
                link_id, payload = core.inbox.get_nowait()
            except queue.Empty:
                break
            core.handle_payload(link_id, payload)
            if core.shutting_down:
                break
        core.poll_streams()
        core.heartbeat_tick()
        core.flush()
    core.flush()
    core.close_all()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="mrnet_commnode",
        description="MRNet internal process (runs between front-end and "
        "back-ends).",
    )
    parser.add_argument(
        "--parent", required=True, help="parent address, host:port"
    )
    parser.add_argument(
        "--children", type=int, required=True,
        help="number of child connections to accept",
    )
    parser.add_argument(
        "--expected-ranks", type=int, required=True,
        help="back-end ranks in this subtree (gates the endpoint report)",
    )
    parser.add_argument(
        "--filter", action="append", default=[], metavar="PATH:FUNC[:FMT]",
        help="custom filter to load (repeatable; order defines ids)",
    )
    parser.add_argument("--name", default="commnode")
    parser.add_argument(
        "--rank", type=int, default=-1,
        help="observability rank used in STATS_SNAPSHOT identities",
    )
    parser.add_argument("--accept-timeout", type=float, default=60.0)
    parser.add_argument(
        "--io-mode", choices=("eventloop", "threads"), default="eventloop",
        help="selector event loop (default) or legacy reader threads",
    )
    parser.add_argument(
        "--heartbeat-interval", type=float, default=0.0,
        help="liveness probe period in seconds (0 disables heartbeats)",
    )
    parser.add_argument(
        "--heartbeat-miss", type=int, default=3,
        help="silent intervals before a peer is declared dead",
    )
    args = parser.parse_args(argv)

    try:
        specs = [parse_filter_spec(s) for s in args.filter]
        parent_addr = _parse_host_port(args.parent)
    except ValueError as exc:
        parser.error(str(exc))
    heartbeat = None
    if args.heartbeat_interval > 0:
        heartbeat = HeartbeatConfig(
            interval=args.heartbeat_interval,
            miss_threshold=args.heartbeat_miss,
        )
    return run_commnode(
        parent_addr,
        args.children,
        args.expected_ranks,
        specs,
        name=args.name,
        accept_timeout=args.accept_timeout,
        io_mode=args.io_mode,
        heartbeat=heartbeat,
        rank=args.rank,
    )


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
