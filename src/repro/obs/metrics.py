"""Typed metrics registry for the live data plane.

Three instrument kinds, mirroring the Prometheus data model:

* :class:`Counter` — a monotonically increasing count (packets
  relayed, waves aggregated, heartbeats missed).
* :class:`Gauge` — a value that goes up and down (streams currently
  open, bytes parked in a send queue).
* :class:`Histogram` — fixed-bucket distribution with a running sum
  and count (wave sync-wait latency, flush batch sizes).

Hot-path philosophy: an instrument is a tiny ``__slots__`` object and
a bump is one attribute add (``counter.value += 1``) — the same cost
as the ad-hoc ``dict`` counters it replaces, measured in
``benchmarks/bench_observability.py`` and gated below 5% relay
overhead in CI.  All structure (names, help text, labels, bucket
layout) lives in the registry and is only walked at snapshot time.

Labels are fixed at instrument creation (``registry.counter("waves",
stream="5", filter="sum")``); the rendered key uses the Prometheus
``name{k="v"}`` form so labelled series survive a JSON round trip
through the ``STATS_SNAPSHOT`` wire protocol unchanged.

:class:`StatsView` is the backward-compatibility shim: a live mapping
over a registry's counters so existing code and tests can keep reading
``core.stats["packets_up"]``.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StatsView",
    "DEFAULT_LATENCY_BUCKETS",
    "DEFAULT_SIZE_BUCKETS",
    "prometheus_text",
    "render_key",
    "parse_key",
]

# Upper bucket bounds in seconds: 10 µs .. 10 s, roughly logarithmic.
# Sized for the latencies this overlay actually sees: a local relay
# hop is ~10 µs, a TCP loopback wave ~1 ms, a repair ~50 ms.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-5, 1e-4, 5e-4, 1e-3, 5e-3, 1e-2, 5e-2, 0.1, 0.5, 1.0, 10.0,
)

# Upper bucket bounds for size-ish distributions (packets per flushed
# message): powers of two up to the FLUSH_MAX_PACKETS bound.
DEFAULT_SIZE_BUCKETS: Tuple[float, ...] = (1, 2, 4, 8, 16, 32, 64, 128, 512)


def render_key(name: str, labels: Optional[Mapping[str, object]]) -> str:
    """Render ``name`` + labels as a Prometheus-style series key.

    ``render_key("waves", {"stream": 5})`` → ``'waves{stream="5"}'``.
    Unlabelled instruments render as the bare name.  Label values are
    stringified; label *names* must be identifiers.
    """
    if not labels:
        return name
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{name}{{{inner}}}"


_KEY_RE = re.compile(r'^(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)(?:\{(?P<labels>.*)\})?$')
_LABEL_RE = re.compile(r'(?P<k>[A-Za-z_][A-Za-z0-9_]*)="(?P<v>[^"]*)"')


def parse_key(key: str) -> Tuple[str, Dict[str, str]]:
    """Invert :func:`render_key`: split a series key into name + labels."""
    m = _KEY_RE.match(key)
    if m is None:
        return key, {}
    labels = dict(
        (lm.group("k"), lm.group("v"))
        for lm in _LABEL_RE.finditer(m.group("labels") or "")
    )
    return m.group("name"), labels


class Counter:
    """A monotonically increasing integer metric.

    The hot path may bump :attr:`value` directly (``c.value += 1``);
    :meth:`inc` is the readable form for warm paths.
    """

    __slots__ = ("name", "help", "labels", "value")

    def __init__(self, name: str, help: str = "", labels: Optional[dict] = None):
        self.name = name
        self.help = help
        self.labels = dict(labels) if labels else None
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add *n* (default 1) to the counter."""
        self.value += n

    @property
    def key(self) -> str:
        """The rendered ``name{labels}`` series key."""
        return render_key(self.name, self.labels)

    def __repr__(self) -> str:
        return f"Counter({self.key}={self.value})"


class Gauge:
    """A point-in-time value that can go up and down.

    A gauge may be *callback-backed*: built with ``fn``, its value is
    computed on read (used for quantities derived from live structures
    — open streams, parked bytes — so the hot path never maintains
    them).
    """

    __slots__ = ("name", "help", "labels", "_value", "fn")

    def __init__(
        self,
        name: str,
        help: str = "",
        labels: Optional[dict] = None,
        fn: Optional[Callable[[], float]] = None,
    ):
        self.name = name
        self.help = help
        self.labels = dict(labels) if labels else None
        self._value: float = 0
        self.fn = fn

    def set(self, value: float) -> None:
        """Set the gauge to *value*."""
        self._value = value

    def inc(self, n: float = 1) -> None:
        """Add *n* (default 1) to the gauge."""
        self._value += n

    def dec(self, n: float = 1) -> None:
        """Subtract *n* (default 1) from the gauge."""
        self._value -= n

    @property
    def value(self) -> float:
        """Current value (evaluates the callback, if one is bound)."""
        if self.fn is not None:
            try:
                return self.fn()
            except Exception:
                return self._value
        return self._value

    @property
    def key(self) -> str:
        """The rendered ``name{labels}`` series key."""
        return render_key(self.name, self.labels)

    def __repr__(self) -> str:
        return f"Gauge({self.key}={self.value})"


class Histogram:
    """A fixed-bucket distribution with running sum and count.

    ``buckets`` are *upper* bounds; an implicit ``+Inf`` bucket
    catches the rest.  Unlike Prometheus exposition the per-bucket
    counts here are **not** cumulative — they are raw occupancy, which
    keeps merging and JSON round-trips trivial; :func:`prometheus_text`
    re-cumulates on export.
    """

    __slots__ = ("name", "help", "labels", "buckets", "counts", "sum", "count")

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        labels: Optional[dict] = None,
    ):
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError("histogram buckets must be sorted and non-empty")
        self.name = name
        self.help = help
        self.labels = dict(labels) if labels else None
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * (len(buckets) + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.buckets, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def key(self) -> str:
        """The rendered ``name{labels}`` series key."""
        return render_key(self.name, self.labels)

    def to_dict(self) -> dict:
        """JSON-able dump: bucket bounds, raw counts, sum, count."""
        return {
            "buckets": list(self.buckets),
            "counts": list(self.counts),
            "sum": self.sum,
            "count": self.count,
        }

    def __repr__(self) -> str:
        return f"Histogram({self.key}, n={self.count}, sum={self.sum:.6f})"


class MetricsRegistry:
    """One process's typed instruments, keyed by name + labels.

    Instrument constructors are memoizing: asking twice for the same
    ``(name, labels)`` returns the same object, so callers pre-bind
    instruments once and bump attributes on the hot path.
    """

    def __init__(self, namespace: str = "mrnet"):
        self.namespace = namespace
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- construction ------------------------------------------------------

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        """Get or create the counter for ``name`` + *labels*."""
        key = render_key(name, labels)
        c = self._counters.get(key)
        if c is None:
            c = self._counters[key] = Counter(name, help, labels)
        return c

    def gauge(
        self, name: str, help: str = "", fn: Optional[Callable] = None, **labels
    ) -> Gauge:
        """Get or create the gauge for ``name`` + *labels*.

        ``fn`` binds a read-time callback (only applied on creation).
        """
        key = render_key(name, labels)
        g = self._gauges.get(key)
        if g is None:
            g = self._gauges[key] = Gauge(name, help, labels, fn=fn)
        return g

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS,
        **labels,
    ) -> Histogram:
        """Get or create the histogram for ``name`` + *labels*."""
        key = render_key(name, labels)
        h = self._histograms.get(key)
        if h is None:
            h = self._histograms[key] = Histogram(name, help, buckets, labels)
        return h

    # -- introspection -----------------------------------------------------

    def counters(self) -> Dict[str, Counter]:
        """Live ``series-key -> Counter`` mapping (not a copy)."""
        return self._counters

    def snapshot(self) -> dict:
        """JSON-able dump of every instrument.

        ``{"counters": {key: int}, "gauges": {key: float},
        "histograms": {key: {...}}}`` — the exact shape carried by
        ``STATS_SNAPSHOT`` replies and returned from
        ``Network.stats()``.
        """
        return {
            "counters": {k: c.value for k, c in self._counters.items()},
            "gauges": {k: g.value for k, g in self._gauges.items()},
            "histograms": {k: h.to_dict() for k, h in self._histograms.items()},
        }

    def help_catalog(self) -> Dict[str, Tuple[str, str]]:
        """``metric name -> (kind, help)`` for every registered metric."""
        out: Dict[str, Tuple[str, str]] = {}
        for c in self._counters.values():
            out.setdefault(c.name, ("counter", c.help))
        for g in self._gauges.values():
            out.setdefault(g.name, ("gauge", g.help))
        for h in self._histograms.values():
            out.setdefault(h.name, ("histogram", h.help))
        return out

    def __repr__(self) -> str:
        return (
            f"MetricsRegistry({self.namespace}, "
            f"{len(self._counters)}c/{len(self._gauges)}g/"
            f"{len(self._histograms)}h)"
        )


class StatsView(Mapping):
    """Dict-like live view over a registry's counters (compat shim).

    Pre-existing code and tests read node statistics as
    ``core.stats["packets_up"]`` / ``dict(core.stats)``; this view
    keeps that working on top of typed :class:`Counter` objects.
    Writes (``stats["x"] += 1``) are accepted and create the counter
    on demand, so external bump sites keep functioning, but new code
    should pre-bind counters instead.

    Only *unlabelled* counters are visible here, matching the flat
    dicts this view replaces.
    """

    def __init__(self, registry: MetricsRegistry):
        self._registry = registry

    def __getitem__(self, name: str) -> int:
        c = self._registry.counters().get(name)
        if c is None:
            raise KeyError(name)
        return c.value

    def __setitem__(self, name: str, value: int) -> None:
        self._registry.counter(name).value = value

    def get(self, name: str, default=None):
        """Counter value, or *default* when no such counter exists."""
        c = self._registry.counters().get(name)
        return default if c is None else c.value

    def __iter__(self) -> Iterator[str]:
        return (k for k, c in self._registry.counters().items() if not c.labels)

    def __len__(self) -> int:
        return sum(1 for _ in self)

    def __contains__(self, name: str) -> bool:
        return name in self._registry.counters()

    def __repr__(self) -> str:
        return f"StatsView({dict(self)})"


def _prom_series(
    lines: List[str],
    namespace: str,
    kind: str,
    name: str,
    helps: Dict[str, str],
    emitted: set,
) -> str:
    """Emit ``# HELP``/``# TYPE`` headers once per metric; return the
    namespaced metric name."""
    full = f"{namespace}_{name}" if namespace else name
    if full not in emitted:
        emitted.add(full)
        help_text = helps.get(name, "")
        if help_text:
            lines.append(f"# HELP {full} {help_text}")
        lines.append(f"# TYPE {full} {kind}")
    return full


def _labels_text(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{k}="{labels[k]}"' for k in sorted(labels))
    return f"{{{inner}}}"


def prometheus_text(
    processes: Mapping[str, Mapping],
    namespace: str = "mrnet",
    helps: Optional[Dict[str, str]] = None,
) -> str:
    """Render per-process snapshot dicts as Prometheus exposition text.

    *processes* maps a process key (``"0:front-end"``) to a snapshot in
    :meth:`MetricsRegistry.snapshot` shape; every series gains a
    ``process`` label.  Works equally on local snapshots and ones that
    travelled through the ``STATS_SNAPSHOT`` wire protocol, because the
    snapshot dict *is* the wire format.
    """
    helps = helps or {}
    lines: List[str] = []
    emitted: set = set()
    for proc, snap in processes.items():
        base = {"process": str(proc)}
        for key, value in snap.get("counters", {}).items():
            name, labels = parse_key(key)
            full = _prom_series(lines, namespace, "counter", name, helps, emitted)
            labels = {**labels, **base}
            lines.append(f"{full}{_labels_text(labels)} {value}")
        for key, value in snap.get("gauges", {}).items():
            name, labels = parse_key(key)
            full = _prom_series(lines, namespace, "gauge", name, helps, emitted)
            labels = {**labels, **base}
            lines.append(f"{full}{_labels_text(labels)} {value}")
        for key, hist in snap.get("histograms", {}).items():
            name, labels = parse_key(key)
            full = _prom_series(lines, namespace, "histogram", name, helps, emitted)
            labels = {**labels, **base}
            cumulative = 0
            bounds = list(hist["buckets"]) + ["+Inf"]
            for bound, count in zip(bounds, hist["counts"]):
                cumulative += count
                le = {**labels, "le": str(bound)}
                lines.append(f"{full}_bucket{_labels_text(le)} {cumulative}")
            lines.append(f"{full}_sum{_labels_text(labels)} {hist['sum']}")
            lines.append(f"{full}_count{_labels_text(labels)} {hist['count']}")
    return "\n".join(lines) + ("\n" if lines else "")
