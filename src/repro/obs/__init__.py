"""Live-overlay observability: typed metrics, wave tracing, snapshots.

The paper evaluates MRNet by timing waves of packets through the tree
(Figures 6-9); this package gives the *live* data plane the same
visibility the simulator has had via
:class:`~repro.sim.trace.SimTrace`:

* :mod:`repro.obs.metrics` — a typed metrics registry (counters,
  gauges, fixed-bucket latency histograms) with per-stream and
  per-filter labels, replacing the ad-hoc ``dict`` counters that grew
  across the transport, core and failure layers.  Exports as plain
  JSON-able dicts and as Prometheus text.
* :mod:`repro.obs.tracing` — a low-overhead span recorder hooked into
  the event loop, packet buffers, stream managers and filters.  Spans
  cover the Figure 3 internal-process stages (``recv`` → ``demux`` →
  ``sync_wait`` → ``filter`` → ``rebatch`` → ``send``) and export as
  Chrome/Perfetto trace JSON exactly like ``SimTrace.to_chrome_trace``,
  so simulated and live runs are visually comparable.
* :mod:`repro.obs.snapshot` — the ``STATS_SNAPSHOT`` pull path: the
  front-end broadcasts a stats request down the control stream and
  internal nodes reply with their serialized registries, batched back
  up the tree through the same packet buffers that carry tool data.

See ``docs/observability.md`` for the metrics catalog, the tracing
quickstart and the wire protocol.
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    StatsView,
    prometheus_text,
)
from .snapshot import (
    STATS_SCHEMA,
    dumps_snapshot,
    loads_snapshot,
)
from .tracing import (
    STAGES,
    TraceRecorder,
    to_chrome_trace,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "StatsView",
    "DEFAULT_LATENCY_BUCKETS",
    "prometheus_text",
    "TraceRecorder",
    "STAGES",
    "to_chrome_trace",
    "STATS_SCHEMA",
    "dumps_snapshot",
    "loads_snapshot",
]
