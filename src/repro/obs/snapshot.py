"""Serialization for the ``STATS_SNAPSHOT`` pull path.

The front-end gathers live metrics by broadcasting a
``TAG_STATS_REQUEST`` control packet down the tree; every internal
node answers with a ``TAG_STATS_REPLY`` whose string payload is the
JSON produced here.  Replies ride the ordinary upstream control path
(each hop relays unknown upstream control toward the root), so the
gather dogfoods the same packet buffers and links that carry tool
data.

The payload is deliberately tiny and versioned:

.. code-block:: json

    {
      "schema": "mrnet.stats/3",
      "node": "3:leaf-1",
      "rank": 3,
      "metrics": {"counters": {...}, "gauges": {...}, "histograms": {...}}
    }

``metrics`` is exactly :meth:`repro.obs.metrics.MetricsRegistry.snapshot`
— the wire format *is* the in-memory snapshot, so no translation layer
exists to drift.
"""

from __future__ import annotations

import json
from typing import Mapping, Optional

__all__ = ["STATS_SCHEMA", "dumps_snapshot", "loads_snapshot"]

#: Version marker carried in every STATS_REPLY payload.  Bump the
#: suffix when the snapshot shape changes incompatibly; readers reject
#: unknown schemas rather than mis-parse them.  ``/2`` added the
#: chunked-pipeline instruments (``chunks_in_flight``, ``chunk_bytes``,
#: ``chunk_waves_aborted``, ``shm_frames_zero_copy``); ``/3`` adds the
#: elastic-membership and crash-consistency counters
#: (``waves_recovered``, ``chunks_retransmitted``, ``members_joined``,
#: ``members_left``, ``checkpoint_bytes``).  Both bumps are additive,
#: so older payloads still load.
STATS_SCHEMA = "mrnet.stats/3"

#: Schemas this reader accepts: the current one plus older versions
#: whose shape is a strict subset of it.  ``/1`` acceptance (deprecated
#: in PR 4) was dropped one release later, as promised.
_ACCEPTED_SCHEMAS = ("mrnet.stats/2", "mrnet.stats/3")


def dumps_snapshot(node: str, rank: int, metrics: Mapping) -> str:
    """Encode one node's registry snapshot as a STATS_REPLY payload."""
    return json.dumps(
        {
            "schema": STATS_SCHEMA,
            "node": node,
            "rank": rank,
            "metrics": metrics,
        },
        separators=(",", ":"),
    )


def loads_snapshot(payload: str) -> Optional[dict]:
    """Decode a STATS_REPLY payload.

    Returns ``None`` (rather than raising) for payloads that are not
    valid JSON or carry an unknown schema — a gather should tolerate a
    mixed-version tree by skipping what it cannot read.
    """
    try:
        doc = json.loads(payload)
    except (ValueError, TypeError):
        return None
    if not isinstance(doc, dict) or doc.get("schema") not in _ACCEPTED_SCHEMAS:
        return None
    if "node" not in doc or "metrics" not in doc:
        return None
    return doc
