"""Low-overhead span recorder for the live data plane.

The paper's Figure 3 decomposes an MRNet internal process into layered
stages; :class:`TraceRecorder` gives each live process (front-end,
comm node, back-end) a ring of spans covering those stages:

========== ===============================================================
stage       meaning
========== ===============================================================
``recv``    a framed message arrived and its packets were decoded
``demux``   packets were routed to their stream / control handler
``sync_wait`` a wave waited in the synchronization filter (first packet
            in → wave released)
``filter``  the transform filter ran over a released wave
``rebatch`` aggregated packets were re-packed into the outgoing buffer
``send``    a flushed buffer was encoded and handed to the transport
========== ===============================================================

Design constraints, in priority order:

1. **Zero cost when off.**  Every hook site is guarded by
   ``if tracer is not None`` on an attribute that is ``None`` by
   default; the disabled overhead is one attribute load + ``is`` test,
   gated below 5% on the relay benchmark.
2. **Cheap when on.**  A span is one appended tuple; two
   ``perf_counter`` calls bound each stage.  The ring is bounded
   (``maxlen``) so long runs cannot exhaust memory.
3. **Perfetto-comparable with the simulator.**  Export is the same
   Chrome trace-event JSON shape as
   :meth:`repro.sim.trace.SimTrace.to_chrome_trace` — ``process_name``
   metadata events plus ``X`` complete events with microsecond
   ``ts``/``dur`` — so a simulated and a live run of the same tree load
   side by side in one Perfetto session.

Stages are split across two tracks per process so complete events
never overlap on one row: track 1 (``io``) holds ``recv``, ``demux``,
``rebatch`` and ``send``; track 2 (``waves``) holds ``sync_wait`` and
``filter``, whose spans routinely *contain* io-track activity (a wave
waits while later packets arrive).
"""

from __future__ import annotations

import json
import threading
from collections import deque
from time import monotonic
from typing import Deque, Dict, Iterable, List, Tuple

__all__ = ["STAGES", "STAGE_TRACKS", "Span", "TraceRecorder", "to_chrome_trace"]

#: The Figure 3 stage names, in pipeline order.  ``pipeline_fill`` is
#: the chunked-wave priming span: first fragment of a wave arriving to
#: first partial result leaving (hop-overlap visible as short fills).
STAGES: Tuple[str, ...] = (
    "recv", "demux", "sync_wait", "pipeline_fill", "filter", "rebatch", "send",
)

#: Chrome-trace ``tid`` per stage: io stages on track 1, wave-scoped
#: stages on track 2 (they overlap io activity by construction).
STAGE_TRACKS: Dict[str, int] = {
    "recv": 1,
    "demux": 1,
    "rebatch": 1,
    "send": 1,
    "sync_wait": 2,
    "filter": 2,
    "pipeline_fill": 3,
}

#: Human-readable track names shown in the Perfetto sidebar.
TRACK_NAMES: Dict[int, str] = {1: "io", 2: "waves", 3: "pipeline"}

# A recorded span is a plain tuple — cheapest thing to append:
#   (stage, t0, t1, stream_id, detail)
Span = Tuple[str, float, float, int, str]


class TraceRecorder:
    """A bounded ring of stage spans for one process.

    One recorder per traced process; hook sites call
    :meth:`span_start` / :meth:`span_end` (or the one-shot
    :meth:`span`) with a stage name from :data:`STAGES`.  The recorder
    is append-mostly and guarded by a lock only on the append, so it is
    safe to share between the I/O thread and the wave/filter path.

    Parameters
    ----------
    name:
        Process name shown in the trace (``"0:front-end"``).
    maxlen:
        Ring capacity; oldest spans are dropped beyond it.
    clock:
        Injectable time source (seconds).  Defaults to
        ``time.monotonic`` — the same clock :class:`NodeCore` runs on,
        so span timestamps from hooks that time with the core clock
        (wave sync-waits) and hooks that time with the recorder
        (io stages) share one time base.  Tests pass a fake.
    """

    __slots__ = ("name", "clock", "_spans", "_lock", "epoch")

    def __init__(
        self,
        name: str,
        maxlen: int = 100_000,
        clock=monotonic,
    ):
        self.name = name
        self.clock = clock
        self._spans: Deque[Span] = deque(maxlen=maxlen)
        self._lock = threading.Lock()
        #: Recorder creation time; exported ts values are relative to
        #: the earliest epoch across merged recorders.
        self.epoch = clock()

    def span_start(self) -> float:
        """Timestamp the start of a stage; pass the result to
        :meth:`span_end`."""
        return self.clock()

    def span_end(self, stage: str, t0: float, stream_id: int = 0, detail: str = "") -> None:
        """Record a stage span that started at *t0* and ends now."""
        t1 = self.clock()
        with self._lock:
            self._spans.append((stage, t0, t1, stream_id, detail))

    def span(
        self, stage: str, t0: float, t1: float, stream_id: int = 0, detail: str = ""
    ) -> None:
        """Record a fully-timed span (both endpoints already known)."""
        with self._lock:
            self._spans.append((stage, t0, t1, stream_id, detail))

    def spans(self) -> List[Span]:
        """A consistent copy of the recorded spans, oldest first."""
        with self._lock:
            return list(self._spans)

    def clear(self) -> None:
        """Drop all recorded spans (the recorder stays usable)."""
        with self._lock:
            self._spans.clear()

    def __len__(self) -> int:
        return len(self._spans)

    def __repr__(self) -> str:
        return f"TraceRecorder({self.name!r}, spans={len(self._spans)})"


def to_chrome_trace(recorders: Iterable[TraceRecorder]) -> str:
    """Merge per-process recorders into Chrome/Perfetto trace JSON.

    Mirrors :meth:`repro.sim.trace.SimTrace.to_chrome_trace`: a
    ``process_name`` metadata event per process, then one ``X``
    complete event per span with microsecond ``ts``/``dur``.  All
    timestamps are shifted so the earliest recorder epoch is ``ts=0``,
    which keeps sim and live traces aligned at the origin when loaded
    together.
    """
    recorders = list(recorders)
    origin = min((r.epoch for r in recorders), default=0.0)
    events: List[dict] = []
    pids: Dict[str, int] = {}

    def pid(name: str) -> int:
        return pids.setdefault(name, len(pids) + 1)

    for rec in sorted(recorders, key=lambda r: r.name):
        p = pid(rec.name)
        events.append(
            {"name": "process_name", "ph": "M", "pid": p, "args": {"name": rec.name}}
        )
        for tid, track in TRACK_NAMES.items():
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": p,
                    "tid": tid,
                    "args": {"name": track},
                }
            )
    us = 1e6
    for rec in recorders:
        p = pids[rec.name]
        for stage, t0, t1, stream_id, detail in rec.spans():
            args: Dict[str, object] = {"stream": stream_id}
            if detail:
                args["detail"] = detail
            events.append(
                {
                    "name": stage,
                    "ph": "X",
                    "pid": p,
                    "tid": STAGE_TRACKS.get(stage, 1),
                    "ts": (t0 - origin) * us,
                    "dur": max((t1 - t0) * us, 0.01),
                    "args": args,
                }
            )
    return json.dumps({"traceEvents": events})
