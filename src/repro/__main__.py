"""Command-line entry points: ``python -m repro <command>``.

Commands:

* ``figures [IDS...] [--out DIR]`` — regenerate paper figure data
  (all by default) and print the tables; optionally persist them.
* ``demo`` — run the Figure 2 float-maximum tool end to end.
* ``topology HOSTFILE [...]`` — the automatic configuration generator
  (same flags as ``python -m repro.topology.autogen``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence


def _format_table(title: str, header: Sequence[str], rows) -> str:
    cells = [[str(h) for h in header]] + [
        [f"{v:.3f}" if isinstance(v, float) else str(v) for v in row]
        for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(header))]
    lines = [title, "=" * len(title)]
    for i, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


_TITLES = {
    "fig4": "Figure 4: balanced vs unbalanced topologies (16 back-ends)",
    "fig7a": "Figure 7a: tool instantiation latency (seconds)",
    "fig7b": "Figure 7b: round-trip latency (seconds)",
    "fig7c": "Figure 7c: reduction throughput (ops/second)",
    "fig8a": "Figure 8a: Paradyn start-up latency (seconds)",
    "fig8b": "Figure 8b: start-up latency by activity, 512 daemons",
    "skew": "Clock-skew accuracy (paper: 10.5% vs 17.5%)",
}


def cmd_figures(args: argparse.Namespace) -> int:
    from . import evaluation

    available = {
        "fig4": evaluation.fig4_topologies,
        "fig7a": evaluation.fig7a_instantiation,
        "fig7b": evaluation.fig7b_roundtrip,
        "fig7c": evaluation.fig7c_throughput,
        "fig8a": evaluation.fig8a_startup,
        "fig8b": evaluation.fig8b_activities,
        "skew": evaluation.skew_accuracy,
    }
    wanted = args.ids or list(available) + ["fig9"]
    out_dir: Optional[Path] = Path(args.out) if args.out else None
    if out_dir:
        out_dir.mkdir(parents=True, exist_ok=True)

    def emit(name: str, title: str, header, rows) -> None:
        text = _format_table(title, header, rows)
        print(text + "\n")
        if out_dir:
            (out_dir / f"{name}.txt").write_text(text + "\n")

    for fig in wanted:
        if fig == "fig9":
            from .evaluation import fig9_frontend_load

            for m, (header, rows) in fig9_frontend_load().items():
                emit(
                    f"fig9-{m}metrics",
                    f"Figure 9 ({m} metrics): fraction of offered load",
                    header,
                    rows,
                )
        elif fig in available:
            header, rows = available[fig]()
            emit(fig, _TITLES[fig], header, rows)
        else:
            print(f"unknown figure id {fig!r}; choices: "
                  f"{', '.join(list(available) + ['fig9'])}", file=sys.stderr)
            return 2
    return 0


def cmd_demo(_args: argparse.Namespace) -> int:
    from . import Network, TFILTER_MAX
    from .topology import balanced_tree

    with Network(balanced_tree(4, 2)) as net:
        comm = net.get_broadcast_communicator()
        stream = net.new_stream(comm, transform=TFILTER_MAX)
        stream.send("%d", 17)
        for rank, backend in sorted(net.backends.items()):
            _, bstream = backend.recv(timeout=10)
            bstream.send("%lf", float(rank) * 1.5)
        (maximum,) = stream.recv_values(timeout=10)
    n = 16
    print(f"float-max over {n} back-ends through a 4x4 tree: {maximum}")
    assert maximum == (n - 1) * 1.5
    print("OK")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PyMRNet: reproduce the MRNet (SC'03) system and paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_fig = sub.add_parser("figures", help="regenerate paper figure data")
    p_fig.add_argument("ids", nargs="*", help="figure ids (default: all)")
    p_fig.add_argument("--out", help="directory to persist tables into")
    p_fig.set_defaults(func=cmd_figures)

    p_demo = sub.add_parser("demo", help="run the Figure 2 quickstart tool")
    p_demo.set_defaults(func=cmd_demo)

    p_topo = sub.add_parser(
        "topology", help="generate an MRNet configuration for a partition"
    )
    p_topo.add_argument("hostfile")
    p_topo.add_argument("--fanout", type=int, default=8)
    p_topo.add_argument("--backends", type=int, default=None)
    p_topo.add_argument("--flat", action="store_true")
    p_topo.add_argument(
        "--placement", choices=["dedicated", "colocated"], default="dedicated"
    )

    def cmd_topology(args: argparse.Namespace) -> int:
        from .topology.autogen import _main as autogen_main

        argv2 = [args.hostfile, "--fanout", str(args.fanout)]
        if args.backends is not None:
            argv2 += ["--backends", str(args.backends)]
        if args.flat:
            argv2.append("--flat")
        argv2 += ["--placement", args.placement]
        return autogen_main(argv2)

    p_topo.set_defaults(func=cmd_topology)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
