"""A miniature Performance Consultant over MRNet subset streams.

"The context for our work is Paradyn, a parallel performance tool
supporting automated application performance problem searches" (§1).
Paradyn's Performance Consultant searches a hypothesis space — *is the
program CPU-bound?  where?* — refining along the resource hierarchy.
This module implements the machine-axis refinement the way an
MRNet-based consultant would: instead of interrogating every daemon
point-to-point, it tests *groups* of daemons with one aggregated
stream per group (max-reduction over the group's metric rates) and
recursively bisects only groups that test positive.

For *k* culprits among *n* daemons this needs ``O(k · log n)``
aggregate queries instead of ``n`` direct ones — the same
serialization argument as the rest of the paper, applied to the
search itself.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from ..filters.registry import TFILTER_MAX
from .daemon import TAGS, ParadynDaemon

__all__ = ["SearchResult", "PerformanceConsultant"]

_RECV_TIMEOUT = 30.0


@dataclass
class SearchResult:
    """Outcome of one culprit search."""

    metric: str
    threshold: float
    culprits: List[int] = field(default_factory=list)
    #: Aggregate stream queries issued (the scalability measure).
    queries: int = 0
    #: (ranks tested, group max) per query, in search order.
    trace: List[Tuple[Tuple[int, ...], float]] = field(default_factory=list)


class PerformanceConsultant:
    """Hypothesis refinement over the machine axis via subset streams."""

    def __init__(self, frontend):
        self.frontend = frontend
        self.network = frontend.network

    def _group_max(
        self, daemons: Sequence[ParadynDaemon], ranks: Sequence[int], metric: str
    ) -> float:
        """One aggregate query: the max metric rate within *ranks*."""
        comm = self.network.new_communicator(ranks)
        with self.network.new_stream(comm, transform=TFILTER_MAX) as stream:
            stream.send("%s", metric, tag=TAGS.REPORT_RATE)
            packet = self.frontend._recv_serviced(stream, daemons)
            (rate,) = packet.unpack()
        return rate

    def find_culprits(
        self,
        daemons: Sequence[ParadynDaemon],
        metric: str,
        threshold: float,
    ) -> SearchResult:
        """Find every daemon whose *metric* rate exceeds *threshold*.

        Bisects the rank space: a group whose max is under the
        threshold is discarded whole; singleton groups over the
        threshold are culprits.
        """
        result = SearchResult(metric, threshold)
        all_ranks = tuple(sorted(d.rank for d in daemons))

        def refine(ranks: Tuple[int, ...]) -> None:
            group_max = self._group_max(daemons, ranks, metric)
            result.queries += 1
            result.trace.append((ranks, group_max))
            if group_max <= threshold:
                return
            if len(ranks) == 1:
                result.culprits.append(ranks[0])
                return
            mid = len(ranks) // 2
            refine(ranks[:mid])
            refine(ranks[mid:])

        refine(all_ranks)
        result.culprits.sort()
        return result

    def direct_scan(
        self,
        daemons: Sequence[ParadynDaemon],
        metric: str,
        threshold: float,
    ) -> SearchResult:
        """The flat baseline: one query per daemon."""
        result = SearchResult(metric, threshold)
        for d in sorted(daemons, key=lambda d: d.rank):
            rate = self._group_max(daemons, [d.rank], metric)
            result.queries += 1
            result.trace.append(((d.rank,), rate))
            if rate > threshold:
                result.culprits.append(d.rank)
        return result

    def search_hypotheses(
        self,
        daemons: Sequence[ParadynDaemon],
        hypotheses: Dict[str, float],
    ) -> Dict[str, SearchResult]:
        """Paradyn's two-axis refinement: *why* then *where*.

        ``hypotheses`` maps metric name → threshold (e.g.
        ``{"sync_wait": 0.2, "io_wait": 0.3}`` — the SyncBound /
        IOBound hypotheses).  Each metric is first tested with a single
        whole-machine aggregate query; only metrics whose global max
        exceeds their threshold are refined along the machine axis.
        Returns one :class:`SearchResult` per metric (culprits empty
        for hypotheses that tested false — their single root query is
        still recorded).
        """
        out: Dict[str, SearchResult] = {}
        all_ranks = tuple(sorted(d.rank for d in daemons))
        for metric, threshold in hypotheses.items():
            global_max = self._group_max(daemons, all_ranks, metric)
            if global_max <= threshold:
                result = SearchResult(metric, threshold)
                result.queries = 1
                result.trace.append((all_ranks, global_max))
                out[metric] = result
            else:
                # The root query repeats inside find_culprits; accept
                # the one redundant probe to keep the trace uniform.
                out[metric] = self.find_culprits(daemons, metric, threshold)
        return out
