"""A miniature Metric Definition Language (MDL) — §3.1.

"metric definitions describing how to instrument processes to collect
metric performance data are provided to the front end in a
configuration file written in the Paradyn Metric Definition Language.
The front-end uses simple broadcast operations to deliver the metric
definitions to all tool back-ends."

This is a deliberately small subset of MDL [Hollingsworth et al.,
PACT'97]: enough structure for realistic broadcast payloads and for
daemons to answer "which metrics do I support".  Grammar::

   metric <name> {
       units  <string> ;
       style  EventCounter | SampledFunction ;
       aggregate sum | avg | min | max ;
       internal true | false ;        # optional, default false
   }

Example::

   metric cpu_time { units "seconds"; style EventCounter; aggregate sum; }
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List

__all__ = ["MetricDefinition", "MDLError", "parse_mdl", "serialize_mdl", "DEFAULT_METRICS"]

_STYLES = ("EventCounter", "SampledFunction")
_AGGREGATES = ("sum", "avg", "min", "max")


class MDLError(ValueError):
    """Raised for malformed MDL text."""


@dataclass(frozen=True)
class MetricDefinition:
    """One performance metric the tool can instrument for."""

    name: str
    units: str
    style: str = "EventCounter"
    aggregate: str = "sum"
    internal: bool = False

    def __post_init__(self):
        if not re.match(r"^[A-Za-z_][A-Za-z0-9_]*$", self.name):
            raise MDLError(f"invalid metric name {self.name!r}")
        if self.style not in _STYLES:
            raise MDLError(f"invalid style {self.style!r}")
        if self.aggregate not in _AGGREGATES:
            raise MDLError(f"invalid aggregate {self.aggregate!r}")


_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<comment>\#[^\n]*)
      | (?P<string>"[^"]*")
      | (?P<punct>[{};])
      | (?P<word>[A-Za-z_][A-Za-z0-9_]*)
    )
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            if text[pos:].strip():
                raise MDLError(f"unexpected character {text[pos]!r} at offset {pos}")
            break
        pos = m.end()
        if m.lastgroup != "comment":
            tokens.append(m.group(m.lastgroup))
    return tokens


def parse_mdl(text: str) -> List[MetricDefinition]:
    """Parse MDL text into metric definitions."""
    tokens = _tokenize(text)
    out: List[MetricDefinition] = []
    i = 0
    seen = set()
    while i < len(tokens):
        if tokens[i] != "metric":
            raise MDLError(f"expected 'metric', got {tokens[i]!r}")
        if i + 2 >= len(tokens) or tokens[i + 2] != "{":
            raise MDLError("expected 'metric <name> {'")
        name = tokens[i + 1]
        i += 3
        fields: Dict[str, str] = {}
        while i < len(tokens) and tokens[i] != "}":
            key = tokens[i]
            if i + 2 >= len(tokens) or tokens[i + 2] != ";":
                raise MDLError(f"expected '<key> <value> ;' in metric {name!r}")
            value = tokens[i + 1]
            fields[key] = value
            i += 3
        if i >= len(tokens):
            raise MDLError(f"unterminated metric block {name!r}")
        i += 1  # consume '}'
        if name in seen:
            raise MDLError(f"duplicate metric {name!r}")
        seen.add(name)
        unknown = set(fields) - {"units", "style", "aggregate", "internal"}
        if unknown:
            raise MDLError(f"unknown keys {sorted(unknown)} in metric {name!r}")
        if "units" not in fields:
            raise MDLError(f"metric {name!r} missing 'units'")
        out.append(
            MetricDefinition(
                name=name,
                units=fields["units"].strip('"'),
                style=fields.get("style", "EventCounter"),
                aggregate=fields.get("aggregate", "sum"),
                internal=fields.get("internal", "false") == "true",
            )
        )
    if not out:
        raise MDLError("no metric definitions found")
    return out


def serialize_mdl(metrics: List[MetricDefinition]) -> str:
    """Render definitions back to MDL text (round-trips via parse_mdl)."""
    blocks = []
    for m in metrics:
        lines = [
            f"metric {m.name} {{",
            f'    units "{m.units}" ;',
            f"    style {m.style} ;",
            f"    aggregate {m.aggregate} ;",
        ]
        if m.internal:
            lines.append("    internal true ;")
        lines.append("}")
        blocks.append("\n".join(lines))
    return "\n\n".join(blocks) + "\n"


def default_metrics(n: int = 8) -> List[MetricDefinition]:
    """The stock metric set a Paradyn front-end ships to daemons."""
    base = [
        MetricDefinition("cpu_time", "seconds", "EventCounter", "sum"),
        MetricDefinition("cpu_utilization", "fraction", "SampledFunction", "avg"),
        MetricDefinition("io_wait", "seconds", "EventCounter", "sum"),
        MetricDefinition("io_bytes", "bytes", "EventCounter", "sum"),
        MetricDefinition("msgs_sent", "operations", "EventCounter", "sum"),
        MetricDefinition("msg_bytes", "bytes", "EventCounter", "sum"),
        MetricDefinition("sync_wait", "seconds", "EventCounter", "sum"),
        MetricDefinition("procedure_calls", "operations", "EventCounter", "sum"),
        MetricDefinition("active_processes", "processes", "SampledFunction", "sum"),
        MetricDefinition("pause_time", "seconds", "EventCounter", "sum", internal=True),
    ]
    if n <= len(base):
        return base[:n]
    extra = [
        MetricDefinition(f"user_metric_{i:02d}", "units", "SampledFunction", "avg")
        for i in range(n - len(base))
    ]
    return base + extra


DEFAULT_METRICS = default_metrics()
