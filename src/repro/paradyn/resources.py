"""Paradyn resources and the synthetic application model (§3.1).

"At tool start-up, the Paradyn back-ends examine application processes
to identify the relevant parts of the program, such as modules,
functions, and process ids.  Such items are called resources in
Paradyn terminology."

The paper's start-up experiments monitor smg2000, "a parallel linear
equation solver ... approximately 434 functions in a 290 KB
executable".  We cannot ship smg2000, so :func:`synthetic_executable`
generates a deterministic stand-in with the same shape: 434 functions
across a handful of modules, addresses spread over ≈ 290 KB of text,
and a static call graph.  Because every daemon "runs" the same
executable on homogeneous hosts, their code checksums agree and the
equivalence-class scheme collapses to one class, exactly as on Blue
Pacific.
"""

from __future__ import annotations

import hashlib
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = [
    "FunctionResource",
    "ModuleResource",
    "ExecutableImage",
    "ProcessResources",
    "synthetic_executable",
    "SMG2000_FUNCTIONS",
    "SMG2000_TEXT_BYTES",
]

SMG2000_FUNCTIONS = 434
SMG2000_TEXT_BYTES = 290 * 1024


@dataclass(frozen=True)
class FunctionResource:
    """One discovered function: name, entry address, size in bytes."""

    name: str
    address: int
    size: int
    module: str

    @property
    def resource_path(self) -> str:
        """Paradyn-style resource name, e.g. ``/Code/solve.c/relax_42``."""
        return f"/Code/{self.module}/{self.name}"


@dataclass(frozen=True)
class ModuleResource:
    """One module (source file / library) and its functions."""

    name: str
    functions: Tuple[FunctionResource, ...]

    @property
    def resource_path(self) -> str:
        return f"/Code/{self.name}"


@dataclass
class ExecutableImage:
    """Everything a daemon learns by parsing the executable."""

    name: str
    modules: Tuple[ModuleResource, ...]
    call_graph: Dict[str, Tuple[str, ...]] = field(default_factory=dict)

    @property
    def functions(self) -> List[FunctionResource]:
        return [f for m in self.modules for f in m.functions]

    @property
    def text_bytes(self) -> int:
        return sum(f.size for f in self.functions)

    def code_checksum(self) -> int:
        """Order-independent checksum over function names+addresses.

        Daemons exchange this (not the full data) so the front-end can
        partition them into equivalence classes (§3.1).  Returned as a
        uint64 so it fits a ``%uld`` packet field.
        """
        h = hashlib.sha256()
        for f in sorted(self.functions, key=lambda f: (f.module, f.name)):
            h.update(f.name.encode())
            h.update(struct.pack(">QI", f.address, f.size))
            h.update(f.module.encode())
        return int.from_bytes(h.digest()[:8], "big")

    def callgraph_checksum(self) -> int:
        """Checksum over the static call graph."""
        h = hashlib.sha256()
        for caller in sorted(self.call_graph):
            h.update(caller.encode())
            for callee in self.call_graph[caller]:
                h.update(b">")
                h.update(callee.encode())
        return int.from_bytes(h.digest()[:8], "big")


@dataclass
class ProcessResources:
    """Per-process resources a daemon reports (host, pid, args, ...).

    Unlike code resources these differ across daemons ("data like
    process identifiers and host names are likely to be different"),
    so Paradyn ships them via parallel concatenation rather than
    equivalence classes.
    """

    host: str
    pid: int
    rank: int
    command_line: str
    created_by_daemon: bool = True

    def machine_resource_paths(self) -> List[str]:
        return [
            f"/Machine/{self.host}",
            f"/Machine/{self.host}/{self.pid}",
            f"/Machine/{self.host}/{self.pid}/thread_0",
        ]

    def encode_report(self) -> str:
        """Flatten to one string for a concatenation stream."""
        created = 1 if self.created_by_daemon else 0
        return f"{self.rank}|{self.host}|{self.pid}|{self.command_line}|{created}"

    @classmethod
    def decode_report(cls, text: str) -> "ProcessResources":
        rank, host, pid, cmd, created = text.split("|")
        return cls(
            host=host,
            pid=int(pid),
            rank=int(rank),
            command_line=cmd,
            created_by_daemon=created == "1",
        )


def synthetic_executable(
    name: str = "smg2000",
    n_functions: int = SMG2000_FUNCTIONS,
    text_bytes: int = SMG2000_TEXT_BYTES,
    n_modules: int = 12,
    variant: int = 0,
) -> ExecutableImage:
    """Build the deterministic smg2000 stand-in.

    ``variant`` perturbs function addresses, producing a *different*
    checksum while keeping the same shape — used to test the
    equivalence-class machinery with heterogeneous daemon populations
    (e.g. two executables in one job).
    """
    if n_functions < 1 or n_modules < 1:
        raise ValueError("need at least one function and one module")
    n_modules = min(n_modules, n_functions)
    fn_size = max(16, text_bytes // n_functions)
    base = 0x10000000 + variant * 0x1000
    modules: List[ModuleResource] = []
    call_graph: Dict[str, Tuple[str, ...]] = {}
    names: List[str] = []
    idx = 0
    for m in range(n_modules):
        count = n_functions // n_modules + (1 if m < n_functions % n_modules else 0)
        funcs = []
        mod_name = f"{name}_mod{m:02d}.c"
        for _ in range(count):
            fname = f"fn_{idx:04d}"
            funcs.append(
                FunctionResource(
                    name=fname,
                    address=base + idx * fn_size,
                    size=fn_size,
                    module=mod_name,
                )
            )
            names.append(fname)
            idx += 1
        modules.append(ModuleResource(mod_name, tuple(funcs)))
    # Deterministic sparse call graph: fn_i calls fn_{2i+1}, fn_{3i+2}.
    for i, caller in enumerate(names):
        callees = []
        for j in (2 * i + 1, 3 * i + 2):
            if j < len(names):
                callees.append(names[j])
        if callees:
            call_graph[caller] = tuple(callees)
    return ExecutableImage(name=name, modules=tuple(modules), call_graph=call_graph)
