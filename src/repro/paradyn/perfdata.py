"""Time-aligned performance data aggregation (paper §3.2, Figures 5–6).

Paradyn represents a performance sample as ``{v, i}`` — a value over a
time interval — because its back-ends sample asynchronously, so
position-wise ("ordinal") aggregation would combine samples from
different portions of the run (Figure 5).  The Performance Data
Aggregation filter instead aligns samples to a common *output sample
interval* before reducing (Figure 6):

1. An arriving sample joins its input connection's queue.
2. If it overlaps the current output interval, the overlapping
   fraction of its value is attributed to that input's aligned sample
   and the remainder stays queued with its interval start advanced —
   "because the sample's value is attributed proportionally ... there
   is no lost performance data due to round-off issues."  That
   conservation claim is tested property-based in
   ``tests/paradyn/test_perfdata.py``.
3. When every input has covered the whole output interval, the
   aligned values are reduced into one output sample over exactly
   that interval, and the interval advances.

:class:`TimeAlignedAggregator` implements the algorithm for one node;
:class:`PerformanceDataFilter` wraps it as an MRNet transformation
filter (positional inputs within Wait-For-All waves, one queue per
child); :class:`OrdinalAggregator` is the baseline Figure 5a scheme
used by the alignment ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from ..core.formats import parse_format
from ..core.packet import Packet
from ..filters.base import FilterError, FilterState, FunctionFilter

__all__ = [
    "DataSample",
    "TimeAlignedAggregator",
    "OrdinalAggregator",
    "PerformanceDataFilter",
    "SAMPLE_FMT",
]

#: value, interval start, interval end
SAMPLE_FMT = parse_format("%lf %lf %lf")

_REDUCERS: dict = {
    "sum": sum,
    "avg": lambda vals: sum(vals) / len(vals),
    "min": min,
    "max": max,
}


@dataclass(frozen=True)
class DataSample:
    """One performance data sample: a value over [start, end)."""

    value: float
    start: float
    end: float

    def __post_init__(self):
        if self.end <= self.start:
            raise ValueError(
                f"sample interval [{self.start}, {self.end}) is empty"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def rate(self) -> float:
        """Value per second over the sample's interval."""
        return self.value / self.duration

    def split_at(self, t: float) -> tuple["DataSample", "DataSample"]:
        """Split proportionally at *t* (start < t < end); conserves value."""
        if not self.start < t < self.end:
            raise ValueError(f"split point {t} outside ({self.start}, {self.end})")
        frac = (t - self.start) / self.duration
        left = DataSample(self.value * frac, self.start, t)
        right = DataSample(self.value - left.value, t, self.end)
        return left, right

    def to_packet(self, stream_id: int, tag: int, origin_rank: int = 0) -> Packet:
        return Packet(
            stream_id, tag, SAMPLE_FMT, (self.value, self.start, self.end),
            origin_rank=origin_rank,
        )

    @classmethod
    def from_packet(cls, packet: Packet) -> "DataSample":
        if packet.fmt != SAMPLE_FMT:
            raise FilterError(
                f"not a performance sample packet: {packet.fmt.canonical!r}"
            )
        value, start, end = packet.unpack()
        return cls(value, start, end)


class _InputLane:
    """One input connection's queue + aligned contribution."""

    __slots__ = ("queue", "acc", "covered_until", "last_end")

    def __init__(self, t0: float):
        self.queue: List[DataSample] = []
        self.acc = 0.0
        self.covered_until = t0
        self.last_end = float("-inf")


class TimeAlignedAggregator:
    """Figure 6's algorithm for one node with *n_inputs* connections.

    Parameters
    ----------
    n_inputs:
        Number of input connections (children of the node).
    interval:
        Output sample interval length in seconds.
    op:
        Reduction applied to the aligned values: ``"sum"``, ``"avg"``,
        ``"min"`` or ``"max"``.
    start_time:
        Start of the first output interval.
    """

    def __init__(
        self,
        n_inputs: int,
        interval: float,
        op: str = "sum",
        start_time: float = 0.0,
    ):
        if n_inputs < 1:
            raise ValueError("need at least one input connection")
        if interval <= 0:
            raise ValueError("interval must be positive")
        if op not in _REDUCERS:
            raise ValueError(f"unknown reduction {op!r}")
        self.n_inputs = n_inputs
        self.interval = interval
        self.op = op
        self._reduce: Callable[[Sequence[float]], float] = _REDUCERS[op]
        self.t0 = start_time
        self.t1 = start_time + interval
        self._lanes = [_InputLane(start_time) for _ in range(n_inputs)]
        self.samples_in = 0
        self.samples_out = 0

    # -- feeding ------------------------------------------------------------

    def add_sample(self, input_idx: int, sample: DataSample) -> List[DataSample]:
        """Offer one sample on one input; return any completed outputs."""
        if not 0 <= input_idx < self.n_inputs:
            raise IndexError(f"input {input_idx} out of range")
        lane = self._lanes[input_idx]
        if sample.start < lane.last_end:
            raise ValueError(
                f"input {input_idx} samples must be non-overlapping and ordered"
            )
        lane.last_end = sample.end
        if sample.end <= self.t0:
            # Entirely before the current output interval (late joiner
            # history): contributes to nothing current; drop it.
            self.samples_in += 1
            return []
        lane.queue.append(sample)
        self.samples_in += 1
        return self._advance()

    # -- the Figure 6 loop -----------------------------------------------------

    def _drain_lane(self, lane: _InputLane) -> None:
        """Attribute queued samples to the current output interval."""
        while lane.queue and lane.covered_until < self.t1:
            s = lane.queue[0]
            if s.start > lane.covered_until:
                # Gap in this input's data: cannot certify coverage yet.
                return
            if s.end <= self.t1:
                lane.acc += s.value
                lane.covered_until = max(lane.covered_until, s.end)
                lane.queue.pop(0)
            else:
                head, tail = s.split_at(self.t1)
                lane.acc += head.value
                lane.covered_until = self.t1
                lane.queue[0] = tail

    def _advance(self) -> List[DataSample]:
        out: List[DataSample] = []
        while True:
            for lane in self._lanes:
                self._drain_lane(lane)
            if not all(lane.covered_until >= self.t1 for lane in self._lanes):
                return out
            value = self._reduce([lane.acc for lane in self._lanes])
            out.append(DataSample(value, self.t0, self.t1))
            self.samples_out += 1
            self.t0 = self.t1
            self.t1 = self.t0 + self.interval
            for lane in self._lanes:
                lane.acc = 0.0

    # -- introspection ------------------------------------------------------

    @property
    def pending_value(self) -> float:
        """Value attributed or queued but not yet emitted (conservation)."""
        total = 0.0
        for lane in self._lanes:
            total += lane.acc
            total += sum(s.value for s in lane.queue)
        return total

    @property
    def output_interval(self) -> tuple[float, float]:
        return (self.t0, self.t1)


class OrdinalAggregator:
    """The Figure 5a baseline: combine the i-th sample of every input.

    The output sample's value reduces the i-th values; its interval is
    the *envelope* of the contributing intervals, which — under clock
    or rate skew — mixes data from different parts of the run.  The
    alignment ablation (benchmarks/test_ablation_alignment.py)
    quantifies the resulting error against the time-aligned scheme.
    """

    def __init__(self, n_inputs: int, op: str = "sum"):
        if n_inputs < 1:
            raise ValueError("need at least one input connection")
        if op not in _REDUCERS:
            raise ValueError(f"unknown reduction {op!r}")
        self.n_inputs = n_inputs
        self._reduce = _REDUCERS[op]
        self._queues: List[List[DataSample]] = [[] for _ in range(n_inputs)]

    def add_sample(self, input_idx: int, sample: DataSample) -> List[DataSample]:
        self._queues[input_idx].append(sample)
        out: List[DataSample] = []
        while all(self._queues):
            wave = [q.pop(0) for q in self._queues]
            out.append(
                DataSample(
                    self._reduce([s.value for s in wave]),
                    min(s.start for s in wave),
                    max(s.end for s in wave),
                )
            )
        return out


class PerformanceDataFilter(FunctionFilter):
    """Paradyn's custom Performance Data Aggregation filter for MRNet.

    Bind it to a stream with Wait-For-All synchronization: each wave
    carries one ``"%lf %lf %lf"`` sample per child, positionally, and
    the filter feeds them into a per-stream
    :class:`TimeAlignedAggregator` (fan-in learned from the
    ``n_children`` hint the stream manager leaves in the filter
    state).  Completed output samples flow upstream as packets over
    the same format, so the filter composes across tree levels.
    """

    def __init__(
        self,
        interval: float = 0.2,
        op: str = "sum",
        start_time: float = 0.0,
        name: Optional[str] = None,
    ):
        super().__init__(self._run, name or f"perfdata-{op}", None)
        self.interval = interval
        self.op = op
        self.start_time = start_time

    def _run(self, packets: Sequence[Packet], state: FilterState) -> List[Packet]:
        if not packets:
            return []
        agg: Optional[TimeAlignedAggregator] = state.get("aggregator")
        if agg is None:
            n = state.get("n_children") or len(packets)
            agg = TimeAlignedAggregator(
                max(n, len(packets)), self.interval, self.op, self.start_time
            )
            state["aggregator"] = agg
        first = packets[0]
        outputs: List[DataSample] = []
        for idx, packet in enumerate(packets):
            if idx >= agg.n_inputs:
                raise FilterError(
                    f"wave has {len(packets)} packets but aggregator expects "
                    f"{agg.n_inputs} inputs"
                )
            outputs.extend(agg.add_sample(idx, DataSample.from_packet(packet)))
        return [
            s.to_packet(first.stream_id, first.tag, first.origin_rank)
            for s in outputs
        ]
