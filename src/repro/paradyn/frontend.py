"""Paradyn front-end over MRNet — the live §3 integration.

:class:`ParadynFrontEnd` drives the complete start-up protocol of
§3.1 over a real (threaded) MRNet network, using the same machinery
the paper describes: a concatenation stream for per-daemon data, the
custom equivalence-class filter for redundant data, representative
point-to-point requests, and a final done-reduction.  It then supports
the §3.2 monitoring phase: enabling a metric creates a stream bound to
the custom Performance Data Aggregation filter, so global samples
arrive at the front-end already aligned and reduced.

Because back-ends (and therefore daemons) are passive, protocol
methods take the daemon list and interleave servicing with receives —
the same structure a test harness on one host would have.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.network import Network
from ..filters.registry import SFILTER_DONTWAIT, TFILTER_CONCAT, TFILTER_SUM
from .daemon import TAGS, ParadynDaemon
from .eqclass import EquivalenceClasses, EquivalenceClassFilter
from .mdl import MetricDefinition, serialize_mdl
from .perfdata import DataSample, PerformanceDataFilter
from .resources import ProcessResources
from .timehist import TimeHistogram

__all__ = ["ParadynFrontEnd", "StartupReport"]

_RECV_TIMEOUT = 30.0


@dataclass
class StartupReport:
    """Everything the front-end learned during start-up."""

    daemons: Dict[int, ProcessResources] = field(default_factory=dict)
    metric_classes: Optional[EquivalenceClasses] = None
    metric_names: List[str] = field(default_factory=list)
    clock_skews: Dict[int, float] = field(default_factory=dict)
    code_classes: Optional[EquivalenceClasses] = None
    code_resources: Dict[int, List[str]] = field(default_factory=dict)
    machine_resources: List[str] = field(default_factory=list)
    callgraph_classes: Optional[EquivalenceClasses] = None
    callgraph_edges: Dict[int, List[str]] = field(default_factory=dict)
    done_count: int = 0


class ParadynFrontEnd:
    """The Paradyn front-end bound to an MRNet network."""

    def __init__(self, network: Network):
        self.network = network
        self.comm = network.get_broadcast_communicator()
        self._eqclass_id = network.registry.register_transform(
            EquivalenceClassFilter()
        )
        self._perf_filter_ids: Dict[str, int] = {}
        self._metric_streams: Dict[str, object] = {}
        self._histories: Dict[str, TimeHistogram] = {}
        self.report = StartupReport()

    # -- helpers -----------------------------------------------------------

    def _service_all(self, daemons: Sequence[ParadynDaemon]) -> None:
        for d in daemons:
            d.service()

    def _recv_serviced(self, stream, daemons: Sequence[ParadynDaemon]):
        """Receive one packet, servicing daemons while waiting.

        The comm-node threads move traffic asynchronously, so a
        request may still be in flight on the first poll; keep
        alternating "let daemons answer" with "pump the front-end"
        until the aggregated reply lands.
        """
        import time as _time

        deadline = _time.monotonic() + _RECV_TIMEOUT
        while _time.monotonic() < deadline:
            self._service_all(daemons)
            packet = stream.try_recv()
            if packet is not None:
                return packet
            _time.sleep(0.001)
        raise TimeoutError(
            f"no reply on stream {stream.stream_id} after {_RECV_TIMEOUT}s"
        )

    def _gather_concat(self, stream, daemons, tag) -> List[str]:
        """Broadcast a request and collect the concatenated replies."""
        stream.send("%d", 0, tag=tag)
        (items,) = self._recv_serviced(stream, daemons).unpack()
        return list(items)

    # -- §3.1 start-up protocol ---------------------------------------------

    def run_startup(
        self,
        daemons: Sequence[ParadynDaemon],
        metrics: Sequence[MetricDefinition],
    ) -> StartupReport:
        """Run the whole start-up protocol; returns the filled report."""
        self.report_self(daemons)
        self.report_metrics(daemons, metrics)
        self.find_clock_skew(daemons)
        self.report_process(daemons)
        self.report_machine_resources(daemons)
        self.report_code(daemons)
        self.report_callgraph(daemons)
        self.report_done(daemons)
        return self.report

    def report_self(self, daemons: Sequence[ParadynDaemon]) -> None:
        """Daemons report basic characteristics via concatenation."""
        with self.network.new_stream(self.comm, transform=TFILTER_CONCAT) as s:
            for text in self._gather_concat(s, daemons, TAGS.REPORT_SELF):
                proc = ProcessResources.decode_report(text)
                self.report.daemons[proc.rank] = proc

    def report_metrics(
        self, daemons: Sequence[ParadynDaemon], metrics: Sequence[MetricDefinition]
    ) -> None:
        """Broadcast MDL; collect supported metrics via equivalence classes."""
        with self.network.new_stream(self.comm, transform=self._eqclass_id) as s:
            s.send("%s", serialize_mdl(list(metrics)), tag=TAGS.MDL_BROADCAST)
            classes = EquivalenceClasses.from_packet(
                self._recv_serviced(s, daemons)
            )
        self.report.metric_classes = classes
        # Full data only from each class representative (§3.1).
        names: List[str] = []
        for rep in classes.representatives():
            names.extend(self._request_full(daemons, rep, TAGS.METRIC_FULL_REQ))
        self.report.metric_names = names

    def find_clock_skew(self, daemons: Sequence[ParadynDaemon]) -> None:
        """Collect per-daemon clock offsets (accumulation phase of §3.1).

        The live tree runs in one address space, so the interesting
        jitter physics lives in the simulation
        (:mod:`repro.paradyn.clockskew`); here the front-end runs the
        protocol shape: one broadcast, per-daemon cumulative values
        concatenated upstream.
        """
        with self.network.new_stream(self.comm, sync=SFILTER_DONTWAIT) as s:
            s.send("%d", 0, tag=TAGS.SKEW_COLLECT)
            for _ in range(len(daemons)):
                offset, rank = self._recv_serviced(s, daemons).unpack()
                self.report.clock_skews[rank] = offset

    def report_process(self, daemons: Sequence[ParadynDaemon]) -> None:
        with self.network.new_stream(self.comm, transform=TFILTER_CONCAT) as s:
            for text in self._gather_concat(s, daemons, TAGS.PROCESS_REPORT):
                proc = ProcessResources.decode_report(text)
                self.report.daemons[proc.rank] = proc

    def report_machine_resources(self, daemons: Sequence[ParadynDaemon]) -> None:
        with self.network.new_stream(self.comm, transform=TFILTER_CONCAT) as s:
            reports = self._gather_concat(s, daemons, TAGS.MACHINE_RESOURCES)
        for r in reports:
            self.report.machine_resources.extend(r.split(";"))

    def report_code(self, daemons: Sequence[ParadynDaemon]) -> None:
        """Code checksums → equivalence classes → representative data."""
        with self.network.new_stream(self.comm, transform=self._eqclass_id) as s:
            s.send("%d", 0, tag=TAGS.CODE_CKSUM)
            classes = EquivalenceClasses.from_packet(
                self._recv_serviced(s, daemons)
            )
        self.report.code_classes = classes
        for rep in classes.representatives():
            self.report.code_resources[rep] = self._request_full(
                daemons, rep, TAGS.CODE_FULL_REQ
            )

    def report_callgraph(self, daemons: Sequence[ParadynDaemon]) -> None:
        with self.network.new_stream(self.comm, transform=self._eqclass_id) as s:
            s.send("%d", 0, tag=TAGS.CALLGRAPH_CKSUM)
            classes = EquivalenceClasses.from_packet(
                self._recv_serviced(s, daemons)
            )
        self.report.callgraph_classes = classes
        for rep in classes.representatives():
            self.report.callgraph_edges[rep] = self._request_full(
                daemons, rep, TAGS.CALLGRAPH_FULL_REQ
            )

    def report_done(self, daemons: Sequence[ParadynDaemon]) -> None:
        with self.network.new_stream(self.comm, transform=TFILTER_SUM) as s:
            s.send("%d", 0, tag=TAGS.REPORT_DONE)
            (count,) = self._recv_serviced(s, daemons).unpack()
        self.report.done_count = count

    def _request_full(
        self, daemons: Sequence[ParadynDaemon], rank: int, tag: int
    ) -> List[str]:
        """Point-to-point request to one representative daemon."""
        comm = self.network.new_communicator([rank])
        with self.network.new_stream(
            comm, sync=SFILTER_DONTWAIT
        ) as s:
            s.send("%ud", rank, tag=tag)
            (items,) = self._recv_serviced(s, daemons).unpack()
        return list(items)

    # -- §3.2 monitoring phase ---------------------------------------------

    def enable_metric(
        self,
        daemons: Sequence[ParadynDaemon],
        metric_name: str,
        interval: float = 0.2,
        op: str = "sum",
        start_time: float = 0.0,
    ):
        """Create the metric's aggregation stream and enable collection.

        Returns the front-end stream; aggregated global samples arrive
        on it as ``"%lf %lf %lf"`` packets.
        """
        fid = self._perf_filter_ids.get((metric_name, interval, op))
        if fid is None:
            fid = self.network.registry.register_transform(
                PerformanceDataFilter(interval, op, start_time,
                                      name=f"perfdata-{metric_name}")
            )
            self._perf_filter_ids[(metric_name, interval, op)] = fid
        stream = self.network.new_stream(self.comm, transform=fid)
        stream.send("%s", metric_name, tag=TAGS.ENABLE_METRIC)
        import time as _time

        deadline = _time.monotonic() + _RECV_TIMEOUT
        while not all(d.has_metric(metric_name) for d in daemons):
            if _time.monotonic() > deadline:
                raise TimeoutError(
                    f"enable_metric({metric_name!r}) did not reach all daemons"
                )
            self._service_all(daemons)
            _time.sleep(0.001)
        self._metric_streams[metric_name] = stream
        return stream

    def collect_samples(self, metric_name: str, count: int) -> List[DataSample]:
        """Receive *count* aggregated global samples for a metric.

        Each sample is also folded into the metric's
        :class:`~repro.paradyn.timehist.TimeHistogram` (Paradyn's
        bounded-memory history, see :meth:`history`).
        """
        stream = self._metric_streams[metric_name]
        hist = self._histories.setdefault(metric_name, TimeHistogram())
        out = []
        for _ in range(count):
            packet = stream.recv(timeout=_RECV_TIMEOUT)
            sample = DataSample.from_packet(packet)
            hist.add_sample(sample)
            out.append(sample)
        return out

    def history(self, metric_name: str) -> TimeHistogram:
        """The folding time histogram of everything collected so far."""
        return self._histories.setdefault(metric_name, TimeHistogram())
