"""Paradyn-over-MRNet: the paper's real-world tool integration (§3)."""

from .consultant import PerformanceConsultant, SearchResult
from .clockskew import SkewExperimentResult, measure_local_skew, run_skew_experiment
from .daemon import TAGS, ParadynDaemon
from .eqclass import EquivalenceClasses, EquivalenceClassFilter, eqclass_filter
from .frontend import ParadynFrontEnd, StartupReport
from .mdl import (
    DEFAULT_METRICS,
    MDLError,
    MetricDefinition,
    default_metrics,
    parse_mdl,
    serialize_mdl,
)
from .perfdata import (
    SAMPLE_FMT,
    DataSample,
    OrdinalAggregator,
    PerformanceDataFilter,
    TimeAlignedAggregator,
)
from .resources import (
    SMG2000_FUNCTIONS,
    SMG2000_TEXT_BYTES,
    ExecutableImage,
    FunctionResource,
    ModuleResource,
    ProcessResources,
    synthetic_executable,
)
from .timehist import TimeHistogram
from .startup import (
    ACTIVITIES,
    StartupActivity,
    StartupParams,
    StartupResult,
    simulate_startup,
)

__all__ = [
    "ParadynFrontEnd",
    "ParadynDaemon",
    "TAGS",
    "StartupReport",
    "EquivalenceClasses",
    "EquivalenceClassFilter",
    "eqclass_filter",
    "MetricDefinition",
    "MDLError",
    "parse_mdl",
    "serialize_mdl",
    "default_metrics",
    "DEFAULT_METRICS",
    "DataSample",
    "TimeAlignedAggregator",
    "OrdinalAggregator",
    "PerformanceDataFilter",
    "SAMPLE_FMT",
    "ExecutableImage",
    "FunctionResource",
    "ModuleResource",
    "ProcessResources",
    "synthetic_executable",
    "SMG2000_FUNCTIONS",
    "SMG2000_TEXT_BYTES",
    "measure_local_skew",
    "run_skew_experiment",
    "SkewExperimentResult",
    "StartupActivity",
    "StartupParams",
    "StartupResult",
    "ACTIVITIES",
    "simulate_startup",
    "PerformanceConsultant",
    "SearchResult",
    "TimeHistogram",
]
