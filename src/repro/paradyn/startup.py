"""Paradyn tool start-up model (paper §3.1, Figures 8a/8b).

Start-up latency decomposes into three cost classes per activity:

* **daemon-local work** — parsing the executable, computing checksums,
  creating processes: perfectly parallel across daemons, identical
  with and without MRNet (the paper's unshaded Figure 8b activities);
* **front-end per-daemon work** — registering each daemon's resources
  (process ids, machine resources, metric lists) in front-end data
  structures: inherently serial at the front-end, also present in
  both configurations — this is why the MRNet curves in Figure 8a
  still grow (nearly linearly) with daemon count;
* **per-daemon communication/RPC overhead** — without MRNet, every
  report is a serialized point-to-point exchange with the front-end
  (synchronous round-trips, select/dispatch per daemon); these costs
  vanish into the tree with MRNet, replaced by a handful of pipelined
  collective waves whose cost depends only on fan-out, not daemon
  count.  Past a few hundred daemons the overloaded front-end also
  pays a growing per-message penalty (backlog, buffering), modelled
  as the ``(1 + D/overload_scale)`` factor — the super-linear take-off
  of the "No MRNet" curve.

Per-activity constants are calibrated so the 512-daemon totals match
the paper's anchors: ≈ 70 s without MRNet, ≈ 20 s with an eight-way
balanced tree (the paper's "3.4 times faster"), with the benefit
growing with daemon count.  See EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from ..topology.spec import TopologySpec

__all__ = [
    "StartupActivity",
    "StartupParams",
    "ACTIVITIES",
    "StartupResult",
    "simulate_startup",
]


@dataclass(frozen=True)
class StartupActivity:
    """Cost model for one start-up activity.

    ``uses_mrnet`` marks the activities Figure 8b sets in bold (data
    aggregation or concatenation flows through the tree); for the
    others both configurations behave identically.
    """

    name: str
    #: Perfectly-parallel daemon-side work (seconds, constant).
    local: float
    #: Front-end CPU per daemon, paid in both configurations.
    fe_per_daemon: float
    #: Extra serialized per-daemon RPC/communication cost without MRNet.
    rpc_per_daemon: float
    #: Collective waves this activity needs through the tree (MRNet).
    waves: int
    uses_mrnet: bool = True


#: The §4.2.1 activity list, in protocol order.  Where two reporting
#: steps share a Figure 8b row they share a row here too.
ACTIVITIES: List[StartupActivity] = [
    StartupActivity("Report Self", 0.05, 1.0e-3, 4.0e-3, 2),
    StartupActivity("Report Metrics", 0.30, 2.0e-3, 6.0e-3, 5),
    StartupActivity("Find Clock Skew", 0.10, 0.5e-3, 24.0e-3, 20),
    StartupActivity("Parse Executable", 2.00, 0.0, 0.0, 0, uses_mrnet=False),
    StartupActivity("Report Process", 0.20, 6.0e-3, 8.0e-3, 6),
    StartupActivity("Report Machine Resources", 0.20, 7.0e-3, 11.0e-3, 8),
    StartupActivity("Report Code Eq Classes", 0.50, 5.0e-3, 4.0e-3, 3),
    StartupActivity("Report Code Resources", 0.80, 0.0, 0.0, 0, uses_mrnet=False),
    StartupActivity("Report Callgraph Eq Classes", 0.40, 6.0e-3, 5.0e-3, 4),
    StartupActivity("Report Callgraph", 0.60, 0.0, 0.0, 0, uses_mrnet=False),
    StartupActivity("Report Done", 0.02, 0.2e-3, 1.0e-3, 1),
]


@dataclass(frozen=True)
class StartupParams:
    """Global knobs of the start-up model."""

    #: Per-message gap inside tree processes (pipelined wave pacing).
    node_gap: float = 2.0e-3
    #: Daemon count at which the overloaded front-end's per-RPC cost
    #: has doubled (no-MRNet configuration only).
    overload_scale: float = 1024.0


DEFAULT_STARTUP = StartupParams()


@dataclass
class StartupResult:
    """Per-activity and total start-up latency for one configuration."""

    daemons: int
    configuration: str
    per_activity: Dict[str, float]

    @property
    def total(self) -> float:
        return sum(self.per_activity.values())


def simulate_startup(
    daemons: int,
    topology: Optional[TopologySpec] = None,
    params: StartupParams = DEFAULT_STARTUP,
    activities: List[StartupActivity] = ACTIVITIES,
) -> StartupResult:
    """Start-up latency for *daemons*, without (``topology=None``) or
    with MRNet over the given tree."""
    if daemons < 1:
        raise ValueError("need at least one daemon")
    if topology is not None and topology.num_backends != daemons:
        raise ValueError(
            f"topology has {topology.num_backends} back-ends, expected {daemons}"
        )
    per: Dict[str, float] = {}
    if topology is None:
        overload = 1.0 + daemons / params.overload_scale
        for a in activities:
            per[a.name] = (
                a.local
                + daemons * a.fe_per_daemon
                + daemons * a.rpc_per_daemon * overload
            )
        return StartupResult(daemons, "flat", per)
    # With MRNet: RPC serialization is replaced by pipelined waves whose
    # pacing depends on the busiest process's fan-out (plus its parent
    # link), as in sim.logp.pipelined_gap.
    busiest = 0
    for node in topology.nodes():
        msgs = len(node.children) + (
            1 if node is not topology.root and node.children else 0
        )
        busiest = max(busiest, msgs)
    wave_gap = busiest * params.node_gap
    for a in activities:
        comm = a.waves * wave_gap if a.uses_mrnet else 0.0
        per[a.name] = a.local + daemons * a.fe_per_daemon + comm
    label = f"{topology.max_fanout}-way"
    return StartupResult(daemons, label, per)
