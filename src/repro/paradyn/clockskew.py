"""Clock-skew detection (paper §3.1, evaluated in §4.2.1).

The MRNet-based scheme has two phases:

1. **Local phase** — "repeated broadcast/reduction pairs on a special
   stream reserved for finding 'local' clock skew between each process
   and the downstream processes to which it is directly connected":
   every tree parent measures its clock offset to each direct child
   with request/response exchanges, keeping the estimate from the
   exchange with the smallest round-trip time (least-jittered sample).
2. **Accumulation phase** — "Each daemon initializes its 'cumulative
   skew' value to zero, and passes it upstream ... When an MRNet
   internal process receives a cumulative skew value from one of its
   downstream connections, it adds its observed local clock skew value
   for that connection", so by induction the front-end holds its skew
   with every daemon.

The **direct baseline** (what tools do without MRNet) measures each
daemon straight from the front-end: 100 request/response trials,
keeping "the observed skew with the smallest absolute value" — the
paper's exact selection rule.

Why the tree wins: each local exchange crosses one lightly-loaded
neighbour link, while direct exchanges cross the whole fabric to a
front-end that is being hammered by every other daemon, so their
one-way latencies are more jittered and asymmetric.  The simulated
links (:mod:`repro.sim.clocks`) encode exactly that asymmetry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from ..sim.clocks import BLUE_PACIFIC_CLOCKS, ClockSimParams, JitteredLink, SkewedClock
from ..topology.spec import TopologyNode, TopologySpec

__all__ = [
    "measure_local_skew",
    "SkewExperimentResult",
    "run_skew_experiment",
]


def measure_local_skew(
    parent_clock: SkewedClock,
    child_clock: SkewedClock,
    link: JitteredLink,
    trials: int,
    base_time: float = 0.0,
    spacing: float = 0.01,
    select: str = "min_rtt",
) -> float:
    """Estimate ``child_offset - parent_offset`` over one link.

    Each trial: the parent timestamps a request, the child timestamps
    its receipt and replies, the parent timestamps the response.  The
    one-way latency is approximated as RTT/2 (the paper's direct
    scheme does the same), so the estimate is
    ``child_sample - (send_stamp + RTT/2)``.

    ``select`` picks the winning trial: ``"min_rtt"`` (tree scheme —
    least-queued exchange) or ``"min_abs"`` (the paper's direct-scheme
    rule: smallest absolute skew observed).
    """
    if trials < 1:
        raise ValueError("need at least one trial")
    best_key = None
    best_est = 0.0
    for i in range(trials):
        t_send = base_time + i * spacing
        fwd = link.forward_delay()
        child_sample = child_clock.read(t_send + fwd)
        ret = link.return_delay()
        t_recv_true = t_send + fwd + ret
        send_stamp = parent_clock.read(t_send)
        recv_stamp = parent_clock.read(t_recv_true)
        rtt = recv_stamp - send_stamp
        est = child_sample - (send_stamp + rtt / 2.0)
        key = rtt if select == "min_rtt" else abs(est)
        if best_key is None or key < best_key:
            best_key = key
            best_est = est
    return best_est


@dataclass
class SkewExperimentResult:
    """Detected-vs-true skews for both schemes over one topology."""

    true_skew: Dict[int, float]
    mrnet_skew: Dict[int, float]
    direct_skew: Dict[int, float]

    def percent_errors(self, scheme: str) -> np.ndarray:
        """Per-daemon percent error against the oracle (switch) clock."""
        est = {"mrnet": self.mrnet_skew, "direct": self.direct_skew}[scheme]
        out = []
        for rank, true in self.true_skew.items():
            denom = abs(true)
            out.append(abs(est[rank] - true) / denom * 100.0)
        return np.asarray(out)

    def summary(self, scheme: str) -> Tuple[float, float]:
        """(mean percent error, standard deviation) — the §4.2.1 numbers."""
        errs = self.percent_errors(scheme)
        return float(errs.mean()), float(errs.std(ddof=0))


def run_skew_experiment(
    spec: TopologySpec,
    params: ClockSimParams = BLUE_PACIFIC_CLOCKS,
    local_trials: int = 20,
    direct_trials: int = 100,
    seed: int = 0,
) -> SkewExperimentResult:
    """Run both skew-detection schemes over one simulated tree.

    Returns the true offsets (daemon − front-end, per the oracle
    clock) alongside both schemes' estimates.
    """
    rng = np.random.default_rng(seed)
    clocks: Dict[Tuple[str, int], SkewedClock] = {}
    for node in spec.nodes():
        clocks[node.key] = SkewedClock.random(rng, params.skew_sigma)
        # Guard the relative-error denominator: the paper's metric is
        # undefined at exactly-zero true skew, which real clocks never hit.
        while abs(clocks[node.key].offset) < params.skew_sigma * 1e-3:
            clocks[node.key] = SkewedClock.random(rng, params.skew_sigma)

    fe_clock = clocks[spec.root.key]
    leaves = spec.leaves()
    rank_of = {leaf.key: i for i, leaf in enumerate(leaves)}

    # Phase 1: local skews, one per tree edge.
    local_skew: Dict[Tuple[Tuple[str, int], Tuple[str, int]], float] = {}

    def walk(node: TopologyNode) -> None:
        for child in node.children:
            link = JitteredLink(
                rng, params.local_base, params.local_jitter, params.asymmetry
            )
            local_skew[(node.key, child.key)] = measure_local_skew(
                clocks[node.key],
                clocks[child.key],
                link,
                local_trials,
                select="min_rtt",
            )
            walk(child)

    walk(spec.root)

    # Phase 2: cumulative accumulation up each path (computed by
    # induction along root-to-leaf paths, as the network does).
    mrnet_skew: Dict[int, float] = {}

    def accumulate(node: TopologyNode, acc: float) -> None:
        for child in node.children:
            total = acc + local_skew[(node.key, child.key)]
            if child.is_leaf:
                mrnet_skew[rank_of[child.key]] = total
            else:
                accumulate(child, total)

    accumulate(spec.root, 0.0)

    # Direct baseline: front-end to every daemon, min-|skew| of 100.
    direct_skew: Dict[int, float] = {}
    for leaf in leaves:
        link = JitteredLink(
            rng, params.direct_base, params.direct_jitter, params.asymmetry
        )
        direct_skew[rank_of[leaf.key]] = measure_local_skew(
            fe_clock,
            clocks[leaf.key],
            link,
            direct_trials,
            select="min_abs",
        )

    true_skew = {
        rank_of[leaf.key]: clocks[leaf.key].offset - fe_clock.offset
        for leaf in leaves
    }
    return SkewExperimentResult(true_skew, mrnet_skew, direct_skew)
