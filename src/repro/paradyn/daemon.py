"""Paradyn daemon (tool back-end) logic — §3.

A :class:`ParadynDaemon` binds Paradyn behaviour to one MRNet
:class:`~repro.core.backend.BackEnd`: it answers the front-end's
start-up protocol requests (self report, MDL metric exchange, code and
call-graph checksums, process/machine resources, done) and, once
monitoring starts, produces performance data samples.

Daemons are passive like their back-ends: call :meth:`service` to
process whatever requests have arrived.  Tests and examples drive many
daemons from one thread.
"""

from __future__ import annotations

from typing import List, Optional

from ..core.backend import BackEnd
from ..core.packet import Packet
from .mdl import parse_mdl
from .perfdata import DataSample
from .resources import ExecutableImage, ProcessResources

__all__ = ["ParadynDaemon", "TAGS"]


class TAGS:
    """Application tags of the Paradyn-over-MRNet protocol."""

    REPORT_SELF = 1000
    MDL_BROADCAST = 1001
    METRIC_CKSUM = 1002
    METRIC_FULL_REQ = 1003
    SKEW_COLLECT = 1005
    CODE_CKSUM = 1006
    CODE_FULL_REQ = 1007
    PROCESS_REPORT = 1008
    MACHINE_RESOURCES = 1009
    CALLGRAPH_CKSUM = 1010
    CALLGRAPH_FULL_REQ = 1011
    REPORT_DONE = 1012
    ENABLE_METRIC = 1100
    PERF_SAMPLE = 1101
    REPORT_RATE = 1102


class ParadynDaemon:
    """One Paradyn daemon attached to an application process."""

    def __init__(
        self,
        backend: BackEnd,
        executable: ExecutableImage,
        host: Optional[str] = None,
        pid: Optional[int] = None,
        clock_offset: float = 0.0,
    ):
        self.backend = backend
        self.executable = executable
        self.host = host or f"host{backend.rank:04d}"
        self.pid = pid if pid is not None else 10000 + backend.rank
        self.clock_offset = clock_offset
        self.process = ProcessResources(
            host=self.host,
            pid=self.pid,
            rank=backend.rank,
            command_line=f"./{executable.name} -n 64",
        )
        self.metrics = []  # populated by the MDL broadcast
        self.enabled_metrics: List[str] = []
        self._sample_streams = {}
        #: Current per-metric rates, queried by the Performance
        #: Consultant's REPORT_RATE requests (a stand-in for live
        #: instrumentation readings).
        self.metric_rates: dict[str, float] = {}
        self.startup_complete = False

    @property
    def rank(self) -> int:
        return self.backend.rank

    # -- request servicing ------------------------------------------------

    def service(self, max_packets: Optional[int] = None) -> int:
        """Handle pending requests; returns how many were processed."""
        handled = 0
        while max_packets is None or handled < max_packets:
            got = self.backend.poll()
            if got is None:
                break
            packet, stream = got
            self._dispatch(packet, stream)
            handled += 1
        return handled

    def _dispatch(self, packet: Packet, stream) -> None:
        tag = packet.tag
        if tag == TAGS.REPORT_SELF:
            stream.send("%s", self.process.encode_report(), tag=tag)
        elif tag == TAGS.MDL_BROADCAST:
            (mdl_text,) = packet.unpack()
            self.metrics = parse_mdl(mdl_text)
            stream.send(
                "%uld %ud", self._metrics_checksum(), self.rank,
                tag=TAGS.METRIC_CKSUM,
            )
        elif tag == TAGS.METRIC_FULL_REQ:
            (target,) = packet.unpack()
            if target == self.rank:
                stream.send(
                    "%as", [m.name for m in self.metrics], tag=tag
                )
        elif tag == TAGS.SKEW_COLLECT:
            # Phase 2 of §3.1: daemons initialise the cumulative skew;
            # the live demo carries the daemon's (simulated) offset.
            stream.send("%lf %ud", self.clock_offset, self.rank, tag=tag)
        elif tag == TAGS.CODE_CKSUM:
            stream.send(
                "%uld %ud", self.executable.code_checksum(), self.rank, tag=tag
            )
        elif tag == TAGS.CODE_FULL_REQ:
            (target,) = packet.unpack()
            if target == self.rank:
                names = [f.resource_path for f in self.executable.functions]
                stream.send("%as", names, tag=tag)
        elif tag == TAGS.PROCESS_REPORT:
            stream.send("%s", self.process.encode_report(), tag=tag)
        elif tag == TAGS.MACHINE_RESOURCES:
            report = ";".join(self.process.machine_resource_paths())
            stream.send("%s", report, tag=tag)
        elif tag == TAGS.CALLGRAPH_CKSUM:
            stream.send(
                "%uld %ud",
                self.executable.callgraph_checksum(),
                self.rank,
                tag=tag,
            )
        elif tag == TAGS.CALLGRAPH_FULL_REQ:
            (target,) = packet.unpack()
            if target == self.rank:
                edges = [
                    f"{caller}>{callee}"
                    for caller, callees in sorted(self.executable.call_graph.items())
                    for callee in callees
                ]
                stream.send("%as", edges, tag=tag)
        elif tag == TAGS.REPORT_DONE:
            self.startup_complete = True
            stream.send("%d", 1, tag=tag)
        elif tag == TAGS.ENABLE_METRIC:
            (metric_name,) = packet.unpack()
            self.enabled_metrics.append(metric_name)
            self._sample_streams[metric_name] = stream
        elif tag == TAGS.REPORT_RATE:
            (metric_name,) = packet.unpack()
            stream.send(
                "%lf", self.metric_rates.get(metric_name, 0.0), tag=tag
            )
        else:
            raise ValueError(
                f"daemon {self.rank}: unexpected request tag {tag}"
            )

    # -- performance data production ------------------------------------------

    def has_metric(self, metric_name: str) -> bool:
        """True once the ENABLE_METRIC request reached this daemon."""
        return metric_name in self._sample_streams

    def set_rate(self, metric_name: str, rate: float) -> None:
        """Set the instantaneous rate REPORT_RATE queries will return."""
        self.metric_rates[metric_name] = float(rate)

    def emit_sample(self, metric_name: str, value: float, start: float, end: float) -> None:
        """Send one performance sample on the metric's stream.

        The daemon timestamps intervals with *its own* clock ("the
        interval's start and end timestamps are set by the back-ends",
        §3.2), so its clock offset shifts the reported interval.
        """
        stream = self._sample_streams.get(metric_name)
        if stream is None:
            raise KeyError(f"metric {metric_name!r} not enabled on daemon {self.rank}")
        sample = DataSample(
            value, start + self.clock_offset, end + self.clock_offset
        )
        stream.send_packet(
            sample.to_packet(stream.stream_id, TAGS.PERF_SAMPLE, self.rank)
        )

    def _metrics_checksum(self) -> int:
        import hashlib

        h = hashlib.sha256()
        for m in self.metrics:
            h.update(f"{m.name}|{m.units}|{m.style}|{m.aggregate}".encode())
        return int.from_bytes(h.digest()[:8], "big")

    def __repr__(self) -> str:
        return f"ParadynDaemon(rank={self.rank}, host={self.host!r})"
