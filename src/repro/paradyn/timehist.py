"""Paradyn-style time histograms for collected performance data.

Paradyn stores each global metric's sample stream in a fixed-size
*time histogram*: a bounded array of time bins that covers the whole
run by **folding** — when samples arrive past the histogram's current
horizon, the bin width doubles and adjacent bins merge, so memory
stays constant while resolution degrades gracefully.  The front-end
uses these histograms to drive its displays and its performance
bottleneck search.

This reproduces that structure for the samples our
:class:`~repro.paradyn.perfdata.DataSample` pipeline delivers.  Values
are attributed to bins proportionally by time overlap (the same
conservation discipline as the Figure 6 filter), so the histogram's
total equals the total of everything added, across any number of
folds — property-tested in ``tests/paradyn/test_timehist.py``.
"""

from __future__ import annotations

from typing import List, Tuple

from .perfdata import DataSample

__all__ = ["TimeHistogram"]


class TimeHistogram:
    """A bounded, folding time series of metric values.

    Parameters
    ----------
    n_bins:
        Number of bins (constant for the histogram's lifetime).
    initial_bin_width:
        Bin width in seconds before any fold.
    start_time:
        Left edge of bin 0.
    """

    def __init__(
        self,
        n_bins: int = 240,
        initial_bin_width: float = 0.2,
        start_time: float = 0.0,
    ):
        if n_bins < 2 or n_bins % 2:
            raise ValueError("n_bins must be an even number >= 2")
        if initial_bin_width <= 0:
            raise ValueError("initial_bin_width must be positive")
        self.n_bins = n_bins
        self.bin_width = initial_bin_width
        self.start_time = start_time
        self._bins = [0.0] * n_bins
        self.folds = 0
        self.samples_added = 0

    # -- geometry -----------------------------------------------------------

    @property
    def horizon(self) -> float:
        """Right edge of the last bin."""
        return self.start_time + self.n_bins * self.bin_width

    def bin_edges(self, index: int) -> Tuple[float, float]:
        lo = self.start_time + index * self.bin_width
        return lo, lo + self.bin_width

    @property
    def values(self) -> List[float]:
        """A copy of the current bin values."""
        return list(self._bins)

    @property
    def total(self) -> float:
        return sum(self._bins)

    # -- folding -------------------------------------------------------------

    def fold(self) -> None:
        """Double the bin width, merging adjacent bin pairs."""
        half = self.n_bins // 2
        merged = [
            self._bins[2 * i] + self._bins[2 * i + 1] for i in range(half)
        ]
        self._bins = merged + [0.0] * half
        self.bin_width *= 2.0
        self.folds += 1

    # -- adding data -----------------------------------------------------------

    def add_sample(self, sample: DataSample) -> None:
        """Attribute one sample's value across the bins it overlaps.

        Samples (or portions of samples) before ``start_time`` are
        dropped; samples beyond the horizon trigger folds until they
        fit.
        """
        self.samples_added += 1
        start = max(sample.start, self.start_time)
        if start >= sample.end:
            return
        # Proportional share of the value inside [start_time, ...).
        value = sample.value * (sample.end - start) / sample.duration
        while sample.end > self.horizon:
            self.fold()
        rate = value / (sample.end - start)
        # Attribute by overlap over a bounded bin range (floating-point
        # bin edges can make an edge-walking loop stall, so iterate bin
        # indices instead: empty overlaps contribute nothing and the
        # range is finite by construction).
        first = int((start - self.start_time) / self.bin_width)
        last = int((sample.end - self.start_time) / self.bin_width) + 1
        first = max(0, min(first - 1, self.n_bins - 1))
        last = max(0, min(last, self.n_bins - 1))
        for idx in range(first, last + 1):
            lo, hi = self.bin_edges(idx)
            overlap = min(hi, sample.end) - max(lo, start)
            if overlap > 0:
                self._bins[idx] += rate * overlap

    def add(self, value: float, start: float, end: float) -> None:
        """Convenience: add a raw (value, interval) triple."""
        self.add_sample(DataSample(value, start, end))

    # -- queries ----------------------------------------------------------------

    def value_over(self, t0: float, t1: float) -> float:
        """Approximate total value over [t0, t1), proportional per bin."""
        if t1 <= t0:
            raise ValueError("empty query interval")
        total = 0.0
        for i, v in enumerate(self._bins):
            lo, hi = self.bin_edges(i)
            overlap = min(hi, t1) - max(lo, t0)
            if overlap > 0:
                total += v * overlap / self.bin_width
        return total

    def rate_series(self) -> List[Tuple[float, float]]:
        """(bin midpoint, value/second) pairs for plotting."""
        return [
            (self.bin_edges(i)[0] + self.bin_width / 2, v / self.bin_width)
            for i, v in enumerate(self._bins)
        ]

    def __repr__(self) -> str:
        return (
            f"TimeHistogram(bins={self.n_bins}, width={self.bin_width:g}s, "
            f"folds={self.folds}, total={self.total:g})"
        )
