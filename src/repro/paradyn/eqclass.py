"""Checksum equivalence-class ("binning") filter — §3.1.

"each Paradyn daemon first computes a summary of the data (i.e., a
checksum).  Next, the daemons write the checksums to an MRNet stream
created to use a custom binning filter.  This filter partitions the
daemons into equivalence classes based on their checksum values.
When the front-end receives the final set of equivalence classes, it
requests complete function resource information only for each class'
representative process."

Wire format (tree-composable, like the histogram filter):

* Leaf input: ``"%uld %ud"`` — (checksum, daemon rank).
* Partial/merged output: ``"%auld %aud %aud"`` — parallel arrays
  (class checksums, class sizes, members flattened in class order).

Classes are keyed by checksum; members stay rank-sorted; classes are
emitted in ascending checksum order, so the encoding is canonical and
merging is associative — the property that lets the same filter run
at every level of the tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from ..core.formats import parse_format
from ..core.packet import Packet
from ..filters.base import FilterError, FilterState, FunctionFilter

__all__ = ["EquivalenceClasses", "EquivalenceClassFilter", "eqclass_filter"]

_LEAF_FMT = parse_format("%uld %ud")
_CLASSES_FMT = parse_format("%auld %aud %aud")


@dataclass(frozen=True)
class EquivalenceClasses:
    """A decoded set of equivalence classes."""

    #: checksum -> sorted tuple of member ranks
    classes: Dict[int, Tuple[int, ...]]

    @property
    def num_classes(self) -> int:
        return len(self.classes)

    @property
    def num_members(self) -> int:
        return sum(len(m) for m in self.classes.values())

    def representative(self, checksum: int) -> int:
        """The class representative: its lowest member rank."""
        return self.classes[checksum][0]

    def representatives(self) -> List[int]:
        """One representative per class, ascending checksum order."""
        return [members[0] for _, members in sorted(self.classes.items())]

    def class_of(self, rank: int) -> int:
        for checksum, members in self.classes.items():
            if rank in members:
                return checksum
        raise KeyError(f"rank {rank} is in no class")

    # -- codec -----------------------------------------------------------

    def to_packet_values(self) -> Tuple[Tuple[int, ...], Tuple[int, ...], Tuple[int, ...]]:
        checksums: List[int] = []
        sizes: List[int] = []
        members: List[int] = []
        for checksum, ranks in sorted(self.classes.items()):
            checksums.append(checksum)
            sizes.append(len(ranks))
            members.extend(ranks)
        return tuple(checksums), tuple(sizes), tuple(members)

    @classmethod
    def from_packet_values(
        cls,
        checksums: Sequence[int],
        sizes: Sequence[int],
        members: Sequence[int],
    ) -> "EquivalenceClasses":
        if len(checksums) != len(sizes):
            raise FilterError("checksum/size arrays disagree in length")
        if sum(sizes) != len(members):
            raise FilterError("member array length disagrees with sizes")
        classes: Dict[int, Tuple[int, ...]] = {}
        offset = 0
        for checksum, size in zip(checksums, sizes):
            if checksum in classes:
                raise FilterError(f"duplicate class checksum {checksum}")
            classes[checksum] = tuple(sorted(members[offset : offset + size]))
            offset += size
        return cls(classes)

    @classmethod
    def from_packet(cls, packet: Packet) -> "EquivalenceClasses":
        if packet.fmt != _CLASSES_FMT:
            raise FilterError(
                f"not an equivalence-class packet: {packet.fmt.canonical!r}"
            )
        return cls.from_packet_values(*packet.unpack())

    def merged_with(self, other: "EquivalenceClasses") -> "EquivalenceClasses":
        out: Dict[int, Tuple[int, ...]] = dict(self.classes)
        for checksum, members in other.classes.items():
            if checksum in out:
                out[checksum] = tuple(sorted(set(out[checksum]) | set(members)))
            else:
                out[checksum] = members
        return EquivalenceClasses(out)


class EquivalenceClassFilter(FunctionFilter):
    """The custom binning filter Paradyn loads into MRNet."""

    def __init__(self, name: str = "eqclass"):
        super().__init__(self._run, name, None)

    def _run(self, packets: Sequence[Packet], state: FilterState) -> List[Packet]:
        if not packets:
            return []
        acc = EquivalenceClasses({})
        for p in packets:
            if p.fmt == _LEAF_FMT:
                checksum, rank = p.unpack()
                acc = acc.merged_with(EquivalenceClasses({checksum: (rank,)}))
            elif p.fmt == _CLASSES_FMT:
                acc = acc.merged_with(EquivalenceClasses.from_packet(p))
            else:
                raise FilterError(
                    f"eqclass filter cannot accept format {p.fmt.canonical!r}"
                )
        first = packets[0]
        return [
            Packet(
                first.stream_id,
                first.tag,
                _CLASSES_FMT,
                acc.to_packet_values(),
                origin_rank=first.origin_rank,
            )
        ]


eqclass_filter = EquivalenceClassFilter()


def eqclass_filter_func(packets, state):
    """Module-level filter function form of the equivalence-class filter.

    Loadable across process boundaries with
    ``Network(filter_specs=[(repro.paradyn.eqclass.__file__,
    "eqclass_filter_func")])`` — the shared-object shipping model.
    """
    return eqclass_filter(packets, state)
