"""Process-tree topology specification (paper §2.1, §2.6).

"The connection topology and host assignment of these processes is
determined by a configuration file, thus the geometry of MRNet's
process tree can be customized to suit the physical topology of the
underlying hardware."

A topology is a rooted tree of :class:`TopologyNode` s.  The root is
the tool front-end; leaves are tool back-ends; everything in between
is an ``mrnet_commnode`` internal process.  Each node is placed on a
host and numbered with a per-host index, matching MRNet's
``host:index`` notation, so co-location (several processes per host)
is expressible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

__all__ = ["TopologyNode", "TopologySpec", "TopologyError"]


class TopologyError(ValueError):
    """Raised for malformed topologies."""


@dataclass
class TopologyNode:
    """One process slot in the tree: a host, per-host index, children."""

    host: str
    index: int
    children: List["TopologyNode"] = field(default_factory=list)

    @property
    def key(self) -> Tuple[str, int]:
        return (self.host, self.index)

    @property
    def label(self) -> str:
        """The ``host:index`` notation used in configuration files."""
        return f"{self.host}:{self.index}"

    @property
    def is_leaf(self) -> bool:
        return not self.children

    def add_child(self, child: "TopologyNode") -> "TopologyNode":
        self.children.append(child)
        return child

    def __repr__(self) -> str:
        return f"TopologyNode({self.label}, children={len(self.children)})"


class TopologySpec:
    """A validated process tree.

    Validation enforces: single root, every ``host:index`` unique, no
    cycles (tree property follows from construction + uniqueness), at
    least one leaf distinct from the root unless explicitly allowed
    (a front-end with zero back-ends is useless).
    """

    def __init__(self, root: TopologyNode, allow_trivial: bool = False):
        self.root = root
        self._by_key: Dict[Tuple[str, int], TopologyNode] = {}
        self._parent: Dict[Tuple[str, int], Optional[TopologyNode]] = {}
        self._validate(allow_trivial)

    def _validate(self, allow_trivial: bool) -> None:
        stack: List[Tuple[TopologyNode, Optional[TopologyNode]]] = [(self.root, None)]
        while stack:
            node, parent = stack.pop()
            if not node.host:
                raise TopologyError("node host must be non-empty")
            if node.index < 0:
                raise TopologyError(f"negative index on {node.host}")
            if node.key in self._by_key:
                raise TopologyError(f"duplicate process slot {node.label}")
            self._by_key[node.key] = node
            self._parent[node.key] = parent
            for child in node.children:
                stack.append((child, node))
        if not allow_trivial and len(self._by_key) < 2:
            raise TopologyError("topology must contain at least one back-end")

    # -- traversal --------------------------------------------------------

    def nodes(self) -> Iterator[TopologyNode]:
        """All nodes, preorder (root first)."""
        stack = [self.root]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def leaves(self) -> List[TopologyNode]:
        """The back-end slots, in left-to-right (rank) order."""
        return [n for n in self.nodes() if n.is_leaf]

    def internal_nodes(self) -> List[TopologyNode]:
        """Comm-node slots: non-root, non-leaf processes."""
        return [n for n in self.nodes() if n is not self.root and not n.is_leaf]

    def parent_of(self, node: TopologyNode) -> Optional[TopologyNode]:
        return self._parent[node.key]

    def grandparent_of(self, node: TopologyNode) -> Optional[TopologyNode]:
        """The node two levels up — an orphan's first repair target.

        Tree repair reconnects the children of a dead internal process
        to its parent; ``None`` for the root and its direct children.
        """
        parent = self._parent[node.key]
        if parent is None:
            return None
        return self._parent[parent.key]

    def ancestors_of(self, node: TopologyNode) -> List[TopologyNode]:
        """Proper ancestors, nearest first (parent, grandparent, ...).

        The repair escalation order: if the grandparent is also dead,
        an orphan walks further up, ending at the front-end (which is
        always alive while the network is).
        """
        out: List[TopologyNode] = []
        cur = self._parent[node.key]
        while cur is not None:
            out.append(cur)
            cur = self._parent[cur.key]
        return out

    def find(self, host: str, index: int) -> TopologyNode:
        try:
            return self._by_key[(host, index)]
        except KeyError:
            raise TopologyError(f"no process slot {host}:{index}") from None

    def __contains__(self, key: Tuple[str, int]) -> bool:
        return key in self._by_key

    def __len__(self) -> int:
        return len(self._by_key)

    # -- metrics -----------------------------------------------------------

    @property
    def num_backends(self) -> int:
        return len(self.leaves())

    @property
    def num_internal(self) -> int:
        return len(self.internal_nodes())

    @property
    def depth(self) -> int:
        """Edge count of the longest root-to-leaf path."""

        def _depth(node: TopologyNode) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(_depth(c) for c in node.children)

        return _depth(self.root)

    @property
    def max_fanout(self) -> int:
        return max((len(n.children) for n in self.nodes()), default=0)

    def level_of(self, node: TopologyNode) -> int:
        """Distance (edges) from the root."""
        level = 0
        cur: Optional[TopologyNode] = self._parent[node.key]
        while cur is not None:
            level += 1
            cur = self._parent[cur.key]
        return level

    def hosts(self) -> List[str]:
        """Distinct hosts, in first-appearance order."""
        seen: Dict[str, None] = {}
        for node in self.nodes():
            seen.setdefault(node.host, None)
        return list(seen)

    def __repr__(self) -> str:
        return (
            f"TopologySpec(processes={len(self)}, backends={self.num_backends}, "
            f"depth={self.depth}, max_fanout={self.max_fanout})"
        )
