"""Process-tree topologies: spec, config files, generators, analysis."""

from .autogen import generate_config, generate_topology
from .analysis import (
    TopologyStats,
    analyze,
    is_balanced,
    levels,
    link_transports,
    to_networkx,
)
from .generators import (
    HostAllocator,
    balanced_tree,
    balanced_tree_for,
    binomial_tree,
    flat_topology,
    knomial_tree,
    unbalanced_fig4,
)
from .parser import (
    parse_config,
    parse_config_file,
    serialize_config,
    write_config_file,
)
from .spec import TopologyError, TopologyNode, TopologySpec

__all__ = [
    "TopologyError",
    "TopologyNode",
    "TopologySpec",
    "parse_config",
    "parse_config_file",
    "serialize_config",
    "write_config_file",
    "HostAllocator",
    "flat_topology",
    "balanced_tree",
    "balanced_tree_for",
    "binomial_tree",
    "knomial_tree",
    "unbalanced_fig4",
    "generate_config",
    "generate_topology",
    "TopologyStats",
    "analyze",
    "is_balanced",
    "levels",
    "link_transports",
    "to_networkx",
]
