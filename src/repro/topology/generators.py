"""Standard topology generators (paper §2.1: "common network layouts
like k-ary and k-nomial trees").

All generators return a :class:`~repro.topology.spec.TopologySpec`
whose root is the front-end and whose leaves are back-end slots.
Hosts are assigned by a :class:`HostAllocator`: by default every
process gets its own synthetic host (the paper recommends running
internal processes "on resources distinct from those running the
application processes", §2.6), but a finite host list may be supplied
to model co-location, in which case per-host indices count up.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Sequence

from .spec import TopologyError, TopologyNode, TopologySpec

__all__ = [
    "HostAllocator",
    "flat_topology",
    "balanced_tree",
    "balanced_tree_for",
    "binomial_tree",
    "knomial_tree",
    "unbalanced_fig4",
]


class HostAllocator:
    """Hands out ``(host, index)`` slots for new processes.

    With no host list, each call invents a fresh host
    (``fe``, ``node0001``, ``node0002``, ...), i.e. one process per
    host.  With a host list, hosts are used round-robin and the
    per-host index increments on reuse, expressing co-location.
    """

    def __init__(self, hosts: Optional[Sequence[str]] = None, prefix: str = "node"):
        self._hosts = list(hosts) if hosts else None
        self._cycle = itertools.cycle(self._hosts) if self._hosts else None
        self._counter = 0
        self._indices: Dict[str, int] = {}
        self._prefix = prefix

    def next_slot(self) -> TopologyNode:
        if self._cycle is not None:
            host = next(self._cycle)
        else:
            host = f"{self._prefix}{self._counter:04d}"
            self._counter += 1
        index = self._indices.get(host, 0)
        self._indices[host] = index + 1
        return TopologyNode(host, index)


def _allocator(hosts: Optional[Sequence[str]]) -> HostAllocator:
    return hosts if isinstance(hosts, HostAllocator) else HostAllocator(hosts)


def flat_topology(n_backends: int, hosts: Optional[Sequence[str]] = None) -> TopologySpec:
    """Single-level tree: front-end directly parents every back-end.

    This "closely approximates the architecture of many parallel
    tools" (§4.1) and is the paper's "Flat"/"No MRNet" baseline.
    """
    if n_backends < 1:
        raise TopologyError("need at least one back-end")
    alloc = _allocator(hosts)
    root = alloc.next_slot()
    for _ in range(n_backends):
        root.add_child(alloc.next_slot())
    return TopologySpec(root)


def balanced_tree(
    fanout: int, depth: int, hosts: Optional[Sequence[str]] = None
) -> TopologySpec:
    """Fully-populated balanced k-ary tree.

    ``depth`` counts edge levels below the front-end; leaves number
    ``fanout ** depth``.  ``depth == 1`` degenerates to a flat tree.
    """
    if fanout < 2:
        raise TopologyError("fanout must be >= 2")
    if depth < 1:
        raise TopologyError("depth must be >= 1")
    alloc = _allocator(hosts)
    root = alloc.next_slot()
    frontier = [root]
    for _ in range(depth):
        next_frontier: List[TopologyNode] = []
        for node in frontier:
            for _ in range(fanout):
                next_frontier.append(node.add_child(alloc.next_slot()))
        frontier = next_frontier
    return TopologySpec(root)


def balanced_tree_for(
    fanout: int, n_backends: int, hosts: Optional[Sequence[str]] = None
) -> TopologySpec:
    """Balanced tree with exactly *n_backends* leaves.

    Uses the smallest depth ``d`` with ``fanout**d >= n_backends``,
    builds the internal levels fully populated through depth ``d-1``,
    and spreads the leaves over the deepest internal level as evenly
    as possible (matching how the paper's sweeps use "fully-populated
    balanced tree topologies" at round counts and near-balanced trees
    elsewhere).
    """
    if fanout < 2:
        raise TopologyError("fanout must be >= 2")
    if n_backends < 1:
        raise TopologyError("need at least one back-end")
    if n_backends <= fanout:
        return flat_topology(n_backends, hosts)
    depth = 1
    while fanout**depth < n_backends:
        depth += 1
    alloc = _allocator(hosts)
    root = alloc.next_slot()
    # Internal levels: enough parents at depth-1 to hold the leaves.
    n_last_parents = -(-n_backends // fanout)  # ceil
    frontier = [root]
    for level in range(1, depth):
        # How many nodes are needed at this level so that the deepest
        # internal level has n_last_parents nodes?
        needed = n_last_parents
        for _ in range(depth - 1 - level):
            needed = -(-needed // fanout)
        next_frontier: List[TopologyNode] = []
        for i in range(needed):
            parent = frontier[i % len(frontier)]
            next_frontier.append(parent.add_child(alloc.next_slot()))
        # Keep child order stable per parent: regroup by parent order.
        frontier = next_frontier
    for i in range(n_backends):
        parent = frontier[i % len(frontier)]
        parent.add_child(alloc.next_slot())
    return TopologySpec(root)


def binomial_tree(order: int, hosts: Optional[Sequence[str]] = None) -> TopologySpec:
    """Binomial tree B_k: ``2**order`` processes including the root."""
    if order < 1:
        raise TopologyError("order must be >= 1")
    alloc = _allocator(hosts)

    def build(k: int) -> TopologyNode:
        node = alloc.next_slot()
        # B_k's root has children B_{k-1}, ..., B_0.
        for j in range(k - 1, -1, -1):
            node.add_child(build(j))
        return node

    return TopologySpec(build(order))


def knomial_tree(k: int, n_processes: int, hosts: Optional[Sequence[str]] = None) -> TopologySpec:
    """k-nomial tree over *n_processes* total processes (root included).

    Generalises the binomial tree: in round r the existing processes
    each spawn ``k - 1`` children, so ``k**r`` processes exist after r
    rounds.  Construction stops once *n_processes* slots exist.
    """
    if k < 2:
        raise TopologyError("k must be >= 2")
    if n_processes < 2:
        raise TopologyError("need at least two processes")
    alloc = _allocator(hosts)
    root = alloc.next_slot()
    nodes = [root]
    while len(nodes) < n_processes:
        for node in list(nodes):
            for _ in range(k - 1):
                if len(nodes) >= n_processes:
                    break
                child = node.add_child(alloc.next_slot())
                nodes.append(child)
            if len(nodes) >= n_processes:
                break
    return TopologySpec(root)


def unbalanced_fig4(
    n_groups: int = 4,
    backends_per_group: int = 4,
    hosts: Optional[Sequence[str]] = None,
) -> TopologySpec:
    """The paper's Figure 4b unbalanced topology.

    A binomial tree over *n_groups* internal nodes (root included),
    with *backends_per_group* back-ends attached to each internal
    node.  With the defaults this reaches 16 back-ends and the root
    has the six-way fan-out the paper discusses.
    """
    if n_groups < 1:
        raise TopologyError("need at least one group")
    if backends_per_group < 1:
        raise TopologyError("need at least one back-end per group")
    alloc = _allocator(hosts)
    # Binomial tree over the group heads.
    order = 0
    while 2**order < n_groups:
        order += 1
    heads: List[TopologyNode] = []

    def build(k: int) -> TopologyNode:
        node = alloc.next_slot()
        heads.append(node)
        for j in range(k - 1, -1, -1):
            if len(heads) >= n_groups:
                break
            node.add_child(build(j))
        return node

    root = build(order) if order > 0 else alloc.next_slot()
    if order == 0:
        heads.append(root)
    for head in heads[:n_groups]:
        for _ in range(backends_per_group):
            head.add_child(alloc.next_slot())
    return TopologySpec(root)
