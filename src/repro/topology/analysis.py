"""Structural analysis of topologies (supports §2.6's layout discussion).

Pure structure here (fan-outs, levels, balance, graph export); the
LogP *cost* analysis of Figure 4 lives in :mod:`repro.sim.logp` which
consumes these metrics.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List

from .spec import TopologyNode, TopologySpec

__all__ = [
    "TopologyStats",
    "analyze",
    "to_networkx",
    "is_balanced",
    "levels",
    "link_transports",
]


@dataclass(frozen=True)
class TopologyStats:
    """Summary statistics of one process tree."""

    num_processes: int
    num_backends: int
    num_internal: int
    depth: int
    max_fanout: int
    root_fanout: int
    balanced: bool
    fanout_histogram: Dict[int, int]

    def describe(self) -> str:
        kind = "balanced" if self.balanced else "unbalanced"
        return (
            f"{self.num_processes} processes ({self.num_backends} back-ends, "
            f"{self.num_internal} internal), depth {self.depth}, "
            f"max fan-out {self.max_fanout}, {kind}"
        )


def levels(spec: TopologySpec) -> List[List[TopologyNode]]:
    """Nodes grouped by distance from the root (level 0 = front-end)."""
    out: List[List[TopologyNode]] = [[spec.root]]
    frontier = [spec.root]
    while True:
        nxt = [c for n in frontier for c in n.children]
        if not nxt:
            return out
        out.append(nxt)
        frontier = nxt


def is_balanced(spec: TopologySpec) -> bool:
    """True when every leaf sits at the same depth and every internal
    node at the same level has the same fan-out."""
    leaf_depths = {spec.level_of(leaf) for leaf in spec.leaves()}
    if len(leaf_depths) > 1:
        return False
    for level_nodes in levels(spec):
        fanouts = {len(n.children) for n in level_nodes if n.children}
        if len(fanouts) > 1:
            return False
    return True


def analyze(spec: TopologySpec) -> TopologyStats:
    """Compute :class:`TopologyStats` for *spec*."""
    fanouts = Counter(len(n.children) for n in spec.nodes() if n.children)
    return TopologyStats(
        num_processes=len(spec),
        num_backends=spec.num_backends,
        num_internal=spec.num_internal,
        depth=spec.depth,
        max_fanout=spec.max_fanout,
        root_fanout=len(spec.root.children),
        balanced=is_balanced(spec),
        fanout_histogram=dict(sorted(fanouts.items())),
    )


def link_transports(
    spec: TopologySpec,
    transport: str = "process",
    shm: str = "auto",
    colocate: bool = False,
) -> Dict[tuple, str]:
    """Classify every tree edge by the transport it would be carried on.

    Returns ``(parent_label, child_label) -> kind`` where *kind* is
    ``"channel"`` (in-process mailboxes, thread-hosted transports),
    ``"inproc"`` (both endpoints are comm nodes hosted on one shared
    event loop under ``colocate=True`` — same-process deque hand-off,
    which beats the shared-memory upgrade when both apply),
    ``"shm"`` (both endpoints share a topology host and the
    shared-memory upgrade is enabled) or ``"tcp"``.  This is the
    planning-time view of the runtime's negotiated outcome — the
    actual upgrade can still fall back to TCP if a segment cannot be
    created, which the per-link ``links{kind=...}`` gauges report.

    Colocation groups mirror the runtime exactly: with
    ``transport="local"`` every comm-to-comm edge is in-process (one
    host thread runs the whole tree; front-end and back-end edges stay
    channels), while with ``transport="process"`` an internal child
    joins its parent's process only when connected to a *group seed*
    (a direct child of the front-end) through a chain of same-host
    internal edges.
    """
    kinds: Dict[tuple, str] = {}
    # transport="process" + colocate: every direct internal child of
    # the front-end seeds a group; a deeper internal node joins its
    # parent's group iff the connecting edge stays on one host.  An
    # internal edge is then inproc exactly when the child is in its
    # parent's group.
    joined: Dict[tuple, bool] = {}
    for node in spec.nodes():
        for child in node.children:
            if child.is_leaf:
                continue
            joined[child.key] = node is spec.root or (
                joined[node.key] and node.host == child.host
            )
    for node in spec.nodes():
        for child in node.children:
            comm_edge = node is not spec.root and not child.is_leaf
            if transport == "local":
                kind = "inproc" if (colocate and comm_edge) else "channel"
            elif (
                transport == "process"
                and colocate
                and comm_edge
                and joined[child.key]
            ):
                kind = "inproc"
            elif (
                transport == "process"
                and shm == "auto"
                and node.host == child.host
            ):
                kind = "shm"
            else:
                kind = "tcp"
            kinds[(node.label, child.label)] = kind
    return kinds


def to_networkx(spec: TopologySpec):
    """Export the tree as a :class:`networkx.DiGraph` (edges parent→child).

    Node names are ``host:index`` labels; node attributes record
    ``host``, ``index``, ``level`` and ``role`` (frontend / internal /
    backend).
    """
    import networkx as nx

    g = nx.DiGraph()
    for node in spec.nodes():
        if node is spec.root:
            role = "frontend"
        elif node.is_leaf:
            role = "backend"
        else:
            role = "internal"
        g.add_node(
            node.label,
            host=node.host,
            index=node.index,
            level=spec.level_of(node),
            role=role,
        )
        for child in node.children:
            g.add_edge(node.label, child.label)
    return g
