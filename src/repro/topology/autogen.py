"""Automatic configuration generation (paper §4.1).

"Once we were given our partition, we determined the partition nodes'
host names and used an automatic configuration generator program to
build an MRNet configuration file with the desired topology within the
partition."

:func:`generate_config` is that program: given the partition's host
list and a desired topology shape, it allocates processes to hosts and
emits configuration text.  Host-assignment policies (§2.6):

* ``"dedicated"`` — internal processes go on hosts *not* used by
  back-ends (the paper's recommendation: "MRNet's internal processes
  be located on resources distinct from those running the application
  processes").  Requires enough hosts; the front-end gets the first
  host, internal processes the next ones, back-ends the rest.
* ``"colocated"`` — processes are packed round-robin across all hosts,
  co-locating internal processes with back-ends (what the paper argues
  *against*, provided for the co-location ablation).

The module doubles as a script::

   python -m repro.topology.autogen hostfile.txt --fanout 4 [--flat]
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from .generators import HostAllocator, balanced_tree_for, flat_topology
from .parser import serialize_config
from .spec import TopologyError, TopologySpec

__all__ = ["generate_topology", "generate_config"]


def _tree_shape(fanout: int, n_backends: int) -> List[int]:
    """Internal-level sizes (excluding front-end and back-ends)."""
    shape = []
    need = -(-n_backends // fanout)
    while need > 1:
        shape.append(need)
        need = -(-need // fanout)
    return list(reversed(shape))


def generate_topology(
    hosts: Sequence[str],
    n_backends: Optional[int] = None,
    fanout: int = 8,
    flat: bool = False,
    placement: str = "dedicated",
) -> TopologySpec:
    """Build a topology for a concrete partition.

    ``n_backends`` defaults to one back-end per host beyond those the
    dedicated placement reserves for the front-end and internal
    processes (or ``len(hosts)`` when flat/colocated).
    """
    hosts = list(dict.fromkeys(hosts))  # dedupe, keep order
    if not hosts:
        raise TopologyError("need at least one host")
    if placement not in ("dedicated", "colocated"):
        raise TopologyError(f"unknown placement {placement!r}")

    if flat:
        if n_backends is None:
            n_backends = len(hosts) - 1 if placement == "dedicated" else len(hosts)
            n_backends = max(n_backends, 1)
        if placement == "dedicated":
            if len(hosts) < 2:
                raise TopologyError("dedicated flat layout needs >= 2 hosts")
            alloc = HostAllocator([hosts[0]])
            root = alloc.next_slot()
            be_alloc = HostAllocator(hosts[1:])
            spec_root = root
            for _ in range(n_backends):
                spec_root.add_child(be_alloc.next_slot())
            return TopologySpec(spec_root)
        return flat_topology(n_backends, hosts=hosts)

    if placement == "colocated":
        if n_backends is None:
            n_backends = len(hosts)
        return balanced_tree_for(fanout, n_backends, hosts=hosts)

    # Dedicated: compute how many internal hosts the tree shape needs,
    # then split the partition.
    if n_backends is None:
        # Solve for the largest back-end count that still fits:
        # 1 (front-end) + internals(n) + n <= len(hosts).
        n_backends = max(1, len(hosts) - 1)
        while (
            1 + sum(_tree_shape(fanout, n_backends)) + n_backends > len(hosts)
            and n_backends > 1
        ):
            n_backends -= 1
    n_internal = sum(_tree_shape(fanout, n_backends))
    needed = 1 + n_internal + n_backends
    if needed > len(hosts):
        raise TopologyError(
            f"dedicated placement needs {needed} hosts "
            f"(1 front-end + {n_internal} internal + {n_backends} "
            f"back-ends) but the partition has {len(hosts)}"
        )

    # Allocate: front-end first, internal processes next, back-ends last —
    # generation order of balanced_tree_for is front-end, internals
    # level by level (interleaved with construction), so use a custom
    # allocator that hands out host groups by role.
    class _RoleAllocator(HostAllocator):
        def __init__(self):
            super().__init__(None)
            self._order = iter(hosts)

        def next_slot(self):
            from .spec import TopologyNode

            host = next(self._order)
            return TopologyNode(host, 0)

    spec = balanced_tree_for(fanout, n_backends, hosts=_RoleAllocator())
    # balanced_tree_for created slots in preorder-ish order; verify the
    # invariant that matters: no host carries two processes.
    if len(spec.hosts()) != len(spec):
        raise TopologyError("dedicated placement produced co-located slots")
    return spec


def generate_config(
    hosts: Sequence[str],
    n_backends: Optional[int] = None,
    fanout: int = 8,
    flat: bool = False,
    placement: str = "dedicated",
) -> str:
    """The §4.1 generator: partition host list in, config text out."""
    spec = generate_topology(hosts, n_backends, fanout, flat, placement)
    kind = "flat" if flat else f"{fanout}-way"
    header = (
        f"auto-generated MRNet configuration: {kind}, {placement} placement, "
        f"{spec.num_backends} back-ends, {spec.num_internal} internal "
        f"processes over {len(spec.hosts())} hosts"
    )
    return serialize_config(spec, header=header)


def _main(argv: Optional[List[str]] = None) -> int:
    import argparse
    from pathlib import Path

    parser = argparse.ArgumentParser(
        description="Generate an MRNet configuration file for a partition."
    )
    parser.add_argument("hostfile", help="file with one host name per line")
    parser.add_argument("--fanout", type=int, default=8)
    parser.add_argument("--backends", type=int, default=None)
    parser.add_argument("--flat", action="store_true")
    parser.add_argument(
        "--placement", choices=["dedicated", "colocated"], default="dedicated"
    )
    args = parser.parse_args(argv)
    hosts = [
        line.strip()
        for line in Path(args.hostfile).read_text().splitlines()
        if line.strip() and not line.startswith("#")
    ]
    print(
        generate_config(
            hosts, args.backends, args.fanout, args.flat, args.placement
        ),
        end="",
    )
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_main())
