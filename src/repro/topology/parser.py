"""MRNet configuration-file parsing and serialization.

The on-disk format follows MRNet's topology files: one production per
parent, listing its children, terminated by a semicolon::

   # comment
   frontend:0 => node01:0 node02:0 ;
   node01:0  => be01:0 be02:0 ;
   node02:0  => be03:0 be04:0 ;

The root is the parent that never appears as a child.  Whitespace and
line breaks are free-form; ``#`` starts a comment through end of line.
"""

from __future__ import annotations

import re
from collections import deque
from pathlib import Path
from typing import Dict, List, Tuple

from .spec import TopologyError, TopologyNode, TopologySpec

__all__ = ["parse_config", "parse_config_file", "serialize_config", "write_config_file"]

_LABEL_RE = re.compile(r"^([A-Za-z0-9_.\-]+):(\d+)$")


def _parse_label(token: str) -> Tuple[str, int]:
    m = _LABEL_RE.match(token)
    if not m:
        raise TopologyError(f"malformed process label {token!r} (expected host:index)")
    return m.group(1), int(m.group(2))


def _strip_comments(text: str) -> str:
    return re.sub(r"#[^\n]*", " ", text)


def parse_config(text: str) -> TopologySpec:
    """Parse configuration text into a :class:`TopologySpec`."""
    tokens = _strip_comments(text).split()
    productions: List[Tuple[Tuple[str, int], List[Tuple[str, int]]]] = []
    i = 0
    while i < len(tokens):
        parent = _parse_label(tokens[i])
        i += 1
        if i >= len(tokens) or tokens[i] != "=>":
            raise TopologyError(f"expected '=>' after {parent[0]}:{parent[1]}")
        i += 1
        children: List[Tuple[str, int]] = []
        while i < len(tokens) and tokens[i] != ";":
            children.append(_parse_label(tokens[i]))
            i += 1
        if i >= len(tokens):
            raise TopologyError("unterminated production (missing ';')")
        i += 1  # consume ';'
        if not children:
            raise TopologyError(
                f"production for {parent[0]}:{parent[1]} lists no children"
            )
        productions.append((parent, children))
    if not productions:
        raise TopologyError("configuration contains no productions")

    nodes: Dict[Tuple[str, int], TopologyNode] = {}

    def get(key: Tuple[str, int]) -> TopologyNode:
        if key not in nodes:
            nodes[key] = TopologyNode(key[0], key[1])
        return nodes[key]

    child_keys = set()
    parents_with_rules = set()
    for parent_key, children in productions:
        if parent_key in parents_with_rules:
            raise TopologyError(
                f"multiple productions for {parent_key[0]}:{parent_key[1]}"
            )
        parents_with_rules.add(parent_key)
        parent = get(parent_key)
        for child_key in children:
            if child_key in child_keys:
                raise TopologyError(
                    f"{child_key[0]}:{child_key[1]} appears as a child twice"
                )
            child_keys.add(child_key)
            parent.add_child(get(child_key))

    roots = [k for k in parents_with_rules if k not in child_keys]
    if len(roots) != 1:
        raise TopologyError(
            f"configuration must have exactly one root, found {len(roots)}"
        )
    return TopologySpec(nodes[roots[0]])


def parse_config_file(path: str | Path) -> TopologySpec:
    """Parse a topology configuration file."""
    return parse_config(Path(path).read_text())


def serialize_config(spec: TopologySpec, header: str | None = None) -> str:
    """Render a topology back to configuration-file text.

    Productions are emitted in breadth-first order so the file reads
    top-down; ``parse_config(serialize_config(t))`` reproduces *t*.
    """
    lines: List[str] = []
    if header:
        for line in header.splitlines():
            lines.append(f"# {line}")
    queue = deque([spec.root])
    while queue:
        node = queue.popleft()
        if node.is_leaf:
            continue
        kids = " ".join(c.label for c in node.children)
        lines.append(f"{node.label} => {kids} ;")
        queue.extend(node.children)
    return "\n".join(lines) + "\n"


def write_config_file(spec: TopologySpec, path: str | Path, header: str | None = None) -> None:
    """Serialize *spec* to *path*."""
    Path(path).write_text(serialize_config(spec, header))
