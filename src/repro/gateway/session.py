"""Client sessions and result tickets.

A :class:`GatewaySession` is one independent client's handle onto the
gateway — a dashboard tab, a poller, a tool instance.  Sessions are
cheap (a deque and a condition variable; 10k+ per process is the
design point) and thread-safe; the asyncio bridge needs no dedicated
event loop inside the gateway, completions are trampolined onto the
waiter's own loop via ``call_soon_threadsafe``.

The API mirrors a familiar future/completion-queue shape:

* ``submit(query) -> Ticket`` — non-blocking; raises
  :class:`repro.gateway.admission.Overloaded` when shed.
* ``ticket.result(timeout)`` — block one ticket.
* ``session.poll()`` — non-blocking: next completed ticket or None.
* ``session.recv(timeout)`` — block for the next completion.
* ``await session.recv_async()`` / ``await ticket`` — asyncio forms.
"""

from __future__ import annotations

import asyncio
import threading
import time
from collections import deque
from typing import Any, Deque, Optional, Tuple

from .admission import GatewayError
from .query import Query

__all__ = ["Ticket", "GatewaySession"]


class Ticket:
    """One submitted query's pending result.

    Completed exactly once, with either a values tuple or an
    exception; thread-safe, and awaitable from any asyncio loop.
    ``coalesced`` is True when this ticket rode another submitter's
    wave (follower) or was served straight from the result cache.
    """

    __slots__ = (
        "query", "session", "submitted_at", "completed_at", "coalesced",
        "epoch", "_event", "_result", "_error", "_async_waiters", "_lock",
    )

    def __init__(self, query: Query, session: "GatewaySession"):
        self.query = query
        self.session = session
        self.submitted_at = time.monotonic()
        self.completed_at: Optional[float] = None
        self.coalesced = False
        self.epoch: Optional[int] = None
        self._event = threading.Event()
        self._result: Optional[Tuple[Any, ...]] = None
        self._error: Optional[BaseException] = None
        self._async_waiters: list = []
        self._lock = threading.Lock()

    # -- completion (gateway-side) ----------------------------------------

    def _complete(self, result=None, error: Optional[BaseException] = None):
        with self._lock:
            if self._event.is_set():
                return  # already completed (e.g. shed racing a late wave)
            self._result = result
            self._error = error
            self.completed_at = time.monotonic()
            waiters = self._async_waiters
            self._async_waiters = []
            self._event.set()
        for loop, future in waiters:
            loop.call_soon_threadsafe(_resolve_future, future, result, error)
        self.session._note_completed(self)

    # -- waiting (client-side) --------------------------------------------

    def done(self) -> bool:
        """True once a result or error has landed."""
        return self._event.is_set()

    def result(self, timeout: Optional[float] = None) -> Tuple[Any, ...]:
        """Block for the values tuple; raises the stored error if shed.

        Raises ``TimeoutError`` after *timeout* seconds.
        """
        if not self._event.wait(timeout):
            raise TimeoutError("gateway ticket not completed in time")
        if self._error is not None:
            raise self._error
        return self._result

    def exception(self) -> Optional[BaseException]:
        """The stored error, or None (None too while still pending)."""
        return self._error

    def __await__(self):
        return self.wait().__await__()

    async def wait(self) -> Tuple[Any, ...]:
        """Asyncio form of :meth:`result` (no timeout; wrap in wait_for)."""
        with self._lock:
            if not self._event.is_set():
                loop = asyncio.get_running_loop()
                future = loop.create_future()
                self._async_waiters.append((loop, future))
            else:
                future = None
        if future is not None:
            return await future
        if self._error is not None:
            raise self._error
        return self._result

    def __repr__(self) -> str:
        state = "done" if self.done() else "pending"
        return f"Ticket({self.query.digest[:8]}, {state})"


def _resolve_future(future, result, error):
    if future.cancelled():
        return
    if error is not None:
        future.set_exception(error)
    else:
        future.set_result(result)


class GatewaySession:
    """One client's ordered view of its own submissions.

    Completions are delivered per-session in completion order (not
    submission order — a cache hit completes instantly while an
    earlier wave is still in flight).  The gateway's round-robin
    scheduler guarantees inter-session fairness: each drain round
    issues at most one wave per session, so a firehose session cannot
    starve a trickle session.
    """

    def __init__(self, gateway, name: str):
        self._gateway = gateway
        self.name = name
        self.closed = False
        self._completed: Deque[Ticket] = deque()
        self._cv = threading.Condition()
        self._outstanding = 0

    # -- submitting --------------------------------------------------------

    def submit(self, query: Query) -> Ticket:
        """Submit *query*; returns a :class:`Ticket` immediately.

        Raises :class:`repro.gateway.admission.Overloaded` when the
        gateway sheds the request (queue full or rate limit) — the
        typed rejection, never silent unbounded queuing.
        """
        if self.closed:
            raise GatewayError(f"session {self.name!r} is closed")
        # The gateway itself counts the ticket as outstanding before
        # any completion can fire (a cache hit completes synchronously
        # inside _submit).
        return self._gateway._submit(self, query)

    # -- receiving ---------------------------------------------------------

    def poll(self) -> Optional[Ticket]:
        """Non-blocking: the next completed ticket, or None."""
        with self._cv:
            if self._completed:
                return self._completed.popleft()
            return None

    def recv(self, timeout: Optional[float] = None) -> Ticket:
        """Block for this session's next completed ticket.

        Raises ``TimeoutError`` after *timeout* seconds.  Completions
        come from this session's own :meth:`submit` calls *or* from
        periodic pollers it subscribed to — so ``recv`` with nothing
        outstanding is legitimate for a subscriber awaiting the next
        tick (but will block the full *timeout* on an idle session).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cv:
            while not self._completed:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    raise TimeoutError("gateway recv timed out")
                self._cv.wait(remaining)
            return self._completed.popleft()

    async def recv_async(self) -> Ticket:
        """Asyncio form of :meth:`recv` (poll-free: one thread hop)."""
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.recv)

    # -- bookkeeping -------------------------------------------------------

    def _note_completed(self, ticket: Ticket) -> None:
        with self._cv:
            self._completed.append(ticket)
            self._outstanding -= 1
            self._cv.notify_all()

    @property
    def outstanding(self) -> int:
        """Tickets submitted but not yet handed back via poll/recv."""
        with self._cv:
            return self._outstanding + len(self._completed)

    def close(self) -> None:
        """Detach from the gateway (idempotent); pending tickets survive."""
        if not self.closed:
            self.closed = True
            self._gateway._drop_session(self)

    def __enter__(self) -> "GatewaySession":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"GatewaySession({self.name!r}, outstanding={self.outstanding})"
        )
