"""Admission control: shed load *before* the tree saturates.

The paper's Figure 9 shows the front-end servicing a falling fraction
of offered load past saturation; an unprotected implementation instead
queues unboundedly and stalls.  The gateway sheds at three points,
each surfacing as a typed :class:`Overloaded` rejection the client can
back off on:

* **queue** — the submit queue of not-yet-issued waves is full
  (``max_pending``); admitting more would only grow latency.
* **rate** — a token-bucket limiter (``rate``/``burst``) is dry;
  sustained offered load exceeds the provisioned service rate.
* **backpressure** — issuing the wave hit the bounded send-queue
  (:class:`repro.transport.eventloop.SendQueueFull`, the PR-2
  signal): the tree itself is saturated right now.

Rejected requests cost O(1) work and no tree traffic — that is what
keeps the serviced fraction flat instead of collapsing.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Optional

__all__ = ["GatewayError", "Overloaded", "TokenBucket", "AdmissionController"]


class GatewayError(RuntimeError):
    """Base class for gateway-level errors."""


class Overloaded(GatewayError):
    """Typed rejection: the gateway shed this request.

    ``reason`` is one of ``"queue"``, ``"rate"``, ``"backpressure"``;
    ``retry_after`` is a best-effort hint (seconds) for client
    back-off — 0.0 when the gateway has no estimate.
    """

    def __init__(self, reason: str, retry_after: float = 0.0):
        super().__init__(
            f"gateway overloaded ({reason}); retry after {retry_after:.3f}s"
        )
        self.reason = reason
        self.retry_after = retry_after


class TokenBucket:
    """A thread-safe token-bucket rate limiter.

    Refills continuously at ``rate`` tokens/second up to ``burst``;
    :meth:`try_take` never blocks.  ``rate=None`` disables limiting
    (every take succeeds).  *clock* is injectable for deterministic
    tests.
    """

    def __init__(
        self,
        rate: Optional[float],
        burst: Optional[float] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if rate is not None and rate <= 0:
            raise ValueError("rate must be positive (or None to disable)")
        self.rate = rate
        self.burst = float(burst if burst is not None else (rate or 0) or 1.0)
        self._clock = clock
        self._tokens = self.burst
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        if self.rate is None:
            return
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._stamp = now

    def try_take(self, n: float = 1.0) -> bool:
        """Take *n* tokens if available; never blocks."""
        if self.rate is None:
            return True
        with self._lock:
            now = self._clock()
            self._refill(now)
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False

    def retry_after(self, n: float = 1.0) -> float:
        """Seconds until *n* tokens will have refilled (0.0 if unlimited)."""
        if self.rate is None:
            return 0.0
        with self._lock:
            self._refill(self._clock())
            deficit = n - self._tokens
            return max(0.0, deficit / self.rate)


class AdmissionController:
    """Combines the queue bound and the rate limiter.

    :meth:`admit` is called with the current submit-queue depth for
    every *leader* query (one that will cost a reduction wave);
    coalesced followers and cache hits bypass it — they cost no tree
    work, and charging them would defeat coalescing.  Raises
    :class:`Overloaded` on rejection, returns silently on admission.
    """

    def __init__(self, max_pending: int, bucket: Optional[TokenBucket] = None):
        if max_pending <= 0:
            raise ValueError("max_pending must be positive")
        self.max_pending = max_pending
        self.bucket = bucket

    def admit(self, pending: int) -> None:
        """Admit one leader query given *pending* queued leaders."""
        if pending >= self.max_pending:
            hint = 0.0
            if self.bucket is not None and self.bucket.rate:
                hint = pending / self.bucket.rate
            raise Overloaded("queue", retry_after=hint)
        if self.bucket is not None and not self.bucket.try_take():
            raise Overloaded("rate", retry_after=self.bucket.retry_after())
