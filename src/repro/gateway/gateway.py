"""The front-end serving gateway.

One :class:`Gateway` owns a front-end :class:`repro.core.Network` and
multiplexes many independent client sessions onto shared streams
(ROADMAP item 4; the paper's Figure 9 workload).  The division of
labour:

* **client threads** call :meth:`GatewaySession.submit` — admission
  control, cache lookup, and coalescing joins happen right there
  under the gateway lock, O(1), no tree traffic.  Leaders (queries
  that need a wave) are queued per-session.
* **the driver thread** — the network's sole owner — drains leaders
  round-robin across sessions (one wave per session per round: a
  firehose client cannot starve a trickle client), issues each as a
  multicast on the stream for its config, pumps the network, and
  fans completed waves out through the delivery sink installed with
  :meth:`repro.core.stream.Stream.set_sink`.

Wave↔result matching needs no sequence numbers: under Wait-For-All
synchronization the root releases exactly one aggregate per issued
wave in FIFO order per stream, so a per-stream deque of in-flight
entries pairs them up.  Stream-manager hooks
(``on_membership_change``) stamp epoch bumps so results that straddle
a back-end join/leave are delivered to their waiters but never cached
(see :mod:`repro.gateway.coalesce`).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict, deque
from contextlib import contextmanager
from typing import Callable, Deque, Dict, List, Optional, Tuple

from ..core.network import NetworkDownError
from ..core.packet import Packet
from ..transport.eventloop import SendQueueFull
from .admission import AdmissionController, GatewayError, Overloaded, TokenBucket
from .coalesce import CoalescingCache, InflightEntry
from .query import Query
from .session import GatewaySession, Ticket

__all__ = ["Gateway", "PeriodicPoller"]


class Gateway:
    """Serve many client sessions over one front-end network.

    Parameters
    ----------
    network:
        A ready :class:`repro.core.Network`.  The gateway's driver
        thread becomes its sole pumper; don't call blocking receives
        on it concurrently (use :meth:`paused` for maintenance).
    rate, burst:
        Token-bucket admission: sustained waves/second and burst
        allowance.  ``rate=None`` (default) disables rate limiting.
    max_pending:
        Bound on queued-but-unissued leader queries; submissions past
        it shed with ``Overloaded("queue")``.
    max_inflight:
        How many waves may be outstanding in the tree at once; extra
        leaders wait in the submit queue (pacing, not shedding).
    cache_ttl:
        Result-cache lifetime in seconds; 0 disables result caching
        (in-flight coalescing still works).
    autostart:
        Start the driver thread immediately (default).  Pass False in
        tests that drive :meth:`step` by hand.
    """

    DRIVER_WAIT = 0.002  # max blocking wait per pump when idle (seconds)

    def __init__(
        self,
        network,
        *,
        rate: Optional[float] = None,
        burst: Optional[float] = None,
        max_pending: int = 1024,
        max_inflight: int = 64,
        cache_ttl: float = 0.5,
        autostart: bool = True,
        clock: Callable[[], float] = time.monotonic,
    ):
        if max_inflight <= 0:
            raise ValueError("max_inflight must be positive")
        self.network = network
        self._clock = clock
        self.admission = AdmissionController(
            max_pending, TokenBucket(rate, burst, clock) if rate else None
        )
        self.cache = CoalescingCache(cache_ttl, clock)
        self.max_inflight = max_inflight

        self._lock = threading.RLock()
        self._pause_lock = threading.Lock()
        self._sessions: Dict[int, GatewaySession] = {}
        self._session_seq = 0
        # Round-robin submit queues: session id -> deque of (ticket,
        # entry) leaders awaiting issue.  OrderedDict + rotation gives
        # each session at most one issued wave per drain round.
        self._ready: "OrderedDict[int, Deque[Tuple[Ticket, InflightEntry]]]" = (
            OrderedDict()
        )
        self._pending_leaders = 0
        # Streams by config, and in-flight entries FIFO per stream id.
        self._streams: Dict[Tuple, object] = {}
        self._fifo: Dict[int, Deque[InflightEntry]] = {}
        self._inflight = 0
        self._epochs: Dict[Tuple, int] = {}  # stream_key -> current epoch
        # Streams whose next wave release is the post-epoch-bump grace
        # wave (delivered but never cached; see _on_result).
        self._grace: set = set()
        self._pollers: List[PeriodicPoller] = []
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

        self._init_metrics()
        if autostart:
            self.start()

    # -- observability -----------------------------------------------------

    def _init_metrics(self) -> None:
        m = self.network._core.metrics
        self._g_sessions = m.gauge(
            "gateway_sessions", "open client sessions",
            fn=lambda: len(self._sessions),
        )
        self._g_pending = m.gauge(
            "gateway_pending", "queued leader queries awaiting issue",
            fn=lambda: self._pending_leaders,
        )
        self._g_inflight = m.gauge(
            "gateway_inflight", "waves outstanding in the tree",
            fn=lambda: self._inflight,
        )
        self._c_queries = m.counter("gateway_queries", "queries submitted")
        self._c_coalesced = m.counter(
            "queries_coalesced", "queries that rode another query's wave"
        )
        self._c_cache_hits = m.counter(
            "gateway_cache_hits", "queries served from the TTL result cache"
        )
        self._c_waves = m.counter(
            "gateway_waves", "reduction waves issued by the gateway"
        )
        self._c_poller_ticks = m.counter(
            "gateway_poller_ticks",
            "periodic-poller ticks fanned out to subscribers",
        )
        self._c_invalidated = m.counter(
            "gateway_entries_invalidated",
            "cached/in-flight results dropped on membership change",
        )
        self._c_shed = {
            reason: m.counter(
                "queries_shed", "queries rejected by admission control",
                reason=reason,
            )
            for reason in ("queue", "rate", "backpressure")
        }
        self._h_service = m.histogram(
            "gateway_service_seconds", "submit-to-completion latency"
        )

    def _trace_shed(self, t0: float, reason: str) -> None:
        tracer = self.network._core.tracer
        if tracer is not None:
            tracer.span_end("gateway_admission", t0, detail=f"shed:{reason}")

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Start the driver thread (idempotent)."""
        if self._thread is not None and self._thread.is_alive():
            return
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._drive, name="gateway-driver", daemon=True
        )
        self._thread.start()

    def close(self, join_timeout: float = 5.0) -> None:
        """Stop the driver and detach from the network (idempotent).

        Outstanding tickets are completed with
        ``GatewayError("gateway closed")``; the network itself is NOT
        shut down — the caller owns it.
        """
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(join_timeout)
        with self._lock:
            orphans: List[Ticket] = []
            for q in self._ready.values():
                orphans.extend(t for t, _ in q)
            self._ready.clear()
            self._pending_leaders = 0
            for fifo in self._fifo.values():
                for entry in fifo:
                    orphans.extend(self.cache.abort(entry))
            self._fifo.clear()
            self._inflight = 0
            streams = list(self._streams.values())
            self._streams.clear()
        err = GatewayError("gateway closed")
        for ticket in orphans:
            ticket._complete(error=err)
        for stream in streams:
            try:
                stream.clear_sink()
                stream.clear_wave_hooks()
            except Exception:
                pass

    @contextmanager
    def paused(self):
        """Park the driver thread for exclusive access to the network.

        While held, the driver is blocked *between* loop iterations,
        so the caller may safely pump the network itself (membership
        changes, direct stream use) or pre-queue submissions that all
        coalesce before any wave is issued.
        """
        self._pause_lock.acquire()
        try:
            yield self
        finally:
            self._pause_lock.release()

    def __enter__(self) -> "Gateway":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- sessions ----------------------------------------------------------

    def session(self, name: Optional[str] = None) -> GatewaySession:
        """Open a new client session."""
        with self._lock:
            self._session_seq += 1
            sid = self._session_seq
            s = GatewaySession(self, name or f"session-{sid}")
            s._sid = sid
            self._sessions[sid] = s
            return s

    def _drop_session(self, session: GatewaySession) -> None:
        with self._lock:
            self._sessions.pop(getattr(session, "_sid", -1), None)
            # Leaders already queued still issue: their entry may have
            # followers from other sessions riding along.

    # -- submit path (any thread) -----------------------------------------

    def _submit(
        self, session: GatewaySession, query: Query, admitted: bool = False
    ) -> Ticket:
        tracer = self.network._core.tracer
        t0 = tracer.span_start() if tracer is not None else 0.0
        ticket = Ticket(query, session)
        # Count the ticket as outstanding BEFORE any completion can
        # fire (a cache hit completes synchronously below).
        with session._cv:
            session._outstanding += 1
        with self._lock:
            self._c_queries.value += 1
            epoch = self._epochs.get(query.stream_key, 0)
            key = query.cache_key(epoch)
            result, hit = self.cache.lookup(key)
            if hit:
                self._c_cache_hits.value += 1
                ticket.coalesced = True
                ticket.epoch = epoch
            elif self.cache.join(key, ticket):
                self._c_coalesced.value += 1
                ticket.coalesced = True
            else:
                # Leader: pays admission, will cost one wave.
                if not admitted:
                    try:
                        self.admission.admit(self._pending_leaders)
                    except Overloaded as exc:
                        self._c_shed[exc.reason].value += 1
                        self._trace_shed(t0, exc.reason)
                        with session._cv:
                            session._outstanding -= 1
                        raise
                    if tracer is not None:
                        tracer.span_end("gateway_admission", t0, detail="admit")
                entry = self.cache.open(key, ticket, epoch)
                sid = getattr(session, "_sid", 0)
                q = self._ready.get(sid)
                if q is None:
                    q = self._ready[sid] = deque()
                q.append((ticket, entry))
                self._pending_leaders += 1
        if hit:
            # Complete outside the lock: the callback touches session
            # state and may wake asyncio loops.
            ticket._complete(result=result)
        return ticket

    # -- driver loop (one thread) -----------------------------------------

    def _drive(self) -> None:
        while not self._stop.is_set():
            with self._pause_lock:
                try:
                    self.step()
                except NetworkDownError:
                    # The caller shut the network down first; park
                    # until close() completes the orphan tickets.
                    return
                except Exception:
                    if self._stop.is_set():
                        return
                    raise

    def step(self, max_wait: Optional[float] = None) -> bool:
        """One scheduler round: tick pollers, issue leaders, pump.

        Called in a loop by the driver thread; callable directly in
        tests (with ``autostart=False``) for deterministic stepping.
        Returns True if any wave was issued or traffic processed.
        """
        worked = self._tick_pollers()
        worked |= self._issue_round()
        wait = self.DRIVER_WAIT if max_wait is None else max_wait
        worked |= self.network.pump_once(wait)
        self.cache.expire()
        return worked

    def _issue_round(self) -> bool:
        """Issue up to one queued leader per session, round-robin."""
        issued = False
        while True:
            with self._lock:
                if self._inflight >= self.max_inflight or not self._ready:
                    return issued
                batch = []
                for sid in list(self._ready):
                    if self._inflight + len(batch) >= self.max_inflight:
                        break
                    q = self._ready[sid]
                    batch.append(q.popleft())
                    if not q:
                        del self._ready[sid]
                    else:
                        self._ready.move_to_end(sid)  # rotate fairness
                self._pending_leaders -= len(batch)
            if not batch:
                return issued
            for ticket, entry in batch:
                self._issue(ticket, entry)
                issued = True

    def _issue(self, ticket: Ticket, entry: InflightEntry) -> None:
        query = ticket.query
        try:
            stream = self._stream_for(query)
            packet = Packet(stream.stream_id, query.tag, query.fmt, query.values)
            stream.send_packet(packet)
        except SendQueueFull:
            exc = Overloaded("backpressure", retry_after=self.DRIVER_WAIT)
            self._c_shed["backpressure"].value += 1
            for waiter in self.cache.abort(entry):
                waiter._complete(error=exc)
            return
        except Exception as e:
            err = GatewayError(f"wave issue failed: {e!r}")
            for waiter in self.cache.abort(entry):
                waiter._complete(error=err)
            return
        with self._lock:
            self._c_waves.value += 1
            self._inflight += 1
            self._fifo.setdefault(stream.stream_id, deque()).append(entry)

    def _stream_for(self, query: Query):
        """Get or lazily create the shared stream for a query's config."""
        stream = self._streams.get(query.stream_key)
        if stream is not None:
            return stream
        net = self.network
        if query.ranks is None:
            comm = net.get_broadcast_communicator()
        else:
            comm = net.new_communicator(sorted(query.ranks))
        stream = net.new_stream(
            comm,
            transform=query.transform,
            sync=query.sync,
            sync_timeout=query.sync_timeout,
            pattern=query.pattern,
        )
        skey = query.stream_key
        stream.set_sink(
            lambda packet, _sid=stream.stream_id: self._on_result(_sid, packet)
        )
        stream.set_wave_hooks(
            on_membership_change=(
                lambda _stream_id, epoch, _k=skey: self._on_epoch(_k, epoch)
            )
        )
        with self._lock:
            self._streams[skey] = stream
            self._epochs.setdefault(skey, stream.membership_epoch)
        return stream

    # -- completion path (driver thread, via sink) ------------------------

    def _on_result(self, stream_id: int, packet: Packet) -> None:
        with self._lock:
            fifo = self._fifo.get(stream_id)
            if not fifo:
                return  # late wave after close/abort: drop
            entry = fifo.popleft()
            self._inflight -= 1
            skey = entry.key[0]
            current = self._epochs.get(skey, entry.epoch)
            # A result is cacheable only if (a) the membership it was
            # issued under is still current AND (b) it is not the
            # grace wave — the first release after an epoch bump,
            # which the synchronization filters may complete without
            # the joiner's contribution (joining-exemption semantics).
            # Any release clears the exemption tree-wide, so grace
            # lasts exactly one wave.
            fresh = current == entry.epoch and skey not in self._grace
            self._grace.discard(skey)
            if not fresh:
                self._c_invalidated.value += 1
        values = packet.unpack()
        waiters = self.cache.complete(entry, values, cacheable=fresh)
        now = self._clock()
        for ticket in waiters:
            ticket.epoch = entry.epoch
            self._h_service.observe(now - ticket.submitted_at)
            ticket._complete(result=values)

    def _on_epoch(self, stream_key: Tuple, epoch: int) -> None:
        """Stream-manager hook: membership changed under a stream."""
        with self._lock:
            self._epochs[stream_key] = epoch
            self._grace.add(stream_key)
        dropped = self.cache.drop_stale(stream_key, epoch)
        if dropped:
            self._c_invalidated.value += dropped

    # -- pollers -----------------------------------------------------------

    def periodic(self, query: Query, period: float) -> "PeriodicPoller":
        """Register a recurring query; returns its poller handle.

        Every *period* seconds the gateway submits *query* once per
        subscribed session; identical submissions in the same tick
        coalesce onto ONE wave whose result every subscriber receives
        (the EMPOWER aggregation-poller shape).
        """
        poller = PeriodicPoller(self, query, period, self._clock)
        with self._lock:
            self._pollers.append(poller)
        return poller

    def _tick_pollers(self) -> bool:
        now = self._clock()
        fired = False
        with self._lock:
            due = [p for p in self._pollers if p.active and p.next_due <= now]
        for poller in due:
            fired |= poller._fire(now)
        return fired

    # -- introspection -----------------------------------------------------

    def stats(self) -> Dict[str, float]:
        """Point-in-time gateway counters (a convenience snapshot)."""
        base = {
            "sessions": len(self._sessions),
            "pending": self._pending_leaders,
            "inflight": self._inflight,
            "queries": self._c_queries.value,
            "coalesced": self._c_coalesced.value,
            "cache_hits": self._c_cache_hits.value,
            "waves": self._c_waves.value,
            "poller_ticks": self._c_poller_ticks.value,
            "invalidated": self._c_invalidated.value,
        }
        for reason, c in self._c_shed.items():
            base[f"shed_{reason}"] = c.value
        return base


class PeriodicPoller:
    """A recurring query fanned out to subscriber sessions.

    Created via :meth:`Gateway.periodic`.  Subscribers receive one
    completed ticket per period on their normal ``poll``/``recv``
    path; all subscribers in a period share one wave.
    """

    def __init__(self, gateway: Gateway, query: Query, period: float, clock):
        if period <= 0:
            raise ValueError("period must be positive")
        self.gateway = gateway
        self.query = query
        self.period = period
        self.active = True
        self._clock = clock
        self.next_due = clock()  # first tick fires immediately
        self._subscribers: List[GatewaySession] = []
        self._lock = threading.Lock()

    def subscribe(self, session: GatewaySession) -> None:
        """Add *session* to the fan-out list (idempotent)."""
        with self._lock:
            if session not in self._subscribers:
                self._subscribers.append(session)

    def unsubscribe(self, session: GatewaySession) -> None:
        """Remove *session* (idempotent)."""
        with self._lock:
            if session in self._subscribers:
                self._subscribers.remove(session)

    def stop(self) -> None:
        """Deactivate; no further waves fire."""
        self.active = False

    def _fire(self, now: float) -> bool:
        self.next_due = now + self.period
        with self._lock:
            subscribers = [s for s in self._subscribers if not s.closed]
        if not subscribers:
            return False
        for session in subscribers:
            # Pollers bypass admission: their cadence was provisioned
            # at registration, and every tick costs at most one wave.
            self.gateway._submit(session, self.query, admitted=True)
        self.gateway._c_poller_ticks.value += 1
        return True
