"""``repro.gateway`` — the front-end serving gateway (ROADMAP item 4).

Multiplexes many independent client sessions onto shared MRNet
streams: per-session round-robin fairness, admission control with
typed :class:`Overloaded` rejections (token bucket + bounded-queue +
send-queue backpressure), and an in-flight query-coalescing result
cache so N identical queries cost one reduction wave (the paper's
Figure 9 serviced-fraction workload).

Quick start::

    from repro.core import Network
    from repro.filters import TFILTER_SUM
    from repro.gateway import BackendResponder, Gateway, Query
    from repro.topology import balanced_tree

    net = Network(balanced_tree(4, 2), colocate=True)
    responder = BackendResponder(net.backends)   # echo daemons
    with Gateway(net, rate=500.0, cache_ttl=0.5) as gw:
        session = gw.session("dashboard-1")
        ticket = session.submit(Query("%d", (1,), transform=TFILTER_SUM))
        print(ticket.result(timeout=5.0))        # (len(net.backends),)
    responder.stop()
    net.shutdown()

See ``docs/gateway.md`` for the full lifecycle, fairness, and
coalescing semantics.
"""

from .admission import AdmissionController, GatewayError, Overloaded, TokenBucket
from .coalesce import CoalescingCache
from .gateway import Gateway, PeriodicPoller
from .query import Query
from .responder import BackendResponder
from .session import GatewaySession, Ticket

__all__ = [
    "AdmissionController",
    "BackendResponder",
    "CoalescingCache",
    "Gateway",
    "GatewayError",
    "GatewaySession",
    "Overloaded",
    "PeriodicPoller",
    "Query",
    "Ticket",
    "TokenBucket",
]
