"""In-flight query coalescing and TTL result caching.

The economics of the serving gateway: N identical queries must cost
ONE reduction wave.  Two mechanisms deliver that:

* **in-flight coalescing** — the first submitter of a key becomes the
  *leader* and issues a wave; everyone submitting the same key before
  the wave completes becomes a *follower* and just waits on the same
  entry.  Completion fans the one result out to all of them.
* **TTL result cache** — after completion the result is kept for
  ``ttl`` seconds, so a fresh submitter inside the window gets an
  immediate answer with no wave at all.

Keys come from :meth:`repro.gateway.query.Query.cache_key` and embed
the stream's membership epoch, so a back-end join/leave re-keys the
world: entries cached under the old rank set become unreachable (and
are eagerly dropped by :meth:`CoalescingCache.drop_stale`).
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["CoalescingCache", "InflightEntry"]


class InflightEntry:
    """One outstanding wave and the tickets waiting on its result."""

    __slots__ = ("key", "waiters", "epoch", "issued_at")

    def __init__(self, key: Tuple, epoch: int, issued_at: float):
        self.key = key
        self.epoch = epoch
        self.issued_at = issued_at
        self.waiters: List = []


class CoalescingCache:
    """Thread-safe in-flight entry table + TTL'd result cache.

    ``ttl=0`` disables result caching (coalescing of concurrent
    identical queries still works — that needs no storage beyond the
    in-flight entry).  *clock* is injectable for deterministic tests.
    """

    def __init__(
        self, ttl: float = 0.5, clock: Callable[[], float] = time.monotonic
    ):
        if ttl < 0:
            raise ValueError("ttl must be >= 0")
        self.ttl = ttl
        self._clock = clock
        self._lock = threading.Lock()
        self._inflight: Dict[Tuple, InflightEntry] = {}
        self._results: Dict[Tuple, Tuple[object, float]] = {}

    # -- submit-side -------------------------------------------------------

    def lookup(self, key: Tuple):
        """Return the cached ``(result, True)`` for *key*, or ``(None, False)``."""
        with self._lock:
            hit = self._results.get(key)
            if hit is None:
                return None, False
            result, expires = hit
            if self._clock() >= expires:
                del self._results[key]
                return None, False
            return result, True

    def join(self, key: Tuple, ticket) -> bool:
        """Attach *ticket* to an in-flight entry; True if one existed."""
        with self._lock:
            entry = self._inflight.get(key)
            if entry is None:
                return False
            entry.waiters.append(ticket)
            return True

    def open(self, key: Tuple, ticket, epoch: int) -> InflightEntry:
        """Create the in-flight entry for *key* with *ticket* as leader."""
        with self._lock:
            if key in self._inflight:
                raise GatewayInvariantError(f"duplicate in-flight key {key}")
            entry = InflightEntry(key, epoch, self._clock())
            entry.waiters.append(ticket)
            self._inflight[key] = entry
            return entry

    # -- completion-side ---------------------------------------------------

    def complete(self, entry: InflightEntry, result, cacheable: bool = True):
        """Close *entry*, optionally caching *result*; returns the waiters.

        ``cacheable=False`` delivers to the waiters but stores nothing
        — used when membership changed mid-wave, so the aggregate the
        waiters asked for (and got) must not be replayed to anyone
        arriving under the new rank set.
        """
        with self._lock:
            self._inflight.pop(entry.key, None)
            if cacheable and self.ttl > 0:
                self._results[entry.key] = (result, self._clock() + self.ttl)
            return list(entry.waiters)

    def abort(self, entry: InflightEntry):
        """Drop *entry* without a result (issue failed); returns the waiters."""
        with self._lock:
            self._inflight.pop(entry.key, None)
            return list(entry.waiters)

    # -- maintenance -------------------------------------------------------

    def drop_stale(self, stream_key: Tuple, epoch: int) -> int:
        """Eagerly drop cached results for *stream_key* older than *epoch*.

        Epoch-in-key already makes them unreachable; this reclaims the
        memory immediately and returns how many entries were dropped
        (surfaced as the ``gateway_entries_invalidated`` counter).
        """
        with self._lock:
            stale = [
                k for k in self._results
                if k[0] == stream_key and k[2] != epoch
            ]
            for k in stale:
                del self._results[k]
            return len(stale)

    def expire(self) -> int:
        """Drop results past their TTL; returns how many were dropped."""
        now = self._clock()
        with self._lock:
            dead = [k for k, (_, exp) in self._results.items() if now >= exp]
            for k in dead:
                del self._results[k]
            return len(dead)

    def stats(self) -> Dict[str, int]:
        """Point-in-time sizes: inflight entries, cached results, waiters."""
        with self._lock:
            return {
                "inflight": len(self._inflight),
                "cached": len(self._results),
                "waiters": sum(
                    len(e.waiters) for e in self._inflight.values()
                ),
            }


class GatewayInvariantError(AssertionError):
    """An internal coalescing invariant was violated (a gateway bug)."""
