"""Gateway query descriptions and coalescing keys.

A :class:`Query` is the client-facing unit of work: "multicast this
payload down a stream with these filters, give me the aggregated
result".  Two queries that would produce the same reduction wave must
compare equal and hash equal — that equivalence is what lets the
gateway coalesce a thousand identical dashboard refreshes onto one
wave.  Equivalence is decided by the *canonical wire encoding* of the
payload (:meth:`repro.core.packet.Packet.to_bytes`), so a list payload
and the equivalent ndarray payload coalesce, plus the stream
configuration (target ranks, transform/sync filters, sync timeout).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, FrozenSet, Optional, Tuple

from ..core.packet import Packet
from ..core.protocol import FIRST_APP_TAG, WAVE_REDUCE
from ..filters import SFILTER_WAITFORALL, TFILTER_NULL

__all__ = ["Query"]


@dataclass(frozen=True)
class Query:
    """An immutable description of one gateway request.

    ``ranks=None`` (the default) targets the broadcast communicator —
    every back-end currently attached; a frozenset restricts the wave
    to that subset.  ``transform``/``sync`` are filter ids from the
    network's registry, exactly as passed to ``Network.new_stream``.
    """

    fmt: str
    values: Tuple[Any, ...] = ()
    transform: int = TFILTER_NULL
    sync: int = SFILTER_WAITFORALL
    ranks: Optional[FrozenSet[int]] = None
    tag: int = FIRST_APP_TAG
    sync_timeout: float = 0.0
    pattern: int = WAVE_REDUCE
    _digest: Optional[str] = field(
        default=None, repr=False, compare=False, hash=False
    )

    def __post_init__(self):
        # Normalise mutable payloads so equal queries hash equal.
        if not isinstance(self.values, tuple):
            object.__setattr__(self, "values", tuple(self.values))
        if self.ranks is not None and not isinstance(self.ranks, frozenset):
            object.__setattr__(self, "ranks", frozenset(self.ranks))

    @property
    def digest(self) -> str:
        """SHA-1 of the payload's canonical wire encoding (memoised)."""
        if self._digest is None:
            wire = Packet(0, self.tag, self.fmt, self.values).to_bytes()
            object.__setattr__(
                self, "_digest", hashlib.sha1(wire).hexdigest()
            )
        return self._digest

    @property
    def stream_key(self) -> Tuple:
        """The stream-configuration part of the coalescing key.

        Queries sharing a ``stream_key`` can ride the same underlying
        :class:`repro.core.stream.Stream`; the gateway creates one
        stream per distinct key and reuses it across waves.
        """
        return (self.ranks, self.transform, self.sync,
                self.sync_timeout, self.pattern)

    def cache_key(self, epoch: int) -> Tuple:
        """The full coalescing-cache key under membership *epoch*.

        The epoch is baked into the key: when a back-end joins or
        leaves, the stream's membership epoch bumps and every entry
        cached under the old rank set becomes unreachable — stale
        aggregates can never be served for the new membership.
        """
        return (self.stream_key, self.digest, epoch)
