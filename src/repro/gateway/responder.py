"""A back-end driver for gateway scenarios, tests, and benchmarks.

Real MRNet back-ends run tool daemons that answer multicasts with
local measurements.  :class:`BackendResponder` plays that role for a
whole list of in-process :class:`repro.core.backend.BackEnd` handles:
one thread round-robins ``poll()`` over them and answers every
arriving packet with a reply function (default: echo the payload, so
a ``TFILTER_SUM`` wave over N back-ends yields ``N * value``).

Elastic joiners (``Network.attach_backend()``) can be added to a live
responder with :meth:`add` — used by the membership/coalescing
interaction tests.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, List, Optional, Tuple

__all__ = ["BackendResponder"]


class BackendResponder:
    """Poll a set of back-ends and answer every packet.

    ``reply(rank, packet) -> tuple`` produces the response values for
    a packet arriving at back-end *rank*; None (default) echoes the
    packet's own values.  The responder thread is a daemon and stops
    on :meth:`stop` or when every back-end reports shutdown.
    """

    def __init__(
        self,
        backends,
        reply: Optional[Callable[[int, object], Tuple]] = None,
        poll_interval: float = 0.0002,
        autostart: bool = True,
    ):
        # Accept a Network.backends-style dict or a list of handles.
        if hasattr(backends, "values"):
            backends = list(backends.values())
        self._backends: List = list(backends)
        self._reply = reply
        self._poll_interval = poll_interval
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self.replies = 0
        self._thread = threading.Thread(
            target=self._run, name="backend-responder", daemon=True
        )
        if autostart:
            self.start()

    def start(self) -> None:
        """Start the responder thread (idempotent)."""
        if not self._thread.is_alive() and not self._stop.is_set():
            self._thread.start()

    def add(self, backend) -> None:
        """Adopt a newly attached (elastic-join) back-end."""
        with self._lock:
            self._backends.append(backend)

    def remove(self, backend) -> None:
        """Stop driving *backend* (before ``BackEnd.leave()``)."""
        with self._lock:
            if backend in self._backends:
                self._backends.remove(backend)

    def stop(self, join_timeout: float = 5.0) -> None:
        """Stop the thread (idempotent)."""
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(join_timeout)

    def _run(self) -> None:
        while not self._stop.is_set():
            with self._lock:
                backends = list(self._backends)
            if not backends:
                time.sleep(self._poll_interval)
                continue
            worked = False
            all_down = True
            for be in backends:
                if be.shut_down:
                    continue
                all_down = False
                try:
                    while True:
                        item = be.poll()
                        if item is None:
                            break
                        packet, stream = item
                        values = (
                            packet.unpack()
                            if self._reply is None
                            else self._reply(be.rank, packet)
                        )
                        stream.send(packet.fmt.canonical, *values,
                                    tag=packet.tag)
                        self.replies += 1
                        worked = True
                except Exception:
                    if self._stop.is_set():
                        return
                    # A torn-down back-end mid-poll: skip it this round.
                    continue
            if all_down:
                return
            if not worked:
                time.sleep(self._poll_interval)
