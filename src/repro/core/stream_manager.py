"""Stream managers: per-stream control flow inside a process (§2.3).

"Internal processes use a stream manager object to manage control flow
and route packets.  When a stream is established, an internal process
creates a new stream manager and initializes it with the set of
end-points to be associated with the stream and the filter(s) to be
used on data packets sent on the stream."

A :class:`StreamManager` owns, for one stream at one process:

* the stream's endpoint set (back-end ranks);
* the child links relevant to the stream (its "children nodes");
* one synchronization-filter instance over those links;
* the upstream transformation filter plus its per-node state;
* optionally a downstream transformation filter plus state.

The upstream path is ``push_upstream`` (packet in, zero or more
aggregated packets out); downstream fan-out is resolved by the node's
routing table, with ``transform_downstream`` applied first when a
downstream filter is bound.

Lazy-packet invariant: synchronization filters never inspect payloads
(they queue and release whole packets), and the null transformation
filter passes packets through by reference, so a ``TFILTER_NULL``
stream propagates undecoded lazy wire packets end-to-end — the node
relays the original frame bytes without ever touching field values.
Any value-inspecting filter (sum, concat, ...) triggers the deferred
decode on first access via ``Packet.raw_values``.
"""

from __future__ import annotations

import time
from typing import Callable, FrozenSet, List, Optional, Sequence

from ..filters.base import FunctionFilter
from ..filters.registry import (
    SFILTER_DONTWAIT,
    SFILTER_TIMEOUT,
    TFILTER_NULL,
    FilterRegistry,
)
from ..filters.sync import SynchronizationFilter
from ..obs.metrics import MetricsRegistry
from .packet import Packet

__all__ = ["StreamManager"]


class StreamManager:
    """Per-stream packet processing at one tree node.

    When *owner* (the hosting :class:`~repro.core.commnode.NodeCore`)
    is given, the manager binds per-stream labelled instruments into
    the owner's metrics registry — ``waves_released{stream,filter}``
    and the ``wave_latency_seconds{stream}`` histogram — and emits
    ``sync_wait`` / ``filter`` trace spans whenever the owner has a
    tracer attached.  Wave latency is measured from the first packet
    that opens a wave to the instant the synchronization filter
    releases it: exactly the Figure 3 synchronization-layer dwell the
    paper's wave experiments time externally.
    """

    def __init__(
        self,
        stream_id: int,
        endpoints: Sequence[int],
        child_links: Sequence[int],
        sync_filter: SynchronizationFilter,
        transform: FunctionFilter,
        down_transform: Optional[FunctionFilter] = None,
        clock: Optional[Callable[[], float]] = None,
        owner=None,
    ):
        self.stream_id = stream_id
        self.endpoints: FrozenSet[int] = frozenset(endpoints)
        self.child_links = list(child_links)
        self.sync = sync_filter
        self.transform = transform
        self.transform_state = transform.make_state()
        # Generic hint for filters that need their fan-in (e.g. the
        # Performance Data Aggregation filter aligns one queue per child).
        self.transform_state.setdefault("n_children", len(self.child_links))
        self.down_transform = down_transform
        self.down_state = down_transform.make_state() if down_transform else None
        self.closed = False
        # Bumped on every wave-membership change (a child link dropped
        # or adopted); lets tools correlate aggregates with the rank
        # set that produced them (see TAG_RANKS_CHANGED).
        self.membership_epoch = 0
        # Pure pass-through streams (DONTWAIT sync, null transform, no
        # downstream filter) take the §4.2.1 negligible-overhead relay
        # path: the node forwards each packet without running the wave
        # machinery at all.  Set by :meth:`create` from the filter ids.
        self.passthrough = False
        # -- observability --------------------------------------------
        self._owner = owner
        self._clock = clock or (owner.clock if owner is not None else time.monotonic)
        registry = owner.metrics if owner is not None else MetricsRegistry()
        self._c_waves_released = registry.counter(
            "waves_released",
            "Waves released by this stream's synchronization filter",
            stream=stream_id,
            filter=transform.name,
        )
        self._h_wave_latency = registry.histogram(
            "wave_latency_seconds",
            "First packet in to wave released (sync-layer dwell)",
            stream=stream_id,
        )
        registry.gauge(
            "membership_epoch",
            "Wave-membership generation for this stream (bumps on every "
            "child link drop or adoption; see TAG_RANKS_CHANGED)",
            fn=lambda: self.membership_epoch,
            stream=stream_id,
        )
        # Armed by the first packet that opens a wave; cleared when a
        # wave releases.  One attribute test per pushed packet, one
        # clock read per wave — cheap enough to stay always-on.
        self._wave_t0: Optional[float] = None

    @classmethod
    def create(
        cls,
        stream_id: int,
        endpoints: Sequence[int],
        child_links: Sequence[int],
        registry: FilterRegistry,
        sync_filter_id: int,
        transform_filter_id: int,
        sync_timeout: float = 0.0,
        down_transform_filter_id: int = 0,
        clock: Callable[[], float] = None,
        owner=None,
    ) -> "StreamManager":
        """Instantiate filters from registry ids (the NEW_STREAM path)."""
        clock = clock or time.monotonic
        kwargs = {}
        if sync_filter_id == SFILTER_TIMEOUT:
            kwargs["timeout"] = sync_timeout if sync_timeout > 0 else 0.05
        sync = registry.make_sync(sync_filter_id, child_links, clock=clock, **kwargs)
        transform = registry.get_transform(transform_filter_id)
        down = (
            registry.get_transform(down_transform_filter_id)
            if down_transform_filter_id
            else None
        )
        manager = cls(
            stream_id, endpoints, child_links, sync, transform, down,
            clock=clock, owner=owner,
        )
        manager.passthrough = (
            sync_filter_id == SFILTER_DONTWAIT
            and transform_filter_id == TFILTER_NULL
            and down_transform_filter_id == 0
        )
        return manager

    # -- upstream ----------------------------------------------------------

    def push_upstream(self, link_id: int, packet: Packet) -> List[Packet]:
        """Process one packet arriving from a child; return outputs."""
        if self.closed:
            return []
        if self._wave_t0 is None:
            self._wave_t0 = self._clock()
        waves = self.sync.push(link_id, packet)
        return self._run_waves(waves)

    def poll_upstream(self) -> List[Packet]:
        """Re-check time-based synchronization criteria."""
        if self.closed:
            return []
        return self._run_waves(self.sync.poll())

    def drop_link(self, link_id: int) -> List[Packet]:
        """A child link closed: release its backlog through the filter."""
        backlog = self.sync.remove_child(link_id)
        if link_id in self.child_links:
            self.child_links.remove(link_id)
        self.membership_epoch += 1
        out: List[Packet] = []
        if backlog:
            out.extend(self.transform(backlog, self.transform_state))
        out.extend(self._run_waves(self.sync.poll()))
        return out

    def add_link(self, link_id: int) -> None:
        """Adopt a child link mid-stream (tree repair).

        The link joins wave alignment with *joining* semantics: an
        in-flight wave completes over the pre-adoption membership; the
        new link participates from its first contribution (or the next
        wave) onward.
        """
        if link_id in self.child_links:
            return
        self.child_links.append(link_id)
        self.sync.add_child(link_id, joining=True)
        self.membership_epoch += 1

    def flush_upstream(self) -> List[Packet]:
        """Stream teardown: push every held packet through the filter."""
        return self._run_waves(self.sync.flush())

    def _run_waves(self, waves) -> List[Packet]:
        out: List[Packet] = []
        tracer = self._owner.tracer if self._owner is not None else None
        for wave in waves:
            released = self._clock()
            if self._wave_t0 is not None:
                self._h_wave_latency.observe(released - self._wave_t0)
                if tracer is not None:
                    tracer.span(
                        "sync_wait",
                        self._wave_t0,
                        released,
                        self.stream_id,
                        detail=self.sync.name,
                    )
                self._wave_t0 = None
            if tracer is None:
                out.extend(self.transform(wave, self.transform_state))
            else:
                t0 = tracer.span_start()
                out.extend(self.transform(wave, self.transform_state))
                tracer.span_end(
                    "filter", t0, self.stream_id, detail=self.transform.name
                )
            self._c_waves_released.value += 1
        return out

    # -- downstream --------------------------------------------------------

    def transform_downstream(self, packet: Packet) -> List[Packet]:
        """Apply the downstream transformation filter, if bound.

        Downstream flows have no synchronization stage (§2.3: "First,
        synchronization filters are not supported for downstream data
        flows").
        """
        if self.down_transform is None:
            return [packet]
        return self.down_transform([packet], self.down_state)

    # -- misc -----------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Packets currently held by the synchronization filter."""
        return self.sync.pending

    def next_deadline(self) -> Optional[float]:
        """Earliest clock time a time-based criterion could fire."""
        if self.closed:
            return None
        return self.sync.next_deadline()

    def close(self) -> None:
        self.closed = True

    def __repr__(self) -> str:
        return (
            f"StreamManager(stream={self.stream_id}, "
            f"endpoints={sorted(self.endpoints)}, links={self.child_links}, "
            f"sync={self.sync.name}, transform={self.transform.name})"
        )
