"""Stream managers: per-stream control flow inside a process (§2.3).

"Internal processes use a stream manager object to manage control flow
and route packets.  When a stream is established, an internal process
creates a new stream manager and initializes it with the set of
end-points to be associated with the stream and the filter(s) to be
used on data packets sent on the stream."

A :class:`StreamManager` owns, for one stream at one process:

* the stream's endpoint set (back-end ranks);
* the child links relevant to the stream (its "children nodes");
* one synchronization-filter instance over those links;
* the upstream transformation filter plus its per-node state;
* optionally a downstream transformation filter plus state.

The upstream path is ``push_upstream`` (packet in, zero or more
aggregated packets out); downstream fan-out is resolved by the node's
routing table, with ``transform_downstream`` applied first when a
downstream filter is bound.

Lazy-packet invariant: synchronization filters never inspect payloads
(they queue and release whole packets), and the null transformation
filter passes packets through by reference, so a ``TFILTER_NULL``
stream propagates undecoded lazy wire packets end-to-end — the node
relays the original frame bytes without ever touching field values.
Any value-inspecting filter (sum, concat, ...) triggers the deferred
decode on first access via ``Packet.raw_values``.

Chunked waves (pipelined collectives)
-------------------------------------

Streams created with ``chunk_bytes > 0`` carry large array payloads as
``TAG_CHUNK`` pipeline fragments (see :mod:`repro.core.chunking`).
When the upstream transform is *chunkwise* (element-wise reductions:
min/max/sum/avg) and the synchronizer is Wait-For-All, the manager
runs the filter **incrementally**: one fragment from every child —
heads aligned on ``(chunk_index, n_chunks)`` — triggers a partial
filter invocation whose single output is immediately re-framed as a
fragment of this node's own output wave and forwarded.  Hop *k* thus
reduces chunk *i* while hop *k−1* reduces chunk *i+1*, which is what
flattens Figure 7c's latency-vs-depth curve (Träff, arXiv:2109.12626).

For every other configuration (non-chunkwise filters, TimeOut/DontWait
sync) fragments are reassembled per child link before entering the
classic synchronization path, so chunked and whole-wave results are
byte-identical by construction.  A child that dies mid-wave leaves a
truncated fragment sequence; the manager discards the poisoned
partial wave at every affected level (``chunk_waves_aborted``) and
realigns on the next wave boundary, under the bumped membership epoch.

Crash-consistent waves (elastic robustness)
-------------------------------------------

Chunk framing already carries a per-stream monotonic output wave id in
every fragment prefix, so crash consistency rides the existing wire
format.  On the *send* side the manager keeps a bounded history of its
own emitted waves (:data:`HISTORY_MAX_WAVES` waves /
:data:`HISTORY_MAX_BYTES` bytes, mirroring the transport send-queue
bound); after a parent repair the node replays the un-ACKed suffix via
:meth:`StreamManager.resend_since`, and ``TAG_WAVE_ACK`` from the
parent prunes it.  On the *receive* side a per-child-link high
watermark of completed input waves drops duplicate retransmissions and
turns a fresh gap into a single ``TAG_WAVE_NACK`` toward that child.
Watermarks and resumable filter state (``checkpoint_state``) are
shipped one hop up in periodic ``TAG_CHECKPOINT`` packets so an
adopter can seed dedup for children it inherits from a dead node.
Output wave ids deliberately bump on aborts without emitting, so gaps
are *normal*; a NACK is sent at most once per (link, expected-seq) and
a resender silently skips seqs its history has already aged out.
"""

from __future__ import annotations

import logging
import time
from collections import deque
from typing import Callable, Deque, Dict, FrozenSet, List, Optional, Sequence

from ..filters.base import FunctionFilter
from ..filters.registry import (
    SFILTER_DONTWAIT,
    SFILTER_TIMEOUT,
    SFILTER_WAITFORALL,
    TFILTER_NULL,
    FilterRegistry,
)
from ..filters.sync import SynchronizationFilter, WaitForAllFilter
from ..obs.metrics import MetricsRegistry
from .chunking import (
    ChunkReassembler,
    chunk_meta,
    is_chunk,
    reassemble,
    split_packet,
    strip_chunk,
    wrap_chunk,
)
from .packet import Packet
from .protocol import WAVE_REDUCE

__all__ = [
    "StreamManager",
    "CHUNK_BYTE_BUCKETS",
    "HISTORY_MAX_WAVES",
    "HISTORY_MAX_BYTES",
    "ACK_STRIDE",
]

log = logging.getLogger(__name__)

#: Power-of-two byte buckets for the per-stream ``chunk_bytes``
#: histogram (1 KiB .. 16 MiB covers every sane fragment size).
CHUNK_BYTE_BUCKETS = tuple(1 << p for p in range(10, 25))

#: Retransmit-history bound, in output waves.  Deep enough to cover
#: the waves a parent can plausibly lose between heartbeat detection
#: and repair; shallow enough that history stays a rounding error
#: next to the chunk queues themselves.
HISTORY_MAX_WAVES = 8

#: Retransmit-history bound, in encoded payload bytes.  Mirrors the
#: transport's per-link send-queue ceiling
#: (:data:`repro.transport.eventloop.SEND_QUEUE_MAX_BYTES`) so a
#: stream can never pin more memory in history than one link may
#: queue under backpressure.
HISTORY_MAX_BYTES = 4 << 20

#: Completed input waves between ``TAG_WAVE_ACK`` emissions toward a
#: child — the child prunes its history up to the ACKed seq.
ACK_STRIDE = 4


class StreamManager:
    """Per-stream packet processing at one tree node.

    When *owner* (the hosting :class:`~repro.core.commnode.NodeCore`)
    is given, the manager binds per-stream labelled instruments into
    the owner's metrics registry — ``waves_released{stream,filter}``
    and the ``wave_latency_seconds{stream}`` histogram — and emits
    ``sync_wait`` / ``filter`` trace spans whenever the owner has a
    tracer attached.  Wave latency is measured from the first packet
    that opens a wave to the instant the synchronization filter
    releases it: exactly the Figure 3 synchronization-layer dwell the
    paper's wave experiments time externally.

    Worker-pool offload: when the owner carries a
    :class:`~repro.transport.workers.FilterWorkerPool` (a colocated
    event loop with ``workers > 0``), classic (non-incremental) waves
    whose payload reaches :attr:`OFFLOAD_MIN_BYTES` run their transform
    on a worker thread instead of stalling the shared loop; outputs
    re-enter on the loop thread via the pool's completion drain and go
    straight to ``owner._queue_up``.  Ordering holds because the pool
    serializes per manager (per ``key=self``) and, once one wave is in
    flight, every subsequent wave of this stream offloads too — the
    transform state is only ever touched by one thread at a time, in
    arrival order.  Incremental chunk filtering never offloads: each
    invocation is already bounded by ``chunk_bytes``.
    """

    #: Classic waves at or above this many payload bytes are shipped
    #: to the owner's worker pool (when one is attached).
    OFFLOAD_MIN_BYTES = 128 << 10

    def __init__(
        self,
        stream_id: int,
        endpoints: Sequence[int],
        child_links: Sequence[int],
        sync_filter: SynchronizationFilter,
        transform: FunctionFilter,
        down_transform: Optional[FunctionFilter] = None,
        clock: Optional[Callable[[], float]] = None,
        owner=None,
        chunk_bytes: int = 0,
        wave_pattern: int = WAVE_REDUCE,
    ):
        self.stream_id = stream_id
        self.endpoints: FrozenSet[int] = frozenset(endpoints)
        self.child_links = list(child_links)
        self.sync = sync_filter
        # True when the synchronization criterion has a time component
        # (it overrides ``next_deadline``).  The owning node only
        # tracks such streams in its O(active) deadline machinery —
        # untimed streams never enter the per-tick poll set.
        self.sync_timed = (
            type(sync_filter).next_deadline
            is not SynchronizationFilter.next_deadline
        )
        self.transform = transform
        self.chunk_bytes = int(chunk_bytes or 0)
        self.wave_pattern = wave_pattern
        # Incremental (per-chunk) filtering needs a reduction that
        # commutes with slicing and alignment semantics with no time
        # component; everything else reassembles fragments first.
        self.incremental = (
            self.chunk_bytes > 0
            and getattr(transform, "chunkwise", False)
            and isinstance(sync_filter, WaitForAllFilter)
        )
        self.transform_state = transform.make_state()
        # Generic hint for filters that need their fan-in (e.g. the
        # Performance Data Aggregation filter aligns one queue per child).
        self.transform_state.setdefault("n_children", len(self.child_links))
        self.down_transform = down_transform
        self.down_state = down_transform.make_state() if down_transform else None
        self.closed = False
        # Bumped on every wave-membership change (a child link dropped
        # or adopted); lets tools correlate aggregates with the rank
        # set that produced them (see TAG_RANKS_CHANGED).
        self.membership_epoch = 0
        # Front-end hooks (both optional, invoked synchronously on the
        # owner's pump thread): ``on_wave_complete(stream_id, epoch)``
        # fires each time the synchronization filter releases a wave,
        # ``on_membership_change(stream_id, epoch)`` each time the
        # membership epoch bumps.  The serving gateway
        # (:mod:`repro.gateway`) uses them to stamp completion epochs
        # and eagerly invalidate coalesced results.
        self.on_wave_complete: Optional[Callable[[int, int], None]] = None
        self.on_membership_change: Optional[Callable[[int, int], None]] = None
        # Pure pass-through streams (DONTWAIT sync, null transform, no
        # downstream filter) take the §4.2.1 negligible-overhead relay
        # path: the node forwards each packet without running the wave
        # machinery at all.  Set by :meth:`create` from the filter ids.
        self.passthrough = False
        # -- observability --------------------------------------------
        self._owner = owner
        self._clock = clock or (owner.clock if owner is not None else time.monotonic)
        registry = owner.metrics if owner is not None else MetricsRegistry()
        self._c_waves_released = registry.counter(
            "waves_released",
            "Waves released by this stream's synchronization filter",
            stream=stream_id,
            filter=transform.name,
        )
        self._h_wave_latency = registry.histogram(
            "wave_latency_seconds",
            "First packet in to wave released (sync-layer dwell)",
            stream=stream_id,
        )
        registry.gauge(
            "membership_epoch",
            "Wave-membership generation for this stream (bumps on every "
            "child link drop or adoption; see TAG_RANKS_CHANGED)",
            fn=lambda: self.membership_epoch,
            stream=stream_id,
        )
        # Armed by the first packet that opens a wave; cleared when a
        # wave releases.  One attribute test per pushed packet, one
        # clock read per wave — cheap enough to stay always-on.
        self._wave_t0: Optional[float] = None
        # Waves currently running their transform on a worker thread.
        self._offload_inflight = 0
        # -- chunked-wave state ----------------------------------------
        # Per-link fragment reassembly for the non-incremental path
        # (created lazily; also catches fragments on streams whose own
        # chunk_bytes is 0, e.g. from a newer peer).
        self._reassemblers: Dict[object, ChunkReassembler] = {}
        # Incremental mode: every data packet (fragment or whole) rides
        # a per-link FIFO; release happens on aligned heads.
        self._chunk_queues: Dict[object, Deque[Packet]] = (
            {c: deque() for c in self.child_links} if self.incremental else {}
        )
        self._chunk_joining: set = set()
        self._chunk_leaving: set = set()  # lame-duck links (TAG_LEAVE)
        self._wave_links: List[object] = []  # fixed participant set mid-wave
        self._wave_pos = 0  # next expected chunk index (0 = at a boundary)
        self._wave_n = 0  # fragment count of the in-flight aligned wave
        self._out_wave = 0  # this node's output wave sequence number
        self._fill_t0: Optional[float] = None  # first fragment of a wave
        if self.chunk_bytes > 0:
            registry.gauge(
                "chunks_in_flight",
                "Pipeline fragments currently buffered for this stream "
                "(aligned-release queues plus per-link reassembly)",
                fn=self._count_chunks_in_flight,
                stream=stream_id,
            )
            self._h_chunk_bytes = registry.histogram(
                "chunk_bytes",
                "Encoded size of pipeline fragments received on this stream",
                stream=stream_id,
                buckets=CHUNK_BYTE_BUCKETS,
            )
            self._c_chunk_aborts = registry.counter(
                "chunk_waves_aborted",
                "Partial chunked waves discarded (mid-wave fault or "
                "fragment-sequence restart)",
                stream=stream_id,
            )
        else:
            self._h_chunk_bytes = None
            self._c_chunk_aborts = None
        # -- crash-consistent waves ------------------------------------
        # Bounded replay history of this node's own emitted output
        # waves: deque of ``(wave_id, [chunk packets])``, oldest first.
        self._out_history: Deque = deque()
        self._history_bytes = 0
        # Per-child-link high watermark of *completed* input waves
        # (the link delivered a wave's final fragment).  Anything at
        # or below the watermark is a duplicate retransmission.
        self._in_high: Dict[object, int] = {}
        self._ack_low: Dict[object, int] = {}  # last wave ACKed per link
        self._nacked: Dict[object, int] = {}  # highest seq NACKed per link
        # Owner-installed control emitters, ``fn(link_id, stream_id,
        # wave_seq)``; ``None`` (back-end-less unit tests, front-end)
        # disables ACK/NACK emission without disabling the watermarks.
        self.ack_hook: Optional[Callable[[object, int, int], None]] = None
        self.nack_hook: Optional[Callable[[object, int, int], None]] = None
        # True once the transform state has been mutated by a released
        # wave; guards checkpoint restoration (an adopter only inherits
        # a dead node's filter state while its own is still pristine).
        self._state_dirty = False
        self._c_waves_recovered = registry.counter(
            "waves_recovered",
            "Output waves replayed from the retransmit history after a "
            "parent repair or TAG_WAVE_NACK",
            stream=stream_id,
        )
        self._c_chunks_retx = registry.counter(
            "chunks_retransmitted",
            "Pipeline fragments replayed from the retransmit history",
            stream=stream_id,
        )

    @classmethod
    def create(
        cls,
        stream_id: int,
        endpoints: Sequence[int],
        child_links: Sequence[int],
        registry: FilterRegistry,
        sync_filter_id: int,
        transform_filter_id: int,
        sync_timeout: float = 0.0,
        down_transform_filter_id: int = 0,
        clock: Callable[[], float] = None,
        owner=None,
        chunk_bytes: int = 0,
        wave_pattern: int = WAVE_REDUCE,
    ) -> "StreamManager":
        """Instantiate filters from registry ids (the NEW_STREAM path)."""
        clock = clock or time.monotonic
        kwargs = {}
        if sync_filter_id == SFILTER_TIMEOUT:
            kwargs["timeout"] = sync_timeout if sync_timeout > 0 else 0.05
        sync = registry.make_sync(sync_filter_id, child_links, clock=clock, **kwargs)
        transform = registry.get_transform(transform_filter_id)
        down = (
            registry.get_transform(down_transform_filter_id)
            if down_transform_filter_id
            else None
        )
        manager = cls(
            stream_id, endpoints, child_links, sync, transform, down,
            clock=clock, owner=owner,
            chunk_bytes=chunk_bytes, wave_pattern=wave_pattern,
        )
        manager.passthrough = (
            sync_filter_id == SFILTER_DONTWAIT
            and transform_filter_id == TFILTER_NULL
            and down_transform_filter_id == 0
        )
        return manager

    # -- upstream ----------------------------------------------------------

    def push_upstream(self, link_id: int, packet: Packet) -> List[Packet]:
        """Process one packet arriving from a child; return outputs."""
        if self.closed:
            return []
        if is_chunk(packet) and not self._admit_chunk(link_id, packet):
            return []
        if self.incremental:
            return self._push_incremental(link_id, packet)
        if is_chunk(packet):
            # Non-incremental configuration: rebuild the whole packet
            # from this child's fragment sequence, then run the classic
            # wave path — chunked and whole-wave results are identical
            # by construction.
            if self._h_chunk_bytes is not None:
                self._h_chunk_bytes.observe(packet.nbytes)
            ra = self._reassemblers.get(link_id)
            if ra is None:
                ra = self._reassemblers[link_id] = ChunkReassembler()
            discarded = ra.discarded_waves
            whole = ra.add(packet)
            if ra.discarded_waves != discarded and self._c_chunk_aborts is not None:
                self._c_chunk_aborts.value += ra.discarded_waves - discarded
            if whole is None:
                return []
            packet = whole
        if self._wave_t0 is None:
            self._wave_t0 = self._clock()
        # The sync filter may park the packet across receive cycles.
        waves = self.sync.push(link_id, packet.materialize())
        return self._emit_up(self._run_waves(waves))

    def _admit_chunk(self, link_id: object, packet: Packet) -> bool:
        """Sequence gate for one arriving fragment (crash consistency).

        Returns ``False`` for duplicates (wave id at or below the
        link's completed-wave watermark — a retransmission overlap
        after repair).  A fresh gap at a wave boundary emits one
        ``TAG_WAVE_NACK`` toward the child via :attr:`nack_hook`; gaps
        are otherwise *normal* (aborted waves consume ids silently),
        so the NACK fires at most once per (link, expected-seq) and
        recovery degrades to realignment when history has aged out.
        """
        wave_id, index, n, _tag = chunk_meta(packet)
        high = self._in_high.get(link_id, -1)
        if wave_id <= high:
            log.debug(
                "stream %d: dropping duplicate chunk wave=%d idx=%d from %r",
                self.stream_id, wave_id, index, link_id,
            )
            return False
        if index == 0 and self.nack_hook is not None:
            expected = high + 1
            if wave_id > expected and expected > self._nacked.get(link_id, -1):
                self._nacked[link_id] = expected
                self.nack_hook(link_id, self.stream_id, expected)
        if index + 1 == n:
            self._in_high[link_id] = wave_id
            if (
                self.ack_hook is not None
                and wave_id - self._ack_low.get(link_id, -1) >= ACK_STRIDE
            ):
                self._ack_low[link_id] = wave_id
                self.ack_hook(link_id, self.stream_id, wave_id)
        return True

    def watermark(self, link_id: object) -> int:
        """Highest completed input wave id seen on *link_id* (-1: none)."""
        return self._in_high.get(link_id, -1)

    def seed_watermark(self, link_id: object, wave_id: int) -> None:
        """Pre-set a link's dedup watermark from a checkpoint.

        Called when adopting an orphan whose dead parent had already
        completed waves up to *wave_id*: the orphan's post-repair
        replay of those waves must be dropped, not re-aggregated.
        """
        if wave_id > self._in_high.get(link_id, -1):
            self._in_high[link_id] = wave_id

    def poll_upstream(self) -> List[Packet]:
        """Re-check time-based synchronization criteria."""
        if self.closed:
            return []
        if self.incremental:
            return []  # no time-based criterion in aligned-chunk mode
        return self._emit_up(self._run_waves(self.sync.poll()))

    def _note_wave_released(self) -> None:
        """Count a released wave and fire the front-end completion hook."""
        self._c_waves_released.value += 1
        if self.on_wave_complete is not None:
            self.on_wave_complete(self.stream_id, self.membership_epoch)

    def _bump_epoch(self) -> None:
        """Advance the membership epoch and fire the change hook."""
        self.membership_epoch += 1
        if self.on_membership_change is not None:
            self.on_membership_change(self.stream_id, self.membership_epoch)

    def drop_link(self, link_id: int) -> List[Packet]:
        """A child link closed: discard its state, realign the rest.

        Classic path: the dead child's backlog is released through the
        filter best-effort.  Incremental path: its buffered fragments
        are unusable partial state — they are discarded, and if the
        child was mid-wave the whole in-flight wave is aborted (every
        sibling's fragments for it are dropped too), so the next wave
        realigns cleanly under the bumped membership epoch.
        """
        self._settle_offloads()
        self._bump_epoch()
        self._in_high.pop(link_id, None)
        self._ack_low.pop(link_id, None)
        self._nacked.pop(link_id, None)
        if self.incremental:
            q = self._chunk_queues.pop(link_id, None)
            self._chunk_joining.discard(link_id)
            self._chunk_leaving.discard(link_id)
            self.sync.remove_child(link_id)
            if link_id in self.child_links:
                self.child_links.remove(link_id)
            if self._wave_pos > 0 and link_id in self._wave_links:
                self._abort_wave()
            elif q and self._c_chunk_aborts is not None and any(
                is_chunk(p) for p in q
            ):
                self._c_chunk_aborts.value += 1
            return self._release_aligned()
        self._reassemblers.pop(link_id, None)
        backlog = self.sync.remove_child(link_id)
        if link_id in self.child_links:
            self.child_links.remove(link_id)
        out: List[Packet] = []
        if backlog:
            backlog = [p for p in backlog if not is_chunk(p)]
            if backlog:
                out.extend(self.transform(backlog, self.transform_state))
        out.extend(self._run_waves(self.sync.poll()))
        return self._emit_up(out)

    def add_link(self, link_id: int) -> None:
        """Adopt a child link mid-stream (tree repair).

        The link joins wave alignment with *joining* semantics: an
        in-flight wave completes over the pre-adoption membership; the
        new link participates from the next wave boundary onward.
        """
        if link_id in self.child_links:
            return
        self.child_links.append(link_id)
        self.sync.add_child(link_id, joining=True)
        if self.incremental:
            self._chunk_queues[link_id] = deque()
            self._chunk_joining.add(link_id)
        self._bump_epoch()

    def retire_link(self, link_id: int) -> None:
        """Lame-duck a child link that announced a graceful leave.

        The departing subtree flushed before sending ``TAG_LEAVE``, so
        its already-queued contributions still ride the next waves —
        but completeness criteria stop *requiring* the link, and the
        eventual EOF is expected rather than a failure.  Contrast
        :meth:`drop_link`, which is the abrupt-death path.
        """
        if link_id not in self.child_links:
            return
        self._bump_epoch()
        self.sync.retire_child(link_id)
        if self.incremental:
            self._chunk_leaving.add(link_id)

    def add_endpoints(self, ranks: Sequence[int]) -> None:
        """Splice joining back-end ranks into the endpoint set (TAG_JOIN).

        Bumps the membership epoch even when the join rides an already
        known child link (the splice point is deeper in the tree): any
        change to *who* a wave covers is a new membership generation.
        """
        grown = self.endpoints | frozenset(ranks)
        if grown != self.endpoints:
            self.endpoints = grown
            self._bump_epoch()

    def remove_endpoints(self, ranks: Sequence[int]) -> None:
        """Retire departed back-end ranks (TAG_LEAVE or degrade)."""
        shrunk = self.endpoints - frozenset(ranks)
        if shrunk != self.endpoints:
            self.endpoints = shrunk
            self._bump_epoch()

    def flush_upstream(self) -> List[Packet]:
        """Stream teardown: push every held packet through the filter.

        Fragments of incomplete waves are discarded (a partial array
        slice is not a usable contribution); whole packets flush
        positionally like the classic path.
        """
        self._settle_offloads()
        if not self.incremental:
            return self._emit_up(self._run_waves(self.sync.flush()))
        if self._wave_pos > 0:
            self._abort_wave()
        waves: List[List[Packet]] = []
        while True:
            wave = []
            for q in self._chunk_queues.values():
                while q and is_chunk(q[0]):
                    q.popleft()  # orphan fragments: discard
                if q:
                    wave.append(q.popleft())
            if not wave:
                break
            waves.append(wave)
        return self._emit_up(self._run_waves(waves))

    # -- incremental (per-chunk) pipeline ---------------------------------

    def _push_incremental(self, link_id: int, packet: Packet) -> List[Packet]:
        """Queue one arrival and release every aligned fragment."""
        q = self._chunk_queues.get(link_id)
        if q is None:
            raise KeyError(f"unknown child {link_id!r}")
        if is_chunk(packet) and self._h_chunk_bytes is not None:
            self._h_chunk_bytes.observe(packet.nbytes)
        q.append(packet)
        now = self._clock()
        if self._wave_t0 is None:
            self._wave_t0 = now
        if self._fill_t0 is None:
            self._fill_t0 = now
        out = self._release_aligned()
        if q and q[-1] is packet:
            # Not consumed this cycle: the fragment parks until its
            # siblings arrive, so it must own its bytes (zero-copy shm
            # frames alias ring memory that is about to be recycled).
            packet.materialize()
        return out

    def _release_aligned(self) -> List[Packet]:
        """Drain every releasable aligned fragment / whole wave."""
        out: List[Packet] = []
        while True:
            released = self._try_release()
            if released is None:
                return out
            out.extend(released)

    def _participants(self) -> Optional[List[object]]:
        """Links taking part in the next wave, or ``None`` if not ready.

        Mirrors Wait-For-All membership: every non-joining link must
        have a packet queued; joining links ride along only if they
        already have one.
        """
        required = [
            lid
            for lid in self._chunk_queues
            if lid not in self._chunk_joining
            and lid not in self._chunk_leaving
        ]
        if not required:
            return None
        if any(not self._chunk_queues[lid] for lid in required):
            return None
        return [lid for lid, q in self._chunk_queues.items() if q]

    def _try_release(self) -> Optional[List[Packet]]:
        if self._wave_pos > 0:
            return self._release_next_chunk()
        # At a wave boundary: first drop stale fragment tails left by
        # an aborted wave (a fragment sequence must start at index 0).
        for q in self._chunk_queues.values():
            while q and is_chunk(q[0]) and chunk_meta(q[0])[1] != 0:
                q.popleft()
        links = self._participants()
        if links is None:
            return None
        heads = [self._chunk_queues[lid][0] for lid in links]
        if all(is_chunk(h) for h in heads):
            counts = {chunk_meta(h)[2] for h in heads}
            if len(counts) == 1:
                # Uniformly fragmented: open an aligned incremental wave.
                self._wave_links = links
                self._wave_n = counts.pop()
                self._wave_pos = 0
                return self._release_next_chunk()
        return self._release_reassembled(links)

    def _release_next_chunk(self) -> Optional[List[Packet]]:
        """Release fragment ``_wave_pos`` of the in-flight aligned wave."""
        index, n = self._wave_pos, self._wave_n
        inner: List[Packet] = []
        for lid in self._wave_links:
            q = self._chunk_queues.get(lid)
            if q is None:  # participant vanished: drop_link aborts first
                self._abort_wave()
                return []
            if not q:
                return None  # wait for this link's fragment
            head = q[0]
            if not is_chunk(head) or chunk_meta(head)[1:3] != (index, n):
                # Truncated/restarted sequence (mid-wave fault below us):
                # poison the whole in-flight wave and realign.
                self._abort_wave()
                return []
            inner.append(strip_chunk(head))
        for lid in self._wave_links:
            self._chunk_queues[lid].popleft()
        tracer = self._owner.tracer if self._owner is not None else None
        if tracer is None:
            outputs = self.transform(inner, self.transform_state)
        else:
            t0 = tracer.span_start()
            outputs = self.transform(inner, self.transform_state)
            tracer.span_end(
                "filter", t0, self.stream_id, detail=f"{self.transform.name}#{index}"
            )
        if index == 0 and tracer is not None and self._fill_t0 is not None:
            # The pipeline is primed: first partial result leaves while
            # later fragments are still arriving (Figure 3 hop overlap).
            tracer.span(
                "pipeline_fill",
                self._fill_t0,
                self._clock(),
                self.stream_id,
                detail=f"n={n}",
            )
        self._state_dirty = True
        out = self._record_out(
            [wrap_chunk(p, self._out_wave, index, n) for p in outputs]
        )
        if index + 1 >= n:
            released = self._clock()
            if self._wave_t0 is not None:
                self._h_wave_latency.observe(released - self._wave_t0)
                self._wave_t0 = None
            self._note_wave_released()
            self._out_wave += 1
            self._wave_pos = 0
            self._wave_n = 0
            self._wave_links = []
            self._fill_t0 = None
            self._chunk_joining.clear()
        else:
            self._wave_pos = index + 1
        return out

    def _release_reassembled(self, links: List[object]) -> Optional[List[Packet]]:
        """Boundary fallback: mixed whole/fragment (or unevenly
        fragmented) heads.  Wait until every participant has one
        complete unit queued, rebuild the fragmented ones, and run the
        classic whole-wave path."""
        units: List[Packet] = []
        consume: List[int] = []
        for lid in links:
            q = self._chunk_queues[lid]
            unit = None
            while q:
                head = q[0]
                if not is_chunk(head):
                    unit = head
                    consume.append(1)
                    break
                wave_id, _index, n, _tag = chunk_meta(head)
                # Queues are FIFO, so any already-arrived fragment that
                # breaks the sequence means the sender restarted — the
                # partial prefix can never complete.  Drop it eagerly
                # (waiting on it would deadlock behind a finished new
                # wave) and re-examine the new head.
                broken_at = None
                for pos in range(1, min(n, len(q))):
                    p = q[pos]
                    if not is_chunk(p) or chunk_meta(p)[:2] != (wave_id, pos):
                        broken_at = pos
                        break
                if broken_at is not None:
                    for _ in range(broken_at):
                        q.popleft()
                    if self._c_chunk_aborts is not None:
                        self._c_chunk_aborts.value += 1
                    continue
                if len(q) < n:
                    return None  # complete set not yet arrived
                unit = reassemble([q[pos] for pos in range(n)])
                consume.append(n)
                break
            if unit is None:
                return None
            units.append(unit)
        for lid, count in zip(links, consume):
            q = self._chunk_queues[lid]
            for _ in range(count):
                q.popleft()
        self._chunk_joining.clear()
        self._fill_t0 = None
        return self._emit_up(self._run_waves([units]))

    def _abort_wave(self) -> None:
        """Poison the in-flight aligned wave: drop every participant's
        remaining fragments for it and realign at the next boundary."""
        if self._c_chunk_aborts is not None:
            self._c_chunk_aborts.value += 1
        for q in self._chunk_queues.values():
            while q and is_chunk(q[0]) and chunk_meta(q[0])[1] != 0:
                q.popleft()
        self._wave_pos = 0
        self._wave_n = 0
        self._wave_links = []
        self._wave_t0 = None
        self._fill_t0 = None
        # The node's own output sequence restarts too: bump the output
        # wave id so downstream reassembly discards the truncated wave.
        self._out_wave += 1

    def _emit_up(self, packets: List[Packet]) -> List[Packet]:
        """Split oversized whole outputs so upstream hops stay pipelined."""
        if not self.chunk_bytes:
            return packets
        out: List[Packet] = []
        for p in packets:
            if is_chunk(p):
                out.append(p)
                continue
            chunks = split_packet(p, self.chunk_bytes, self._out_wave)
            if chunks is None:
                out.append(p)
            else:
                self._out_wave += 1
                out.extend(chunks)
        return self._record_out(out)

    def _record_out(self, packets: List[Packet]) -> List[Packet]:
        """Append emitted fragments to the bounded retransmit history.

        Fragments are grouped by their output wave id; whole (unchunked)
        packets carry no wire sequence number and are not replayable.
        Packets are materialized before parking — a zero-copy shm frame
        aliases ring memory that the transport recycles after send.
        """
        for p in packets:
            if not is_chunk(p):
                continue
            wave_id = chunk_meta(p)[0]
            if self._out_history and self._out_history[-1][0] == wave_id:
                self._out_history[-1][1].append(p.materialize())
            else:
                self._out_history.append((wave_id, [p.materialize()]))
            self._history_bytes += p.nbytes
        while self._out_history and (
            len(self._out_history) > HISTORY_MAX_WAVES
            or self._history_bytes > HISTORY_MAX_BYTES
        ):
            _seq, chunks = self._out_history.popleft()
            self._history_bytes -= sum(c.nbytes for c in chunks)
        return packets

    def ack_output(self, wave_seq: int) -> None:
        """``TAG_WAVE_ACK``: the parent delivered through *wave_seq*.

        Prunes the retransmit history up to and including that wave.
        """
        while self._out_history and self._out_history[0][0] <= wave_seq:
            _seq, chunks = self._out_history.popleft()
            self._history_bytes -= sum(c.nbytes for c in chunks)

    def resend_since(self, wave_seq: int = -1) -> List[Packet]:
        """Replay every buffered output wave newer than *wave_seq*.

        The post-repair resend path (and the ``TAG_WAVE_NACK``
        handler): returns the fragments in original emission order for
        the owner to queue upstream.  Waves the bounded history has
        already aged out are silently skipped — the parent's
        reassembler realigns on the next boundary and the loss shows
        up in ``chunk_waves_aborted`` there instead.
        """
        out: List[Packet] = []
        waves = 0
        for seq, chunks in self._out_history:
            if seq <= wave_seq:
                continue
            out.extend(chunks)
            waves += 1
        if waves:
            self._c_waves_recovered.value += waves
            self._c_chunks_retx.value += len(out)
        return out

    def checkpoint_state(self) -> dict:
        """This node's resumable per-stream state (``TAG_CHECKPOINT``).

        ``watermarks`` is keyed by child link id — the owner translates
        link identities into rank sets before shipping, since a link id
        is meaningless outside this process.  ``transform`` (and
        ``sync``, when contributions are parked) appear only when the
        filter's state serializes cleanly; checkpointing is always
        best-effort and never fails the data path.
        """
        doc = {
            "out_wave": self._out_wave,
            "epoch": self.membership_epoch,
            "watermarks": dict(self._in_high),
        }
        try:
            doc["transform"] = self.transform.get_state(self.transform_state)
        except Exception as exc:  # noqa: BLE001 - best-effort by design
            log.debug(
                "stream %d: transform state not checkpointable: %s",
                self.stream_id, exc,
            )
        if self.sync.pending:
            try:
                doc["sync"] = self.sync.get_state()
            except Exception as exc:  # noqa: BLE001
                log.debug(
                    "stream %d: sync state not checkpointable: %s",
                    self.stream_id, exc,
                )
        return doc

    def restore_state(self, snapshot: dict) -> None:
        """Adopt a dead node's :meth:`checkpoint_state` filter state.

        Applied only while this node's own transform state is pristine
        (no wave has released here yet): an adopter that has already
        aggregated waves owns its state, and a stale checkpoint must
        not clobber it.  Watermark seeding is separate — see
        :meth:`seed_watermark`, keyed by the adopter's own link ids.
        """
        transform = snapshot.get("transform")
        if transform is None or self._state_dirty:
            return
        try:
            self.transform.set_state(self.transform_state, transform)
            self.transform_state.setdefault(
                "n_children", len(self.child_links)
            )
        except Exception as exc:  # noqa: BLE001
            log.debug(
                "stream %d: checkpoint restore skipped: %s",
                self.stream_id, exc,
            )

    def _count_chunks_in_flight(self) -> int:
        n = sum(
            1 for q in self._chunk_queues.values() for p in q if is_chunk(p)
        )
        n += sum(ra.pending for ra in self._reassemblers.values())
        return n

    def _run_waves(self, waves) -> List[Packet]:
        out: List[Packet] = []
        tracer = self._owner.tracer if self._owner is not None else None
        for wave in waves:
            self._state_dirty = True
            released = self._clock()
            if self._wave_t0 is not None:
                self._h_wave_latency.observe(released - self._wave_t0)
                if tracer is not None:
                    tracer.span(
                        "sync_wait",
                        self._wave_t0,
                        released,
                        self.stream_id,
                        detail=self.sync.name,
                    )
                self._wave_t0 = None
            if tracer is None and self._should_offload(wave):
                self._offload_wave(wave)
                self._note_wave_released()
                continue
            if tracer is None:
                out.extend(self.transform(wave, self.transform_state))
            else:
                t0 = tracer.span_start()
                out.extend(self.transform(wave, self.transform_state))
                tracer.span_end(
                    "filter", t0, self.stream_id, detail=self.transform.name
                )
            self._note_wave_released()
        return out

    # -- worker-pool offload (colocated loops) -----------------------------

    def _should_offload(self, wave) -> bool:
        """Does this wave's transform belong on a worker thread?"""
        owner = self._owner
        pool = owner.worker_pool if owner is not None else None
        if pool is None or not pool.enabled or self.incremental:
            return False
        if self._offload_inflight:
            # Arrival order: once one wave is in the pool, every later
            # wave of this stream must queue behind it (per-key FIFO).
            return True
        return (
            sum(p.nbytes for p in wave) >= self.OFFLOAD_MIN_BYTES
        )

    def _offload_wave(self, wave) -> None:
        self._offload_inflight += 1
        transform, state = self.transform, self.transform_state
        self._owner.worker_pool.submit(
            self, lambda: transform(wave, state), self._offload_done
        )

    def _offload_done(self, result, exc) -> None:
        """Pool completion (runs on the loop thread, in wave order)."""
        self._offload_inflight -= 1
        owner = self._owner
        if exc is not None:
            log.warning(
                "stream %d: offloaded filter %s raised: %s",
                self.stream_id,
                self.transform.name,
                exc,
            )
            return
        outs = self._emit_up(list(result))
        if outs:
            owner._c_waves_aggregated.value += 1
        for out in outs:
            owner._queue_up(out)

    def _settle_offloads(self) -> None:
        """Barrier: wait out in-flight offloaded waves (loop thread).

        Called before any inline use of ``transform_state`` (teardown
        flush, membership drops) so a worker never races the loop on
        per-stream filter state.
        """
        owner = self._owner
        if not self._offload_inflight or owner is None:
            return
        drain = owner.drain_worker_completions
        while self._offload_inflight:
            fired = drain() if drain is not None else 0
            if not fired and self._offload_inflight:
                time.sleep(0.0005)

    # -- downstream --------------------------------------------------------

    def transform_downstream(self, packet: Packet) -> List[Packet]:
        """Apply the downstream transformation filter, if bound.

        Downstream flows have no synchronization stage (§2.3: "First,
        synchronization filters are not supported for downstream data
        flows").
        """
        if self.down_transform is None:
            return [packet]
        return self.down_transform([packet], self.down_state)

    # -- misc -----------------------------------------------------------------

    @property
    def pending(self) -> int:
        """Packets currently held back (sync filter, chunk queues and
        per-link fragment reassembly)."""
        if self.incremental:
            return sum(len(q) for q in self._chunk_queues.values())
        return self.sync.pending + sum(
            ra.pending for ra in self._reassemblers.values()
        )

    def next_deadline(self) -> Optional[float]:
        """Earliest clock time a time-based criterion could fire."""
        if self.closed:
            return None
        return self.sync.next_deadline()

    def close(self) -> None:
        self._settle_offloads()
        self.closed = True

    def __repr__(self) -> str:
        return (
            f"StreamManager(stream={self.stream_id}, "
            f"endpoints={sorted(self.endpoints)}, links={self.child_links}, "
            f"sync={self.sync.name}, transform={self.transform.name})"
        )
