"""Internal processes (``mrnet_commnode``) and the shared node core.

An internal process "implements logical channels for the flow of
control messages and data between the tool's components and performs
data aggregation or reduction operations as appropriate" (§2.3).  The
functional layers of Figure 3 map onto :class:`NodeCore` methods:

* packet batching/unbatching — :mod:`repro.core.batching`, applied at
  :meth:`NodeCore._flush` / :meth:`NodeCore.handle_payload`;
* demultiplexing by stream id — :meth:`NodeCore.dispatch`;
* packet synchronization + data-specific aggregation — delegated to
  the stream's :class:`~repro.core.stream_manager.StreamManager`;
* re-batching toward the parent — the parent :class:`PacketBuffer`.

Packets are "manipulated by reference whenever possible": a packet
fanned out to several children is appended to each child's buffer as
the same object, and its encoded bytes are produced once
(``Packet.to_bytes`` caches).  Inbound packets arrive *lazy*
(:meth:`~repro.core.packet.Packet.lazy_from_wire`): only the 12-byte
header is parsed, so a hop that merely relays — unknown stream,
downstream flood, ``TFILTER_NULL`` — forwards the original wire frame
without ever decoding or re-validating field values.  The
``packets_relayed_zero_copy`` stat counts packets that left this node
on that fast path.

:class:`CommNode` wraps a :class:`NodeCore` in a daemon thread with a
``select``-style loop over the node's inbox.  The tool front-end
reuses :class:`NodeCore` directly (see :mod:`repro.core.network`) and
pumps it from API calls instead of a thread.
"""

from __future__ import annotations

import queue
import threading
import time
from typing import Callable, Dict, Optional

from ..filters.registry import FilterRegistry
from .batching import PacketBuffer, decode_batch
from ..transport.channel import ChannelEnd, Inbox
from .packet import Packet
from .protocol import (
    CONTROL_STREAM_ID,
    TAG_CLOSE_STREAM,
    TAG_ENDPOINT_REPORT,
    TAG_NEW_STREAM,
    TAG_SHUTDOWN,
    make_endpoint_report,
    parse_new_stream,
)
from .routing import RoutingTable
from .stream_manager import StreamManager

__all__ = ["NodeCore", "CommNode"]


class NodeCore:
    """Protocol engine shared by internal processes and the front-end.

    Parameters
    ----------
    name:
        Diagnostic name (the topology label, e.g. ``"node01:0"``).
    registry:
        The network's shared filter registry.
    expected_ranks:
        Number of back-end ranks that must report through this node
        before it sends its own endpoint report upstream (§2.5).
    parent:
        Channel end toward the parent, or ``None`` at the front-end.
    clock:
        Time source for synchronization filters.
    """

    def __init__(
        self,
        name: str,
        registry: FilterRegistry,
        expected_ranks: int,
        parent: Optional[ChannelEnd] = None,
        clock: Callable[[], float] = time.monotonic,
        inbox: Optional[Inbox] = None,
    ):
        self.name = name
        self.registry = registry
        self.expected_ranks = expected_ranks
        self.parent = parent
        self.clock = clock
        self.inbox = inbox if inbox is not None else Inbox()
        self.children: Dict[int, ChannelEnd] = {}
        self.routing = RoutingTable()
        self.streams: Dict[int, StreamManager] = {}
        self.reported_ranks: set[int] = set()
        self.sent_report = False
        self.shutting_down = False
        self._parent_buffer: Optional[PacketBuffer] = None
        if parent is not None:
            self._parent_buffer = PacketBuffer(parent.link_id)
        self._child_buffers: Dict[int, PacketBuffer] = {}
        # Stats used by tests and ablation benches.
        # ``packets_relayed_zero_copy`` counts packets appended to an
        # outbound buffer while still undecoded lazy wire frames: the
        # §2.3 forward-by-reference fast path, taken by pure relays
        # (no stream manager), downstream floods, and TFILTER_NULL
        # streams.  Each such packet is re-sent as its original bytes
        # without any field decode, validation, or re-encode.
        self.stats = {
            "packets_up": 0,
            "packets_down": 0,
            "messages_sent": 0,
            "waves_aggregated": 0,
            "packets_relayed_zero_copy": 0,
        }

    # -- wiring -----------------------------------------------------------

    def add_child(self, end: ChannelEnd) -> None:
        """Attach a downstream connection (to a child node or back-end)."""
        self.children[end.link_id] = end
        self._child_buffers[end.link_id] = PacketBuffer(end.link_id)

    @property
    def parent_link_id(self) -> Optional[int]:
        return self.parent.link_id if self.parent is not None else None

    @property
    def ready(self) -> bool:
        """All expected back-end ranks have reported through this node."""
        return len(self.reported_ranks) >= self.expected_ranks

    # -- inbound ------------------------------------------------------------

    def handle_payload(self, link_id: int, payload: Optional[bytes]) -> None:
        """Unbatch one inbound message and dispatch its packets."""
        if payload is None:
            self._handle_link_closed(link_id)
            return
        for packet in decode_batch(payload):
            self.dispatch(link_id, packet)

    def dispatch(self, link_id: int, packet: Packet) -> None:
        """Demultiplex one packet (Figure 3's demux layer)."""
        from_parent = self.parent is not None and link_id == self.parent_link_id
        if packet.stream_id == CONTROL_STREAM_ID:
            if from_parent or self.parent is None and packet.tag in (
                TAG_NEW_STREAM,
                TAG_CLOSE_STREAM,
                TAG_SHUTDOWN,
            ):
                # Downstream-travelling control (front-end originates
                # these locally via handle_control_down).
                self.handle_control_down(packet)
            else:
                self.handle_control_up(link_id, packet)
            return
        if from_parent:
            self._handle_data_down(packet)
        else:
            self._handle_data_up(link_id, packet)

    # -- control ----------------------------------------------------------

    def handle_control_up(self, link_id: int, packet: Packet) -> None:
        if packet.tag == TAG_ENDPOINT_REPORT:
            (ranks,) = packet.unpack()
            self.routing.add_report(link_id, ranks)
            self.reported_ranks.update(ranks)
            if self.ready and not self.sent_report and self.parent is not None:
                self.sent_report = True
                self._queue_up(make_endpoint_report(sorted(self.reported_ranks)))
        else:
            # Unknown upstream control: forward toward the front-end.
            self._queue_up(packet)

    def handle_control_down(self, packet: Packet) -> None:
        if packet.tag == TAG_NEW_STREAM:
            stream_id, endpoints, sync_id, trans_id, timeout, down_id = (
                parse_new_stream(packet)
            )
            links = self.routing.links_for(frozenset(endpoints))
            self.streams[stream_id] = StreamManager.create(
                stream_id,
                endpoints,
                links,
                self.registry,
                sync_id,
                trans_id,
                sync_timeout=timeout,
                down_transform_filter_id=down_id,
                clock=self.clock,
            )
            for link in links:
                self._queue_down(link, packet)
        elif packet.tag == TAG_CLOSE_STREAM:
            (stream_id,) = packet.unpack()
            manager = self.streams.pop(stream_id, None)
            if manager is not None:
                for out in manager.flush_upstream():
                    self._queue_up(out)
                manager.close()
                for link in manager.child_links:
                    self._queue_down(link, packet)
        elif packet.tag == TAG_SHUTDOWN:
            self.shutting_down = True
            for link in list(self.children):
                self._queue_down(link, packet)
        else:
            # Unknown downstream control: flood to every child.
            for link in list(self.children):
                self._queue_down(link, packet)

    # -- data ------------------------------------------------------------

    def _handle_data_up(self, link_id: int, packet: Packet) -> None:
        self.stats["packets_up"] += 1
        manager = self.streams.get(packet.stream_id)
        if manager is None:
            # Stream unknown here (e.g. point-to-point pass-through):
            # forward unchanged, preserving MRNet's negligible-overhead
            # relay behaviour (§4.2.1).
            self._queue_up(packet)
            return
        outputs = manager.push_upstream(link_id, packet)
        if outputs:
            self.stats["waves_aggregated"] += 1
        for out in outputs:
            self._queue_up(out)

    def _handle_data_down(self, packet: Packet) -> None:
        self.stats["packets_down"] += 1
        manager = self.streams.get(packet.stream_id)
        if manager is None:
            # No stream state: flood to all children.
            for link in list(self.children):
                self._queue_down(link, packet)
            return
        for out in manager.transform_downstream(packet):
            for link in manager.child_links:
                self._queue_down(link, out)

    def poll_streams(self) -> None:
        """Drive time-based synchronization criteria (TimeOut filters)."""
        for manager in list(self.streams.values()):
            for out in manager.poll_upstream():
                self._queue_up(out)

    def _handle_link_closed(self, link_id: int) -> None:
        if self.parent is not None and link_id == self.parent_link_id:
            # Parent vanished: treat as shutdown.
            self.shutting_down = True
            for link in list(self.children):
                self._queue_down(link, Packet(CONTROL_STREAM_ID, TAG_SHUTDOWN, "%d", (0,)))
            return
        self.children.pop(link_id, None)
        self._child_buffers.pop(link_id, None)
        self.routing.remove_link(link_id)
        for manager in self.streams.values():
            if link_id in manager.child_links:
                for out in manager.drop_link(link_id):
                    self._queue_up(out)

    # -- outbound ----------------------------------------------------------

    def _queue_up(self, packet: Packet) -> None:
        if self._parent_buffer is not None:
            if not packet.values_decoded:
                self.stats["packets_relayed_zero_copy"] += 1
            self._parent_buffer.add(packet)
        else:
            self.deliver_local(packet)

    def _queue_down(self, link_id: int, packet: Packet) -> None:
        buf = self._child_buffers.get(link_id)
        if buf is not None:
            if not packet.values_decoded:
                self.stats["packets_relayed_zero_copy"] += 1
            buf.add(packet)

    def deliver_local(self, packet: Packet) -> None:
        """Upstream output at the tree root; overridden by the front-end."""
        raise NotImplementedError(
            "root NodeCore must override deliver_local"
        )  # pragma: no cover

    def flush(self) -> None:
        """Encode and transmit all non-empty output buffers."""
        if self._parent_buffer is not None and len(self._parent_buffer):
            try:
                self.parent.send(self._parent_buffer.encode())
                self.stats["messages_sent"] += 1
            except ConnectionError:
                self._parent_buffer.drain()
        for link_id, buf in list(self._child_buffers.items()):
            if len(buf):
                end = self.children.get(link_id)
                if end is None:
                    buf.drain()
                    continue
                try:
                    end.send(buf.encode())
                    self.stats["messages_sent"] += 1
                except ConnectionError:
                    buf.drain()

    def close_all(self) -> None:
        """Close every channel this node owns an end of."""
        if self.parent is not None:
            self.parent.close()
        for end in self.children.values():
            end.close()

    @property
    def has_timeout_streams(self) -> bool:
        """True when any stream needs time-based polling."""
        return any(m.sync.name == "sync-timeout" for m in self.streams.values())


class CommNode(threading.Thread):
    """An internal process: a :class:`NodeCore` driven by its own thread."""

    IDLE_POLL = 0.05
    TIMEOUT_POLL = 0.002

    def __init__(
        self,
        name: str,
        registry: FilterRegistry,
        expected_ranks: int,
        parent: ChannelEnd,
        clock: Callable[[], float] = time.monotonic,
        inbox: Optional[Inbox] = None,
    ):
        super().__init__(name=f"commnode-{name}", daemon=True)
        self.core = NodeCore(name, registry, expected_ranks, parent, clock, inbox)

    @property
    def inbox(self) -> Inbox:
        return self.core.inbox

    def run(self) -> None:  # pragma: no branch - loop structure
        core = self.core
        while not core.shutting_down:
            poll = self.TIMEOUT_POLL if core.has_timeout_streams else self.IDLE_POLL
            try:
                link_id, payload = core.inbox.get(timeout=poll)
            except queue.Empty:
                core.poll_streams()
                core.flush()
                continue
            core.handle_payload(link_id, payload)
            # Drain whatever else is already queued so one flush batches
            # an entire burst (Figure 3's batching layer earning its keep).
            while True:
                try:
                    link_id, payload = core.inbox.get_nowait()
                except queue.Empty:
                    break
                core.handle_payload(link_id, payload)
                if core.shutting_down:
                    break
            core.poll_streams()
            core.flush()
        core.flush()
        core.close_all()
