"""Internal processes (``mrnet_commnode``) and the shared node core.

An internal process "implements logical channels for the flow of
control messages and data between the tool's components and performs
data aggregation or reduction operations as appropriate" (§2.3).  The
functional layers of Figure 3 map onto :class:`NodeCore` methods:

* packet batching/unbatching — :mod:`repro.core.batching`, applied at
  :meth:`NodeCore._flush` / :meth:`NodeCore.handle_payload`;
* demultiplexing by stream id — :meth:`NodeCore.dispatch`;
* packet synchronization + data-specific aggregation — delegated to
  the stream's :class:`~repro.core.stream_manager.StreamManager`;
* re-batching toward the parent — the parent :class:`PacketBuffer`.

Packets are "manipulated by reference whenever possible": a packet
fanned out to several children is appended to each child's buffer as
the same object, and its encoded bytes are produced once
(``Packet.to_bytes`` caches).  Inbound packets arrive *lazy*
(:meth:`~repro.core.packet.Packet.lazy_from_wire`): only the 12-byte
header is parsed, so a hop that merely relays — unknown stream,
downstream flood, ``TFILTER_NULL`` — forwards the original wire frame
without ever decoding or re-validating field values.  The
``packets_relayed_zero_copy`` stat counts packets that left this node
on that fast path.

:class:`CommNode` wraps a :class:`NodeCore` in a daemon thread running
one :class:`~repro.transport.eventloop.EventLoop`: a ``selectors``
loop multiplexing every socket the node owns plus a wakeup for
in-process channel deliveries — one I/O thread per node, however many
links.  (The legacy ``io_mode="threads"`` inbox-polling driver, which
needed a reader thread per TCP link, was deprecated when the event
loop landed and has been removed.)  The tool front-end reuses
:class:`NodeCore` directly (see :mod:`repro.core.network`) and pumps
it from API calls instead of a thread.

Many-stream scaling: stream announcements arriving in a batched
``TAG_NEW_STREAMS`` packet are registered as lightweight *specs* and
materialized into full :class:`StreamManager` state only on a
stream's first data packet, and the per-tick work
(:meth:`NodeCore.poll_streams` / :meth:`NodeCore.next_timeout_deadline`)
is O(active): only streams whose TimeOut filter currently holds an
armed deadline are tracked (an active-set plus a lazy-deletion
deadline heap), so thousands of idle streams cost a node nothing per
tick.

Output buffering is adaptive (§2.3's "fewer larger messages over busy
connections"): ``flush()`` force-drains every buffer, while
``maybe_flush()`` lets buffers accumulate until a size bound
(``FLUSH_MAX_PACKETS``/``FLUSH_MAX_BYTES``) or a short time window
(``FLUSH_MAX_DELAY``) trips.  Links with bounded send queues are never
overfilled: when a link reports insufficient ``send_capacity``, its
packets stay parked in their ``PacketBuffer`` and the ``send_queue_full``
stat counts the deferral.  A link that turns out to be *dead* at flush
time drops its packets with accounting (``messages_dropped_on_close``),
logs once, and propagates the closure through ``_handle_link_closed``
so waiting streams release instead of hanging.
"""

from __future__ import annotations

import heapq
import json
import logging
import random
import threading
import time
import zlib
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from ..filters.registry import FilterRegistry
from .batching import (
    FLUSH_MAX_BYTES,
    FLUSH_MAX_DELAY,
    FLUSH_MAX_PACKETS,
    PacketBuffer,
    decode_batch,
    encode_batch,
)
from ..obs.metrics import DEFAULT_SIZE_BUCKETS, MetricsRegistry, StatsView
from ..obs.snapshot import dumps_snapshot
from ..transport.channel import ChannelEnd, Inbox
from ..transport.eventloop import SendQueueFull
from .failure import DEGRADE, REPAIR, HeartbeatConfig
from .packet import Packet
from .protocol import (
    CONTROL_STREAM_ID,
    TAG_ADDR_REPORT,
    TAG_CHECKPOINT,
    TAG_CHUNK,
    TAG_CLOSE_STREAM,
    TAG_ENDPOINT_REPORT,
    TAG_HEARTBEAT,
    TAG_JOIN,
    TAG_LEAVE,
    TAG_NEW_STREAM,
    TAG_NEW_STREAMS,
    TAG_RANKS_CHANGED,
    TAG_SHUTDOWN,
    TAG_STATS_REPLY,
    TAG_STATS_REQUEST,
    TAG_WAVE_ACK,
    TAG_WAVE_NACK,
    WAVE_DUAL_ROOT,
    make_checkpoint,
    make_endpoint_report,
    make_heartbeat,
    make_ranks_changed,
    make_stats_reply,
    make_wave_ack,
    make_wave_nack,
    parse_checkpoint,
    parse_join,
    parse_leave,
    parse_new_stream,
    parse_new_streams,
    parse_stats_request,
    parse_wave_ack,
    parse_wave_nack,
)
from .routing import RoutingTable
from .stream_manager import StreamManager

__all__ = ["NodeCore", "CommNode", "NodeHost", "ColocatedCommNode"]

log = logging.getLogger(__name__)


def _rank_key(ranks) -> str:
    """Canonical checkpoint key for a set of back-end ranks.

    Link ids are process-local, so checkpoint maps are re-keyed by the
    rank set behind each link before shipping — the one identity that
    survives a node's death and re-parenting.
    """
    return ",".join(map(str, sorted(ranks)))


class NodeCore:
    """Protocol engine shared by internal processes and the front-end.

    Parameters
    ----------
    name:
        Diagnostic name (the topology label, e.g. ``"node01:0"``).
    registry:
        The network's shared filter registry.
    expected_ranks:
        Number of back-end ranks that must report through this node
        before it sends its own endpoint report upstream (§2.5).
    parent:
        Channel end toward the parent, or ``None`` at the front-end.
    clock:
        Time source for synchronization filters.
    """

    def __init__(
        self,
        name: str,
        registry: FilterRegistry,
        expected_ranks: int,
        parent: Optional[ChannelEnd] = None,
        clock: Callable[[], float] = time.monotonic,
        inbox: Optional[Inbox] = None,
    ):
        self.name = name
        self.registry = registry
        self.expected_ranks = expected_ranks
        self.parent = parent
        self.clock = clock
        self.inbox = inbox if inbox is not None else Inbox()
        self.children: Dict[int, ChannelEnd] = {}
        self.routing = RoutingTable()
        self.streams: Dict[int, StreamManager] = {}
        # Bulk-announced streams not yet materialized (TAG_NEW_STREAMS):
        # stream id -> spec dict (endpoint frozenset + filter ids +
        # chunk/pattern parameters).  The endpoint set is SHARED with
        # the interned CommGroup and rebound copy-on-write by
        # join/leave/link-death, so 5000 specs over one communicator
        # hold a single rank set; routing is recomputed from the epoch
        # cache at materialization time, so a pending spec never goes
        # stale.
        self._stream_specs: Dict[int, dict] = {}
        # O(active) tick state: only streams whose TimeOut filter holds
        # an armed deadline appear here.  ``_armed_deadlines`` records
        # the deadline each heap entry was pushed for — mismatched heap
        # heads are stale and lazily discarded.
        self._active_streams: Dict[int, StreamManager] = {}
        self._armed_deadlines: Dict[int, float] = {}
        self._deadline_heap: List[Tuple[float, int]] = []
        self._timed_stream_count = 0
        self.reported_ranks: set[int] = set()
        self.sent_report = False
        self.shutting_down = False
        self.flush_max_delay = FLUSH_MAX_DELAY
        self._flush_deadline: Optional[float] = None
        self._drop_logged: set[int] = set()
        self._parent_buffer: Optional[PacketBuffer] = None
        if parent is not None:
            self._parent_buffer = self._make_buffer(parent.link_id)
        self._child_buffers: Dict[int, PacketBuffer] = {}
        # -- fault-tolerance state (see repro.core.failure) -----------
        # ``policy`` governs what link death means; ``heartbeat``
        # enables liveness probing; ``recovery`` aggregates stats and
        # brokers adoption network-wide; ``repair_fn`` (orphans only)
        # produces a replacement parent end; ``topo_key`` names this
        # process slot for the coordinator.
        self.policy = DEGRADE
        self.heartbeat = HeartbeatConfig()
        self.recovery = None
        self.repair_fn: Optional[Callable[[], Optional[ChannelEnd]]] = None
        self.topo_key = None
        self.crashed = False  # abrupt kill (fault injection): no goodbye
        self.wedged = False  # alive at TCP level, processing nothing
        self._last_seen: Dict[int, float] = {}
        self._hb_peers: set[int] = set()  # links whose peer heartbeats
        self._hb_seq = 0
        self._last_beat: Optional[float] = None
        self._pending_children: List[Tuple[ChannelEnd, bool]] = []
        self._pending_lock = threading.Lock()
        # -- elastic membership + crash-consistent waves ---------------
        # Links whose subtree announced a graceful TAG_LEAVE: their
        # eventual EOF is expected, not a failure.
        self._announced_leaving: set[int] = set()
        # Child state deposits, keyed by (child link id, stream id):
        # the most recent TAG_CHECKPOINT document each child shipped.
        # Consulted when adopting that child's orphans after it dies.
        self._checkpoints: Dict[Tuple[int, int], dict] = {}
        #: Seconds between TAG_CHECKPOINT deposits to the parent
        #: (0 disables; set via :meth:`configure_failure`).
        self.checkpoint_interval = 0.0
        self._last_checkpoint: Optional[float] = None
        # Deterministic per-node jitter source for heartbeat de-sync:
        # seeded from the node name (not the salted builtin hash) so a
        # topology probes on the same staggered schedule every run.
        self._hb_rng = random.Random(zlib.crc32(name.encode()))
        self._hb_interval = self.heartbeat.interval
        # -- observability (see repro.obs) ----------------------------
        # Typed registry behind the legacy ``stats`` mapping.  Hot-path
        # sites bump pre-bound Counter objects (one attribute add, same
        # cost as the dicts they replaced); ``self.stats`` is a live
        # view kept for tests and callers that read by name.
        # ``packets_relayed_zero_copy`` counts packets appended to an
        # outbound buffer while still undecoded lazy wire frames: the
        # §2.3 forward-by-reference fast path, taken by pure relays
        # (no stream manager), downstream floods, and TFILTER_NULL
        # streams.  Each such packet is re-sent as its original bytes
        # without any field decode, validation, or re-encode.
        # ``send_queue_full`` counts flushes deferred by a bounded link
        # send queue (backpressure, lossless); ``messages_dropped_on_close``
        # counts packets dropped because their link was already dead.
        self.metrics = MetricsRegistry()
        _c = self.metrics.counter
        self._c_packets_up = _c("packets_up", "Data packets received from children")
        self._c_packets_down = _c("packets_down", "Data packets received from the parent")
        self._c_messages_in = _c("messages_in", "Framed messages received")
        self._c_packets_in = _c("packets_in", "Packets decoded from inbound messages")
        self._c_messages_sent = _c("messages_sent", "Framed messages transmitted")
        self._c_waves_aggregated = _c("waves_aggregated", "Synchronization waves released and aggregated")
        self._c_relayed_zero_copy = _c("packets_relayed_zero_copy", "Packets forwarded without decoding (lazy fast path)")
        self._c_send_queue_full = _c("send_queue_full", "Flushes deferred by link backpressure")
        self._c_dropped_on_close = _c("messages_dropped_on_close", "Packets dropped because their link was dead")
        self._c_heartbeats_sent = _c("heartbeats_sent", "Liveness probes emitted")
        self._c_heartbeats_missed = _c("heartbeats_missed", "Liveness deadlines expired (peer declared dead)")
        self._c_orphans_adopted = _c("orphans_adopted", "Orphan child links adopted during repair")
        self._c_waves_reconfigured = _c("waves_reconfigured", "Stream membership changes (links dropped/spliced)")
        self._c_stats_replies_relayed = _c("stats_replies_relayed", "STATS_SNAPSHOT replies answered or relayed upstream")
        self._c_members_joined = _c("members_joined", "Back-end ranks spliced in via TAG_JOIN")
        self._c_members_left = _c("members_left", "Back-end ranks retired via TAG_LEAVE")
        self._c_checkpoint_bytes = _c("checkpoint_bytes", "Bytes of TAG_CHECKPOINT state shipped to the parent")
        self._h_flush_batch = self.metrics.histogram(
            "flush_batch_packets",
            "Packets per flushed outbound message (adaptive batching)",
            buckets=DEFAULT_SIZE_BUCKETS,
        )
        self.metrics.gauge("streams_open", "Streams with live state at this node", fn=lambda: len(self.streams) + len(self._stream_specs))
        self.metrics.gauge("children_connected", "Downstream links currently attached", fn=lambda: len(self.children))
        # Per-transport link census: every ChannelEnd-like object
        # advertises a ``transport_kind`` class attribute ("channel",
        # "tcp", "shm" or "inproc"); snapshots then show which links
        # negotiated the shared-memory upgrade, fell back to TCP, or
        # collapsed to a same-loop in-process hand-off.
        for _kind in ("channel", "tcp", "shm", "inproc"):
            self.metrics.gauge(
                "links",
                "Attached links (parent + children) by transport kind",
                fn=(lambda k=_kind: self._count_transport(k)),
                kind=_kind,
            )
        self.stats = StatsView(self.metrics)
        #: Extra snapshot providers merged into :meth:`metrics_snapshot`
        #: (the event loop registers its transport registry here).
        self.extra_metrics: List[Callable[[], dict]] = []
        #: Optional :class:`~repro.transport.workers.FilterWorkerPool`
        #: (set by ``EventLoop.bind`` when the loop has workers).
        #: Stream managers offload big transform waves through it.
        self.worker_pool = None
        #: Loop-thread callable that fires parked pool completions;
        #: stream managers use it to settle in-flight offloads before
        #: membership changes or teardown.
        self.drain_worker_completions: Optional[Callable[[], int]] = None
        #: Rank used in STATS_SNAPSHOT identities; the network assigns
        #: 0 to the front-end and 1..N to comm nodes.
        self.obs_rank = -1
        #: Optional :class:`repro.obs.tracing.TraceRecorder`.  ``None``
        #: (the default) disables every tracing hook; sites guard with
        #: a single ``is not None`` test.
        self.tracer = None

    # -- wiring -----------------------------------------------------------

    @staticmethod
    def _make_buffer(link_id: int) -> PacketBuffer:
        return PacketBuffer(
            link_id, max_packets=FLUSH_MAX_PACKETS, max_bytes=FLUSH_MAX_BYTES
        )

    def add_child(self, end: ChannelEnd) -> None:
        """Attach a downstream connection (to a child node or back-end)."""
        self.children[end.link_id] = end
        self._child_buffers[end.link_id] = self._make_buffer(end.link_id)
        self._last_seen[end.link_id] = self.clock()

    def configure_failure(
        self,
        policy: str = DEGRADE,
        heartbeat: Optional[HeartbeatConfig] = None,
        recovery=None,
        topo_key=None,
        repair_fn: Optional[Callable[[], Optional[ChannelEnd]]] = None,
        checkpoint_interval: Optional[float] = None,
    ) -> None:
        """Install this node's fault-tolerance configuration."""
        self.policy = policy
        if heartbeat is not None:
            self.heartbeat = heartbeat
        self.recovery = recovery
        self.topo_key = topo_key
        self.repair_fn = repair_fn
        if checkpoint_interval is not None:
            self.checkpoint_interval = checkpoint_interval
        self._hb_interval = self._draw_hb_interval()

    # -- adoption admission (tree repair) ---------------------------------

    def offer_child(self, end: ChannelEnd, adopted: bool = True) -> None:
        """Queue a new child connection for admission (thread-safe).

        Used by the recovery coordinator to hand an orphan's uplink to
        its adopting ancestor, and by off-thread acceptors (concurrent
        back-end attaches) to hand over fresh links: the attachment
        itself happens on the owner's own processing thread (see
        :meth:`admit_pending_children`), never concurrently with it.
        ``adopted=False`` marks an ordinary first-time connection so it
        is not counted as an orphan adoption.
        """
        with self._pending_lock:
            self._pending_children.append((end, adopted))
        wake = self.inbox.on_deliver
        if wake is not None:
            wake()

    def admit_pending_children(self) -> None:
        """Attach any queued adoptions (called from the owning loop)."""
        if not self._pending_children:
            return
        with self._pending_lock:
            pending, self._pending_children = self._pending_children, []
        for end, adopted in pending:
            self.add_child(end)
            if adopted:
                self._c_orphans_adopted.value += 1
                log.info(
                    "%s: adopted orphan link %d", self.name, end.link_id
                )

    @property
    def parent_link_id(self) -> Optional[int]:
        return self.parent.link_id if self.parent is not None else None

    @property
    def ready(self) -> bool:
        """All expected back-end ranks have reported through this node."""
        return len(self.reported_ranks) >= self.expected_ranks

    # -- observability -----------------------------------------------------

    @property
    def obs_identity(self) -> str:
        """The ``rank:hostname`` key this node reports under."""
        return f"{self.obs_rank}:{self.name}"

    def _count_transport(self, kind: str) -> int:
        """Live links (parent + children) using transport *kind*."""
        count = sum(
            1
            for end in self.children.values()
            if getattr(end, "transport_kind", "channel") == kind
        )
        if self.parent is not None:
            if getattr(self.parent, "transport_kind", "channel") == kind:
                count += 1
        return count

    def metrics_snapshot(self) -> dict:
        """This process's full metrics snapshot (JSON-able).

        Merges the node registry with every provider in
        :attr:`extra_metrics` (the event loop contributes its
        ``loop_*`` transport series this way).  The result is the
        ``metrics`` document carried in ``STATS_SNAPSHOT`` replies —
        see :meth:`repro.obs.metrics.MetricsRegistry.snapshot` for the
        shape.
        """
        snap = self.metrics.snapshot()
        for provider in self.extra_metrics:
            try:
                extra = provider()
            except Exception:  # a broken provider must not break gathers
                continue
            for kind in ("counters", "gauges", "histograms"):
                snap[kind].update(extra.get(kind, {}))
        return snap

    # -- inbound ------------------------------------------------------------

    def handle_payload(self, link_id: int, payload: Optional[bytes]) -> None:
        """Unbatch one inbound message and dispatch its packets."""
        if self.wedged:
            # Fault injection: the process is "alive" at the transport
            # level but its loop no longer makes progress.  Dropping
            # input (rather than pausing the thread) keeps the wedge
            # deterministic and lets heartbeat deadlines catch it.
            return
        # Attach adopted orphans first so a report travelling through a
        # brand-new link never beats the link's own admission.
        if self._pending_children:
            self.admit_pending_children()
        if payload is None:
            self._handle_link_closed(link_id)
            return
        # Any traffic counts as liveness — probes only matter on links
        # that would otherwise be silent (see HeartbeatConfig).
        self._last_seen[link_id] = self.clock()
        self._c_messages_in.value += 1
        tracer = self.tracer
        if tracer is None:
            self._dispatch_batch(link_id, decode_batch(payload))
            return
        # Tracing attached: one recv span per message (the unbatch) and
        # one demux span covering the dispatch loop.  Spans are
        # per-message, not per-packet — the recorder costs two clock
        # reads per span, which is negligible per message but would
        # dominate the §4.2.1 relay path if paid per packet.
        t0 = tracer.span_start()
        packets = list(decode_batch(payload))
        tracer.span_end("recv", t0, detail=f"link={link_id}")
        t0 = tracer.span_start()
        self._dispatch_batch(link_id, packets)
        if packets:
            tracer.span_end(
                "demux", t0, packets[0].stream_id, detail=f"n={len(packets)}"
            )

    def _dispatch_batch(self, link_id: int, packets) -> None:
        """Dispatch one inbound message's packets.

        Inlines the §4.2.1 relay fast path: a data packet arriving
        from a child for a stream this node holds no state on goes
        straight to the parent buffer.  Counting rides local
        accumulators folded into the registry once per message, so
        per-packet instrumentation cost is two integer adds and one
        slot read (the inline ``Packet.values_decoded`` check) —
        measured <5% of the hop by ``benchmarks/bench_observability.py``.
        """
        n = 0
        if self.parent is not None and link_id == self.parent_link_id:
            for packet in packets:
                n += 1
                self.dispatch(link_id, packet)
        else:
            streams = self.streams
            specs = self._stream_specs
            pbuf = self._parent_buffer
            up = 0
            for packet in packets:
                sid = packet.stream_id
                if (
                    sid == CONTROL_STREAM_ID
                    or pbuf is None
                    or sid in streams
                    or (specs and sid in specs)
                ):
                    n += 1
                    self.dispatch(link_id, packet)
                else:
                    # Packets from decode_batch are lazy wire frames by
                    # construction and nothing on this path touches
                    # their values, so every one counts as a zero-copy
                    # relay — no per-packet values_decoded check.
                    up += 1
                    pbuf.add(packet)
            if up:
                self._c_packets_up.value += up
                self._c_relayed_zero_copy.value += up
                self._note_pending()
            n += up
        self._c_packets_in.value += n

    def dispatch(self, link_id: int, packet: Packet) -> None:
        """Demultiplex one packet (Figure 3's demux layer)."""
        from_parent = self.parent is not None and link_id == self.parent_link_id
        if packet.stream_id == CONTROL_STREAM_ID:
            if packet.tag == TAG_HEARTBEAT:
                # Consumed at the first hop; never forwarded.  Remember
                # that this peer speaks heartbeats: only such links are
                # subject to liveness deadlines (a peer that never
                # probes — e.g. a passive tool thread — is not falsely
                # declared dead for being quiet).
                self._hb_peers.add(link_id)
                return
            if from_parent or self.parent is None and packet.tag in (
                TAG_NEW_STREAM,
                TAG_CLOSE_STREAM,
                TAG_SHUTDOWN,
            ):
                # Downstream-travelling control (front-end originates
                # these locally via handle_control_down).
                self.handle_control_down(packet)
            else:
                self.handle_control_up(link_id, packet)
            # Control traffic (stream creation/closure, shutdown,
            # endpoint reports) is latency-sensitive: expire the
            # adaptive flush window so the next maybe_flush ships it
            # without waiting out FLUSH_MAX_DELAY.
            self._note_urgent()
            return
        if from_parent:
            self._handle_data_down(packet)
        else:
            self._handle_data_up(link_id, packet)

    # -- control ----------------------------------------------------------

    def handle_control_up(self, link_id: int, packet: Packet) -> None:
        if packet.tag == TAG_ENDPOINT_REPORT:
            (ranks,) = packet.unpack()
            self.routing.add_report(link_id, ranks)
            self.reported_ranks.update(ranks)
            if self.ready and not self.sent_report and self.parent is not None:
                self.sent_report = True
                self._queue_up(make_endpoint_report(sorted(self.reported_ranks)))
            # Tree repair: a report arriving on a link that existing
            # streams don't know about is an adopted orphan announcing
            # its subtree.  Splice the link into every stream whose
            # endpoint set intersects the reported ranks — with
            # *joining* wave semantics — and tell the front-end which
            # ranks just (re)joined each stream.
            for manager in self.streams.values():
                gained = manager.endpoints & frozenset(ranks)
                if gained and link_id not in manager.child_links:
                    manager.add_link(link_id)
                    self._seed_from_checkpoints(manager, link_id, gained)
                    if manager.sync_timed:
                        self._note_stream_activity(manager)
                    self._c_waves_reconfigured.value += 1
                    if self.recovery is not None:
                        self.recovery.bump("waves_reconfigured")
                    self._emit_ranks_changed(
                        manager.stream_id,
                        manager.membership_epoch,
                        gained=sorted(gained),
                    )
        elif packet.tag == TAG_RANKS_CHANGED:
            # Travels upstream to the front-end (which overrides
            # _note_ranks_changed to record it for the tool).
            if self.parent is None:
                self._note_ranks_changed(packet)
            else:
                self._queue_up(packet)
        elif packet.tag == TAG_STATS_REPLY:
            # A descendant's metrics snapshot travelling to the root
            # (the front-end overrides _note_stats_reply to collect it).
            self._c_stats_replies_relayed.value += 1
            if self.parent is None:
                self._note_stats_reply(packet)
            else:
                self._queue_up(packet)
        elif packet.tag == TAG_ADDR_REPORT:
            # Recursive instantiation: a descendant announcing its
            # listener address to the front-end (which overrides
            # _note_addr_report to record it).
            if self.parent is None:
                self._note_addr_report(packet)
            else:
                self._queue_up(packet)
        elif packet.tag == TAG_JOIN:
            self._handle_join(link_id, packet)
        elif packet.tag == TAG_LEAVE:
            self._handle_leave(link_id, packet)
        elif packet.tag == TAG_CHECKPOINT:
            # One-hop state deposit from a child: store the most recent
            # document per (child link, stream); never relayed.
            stream_id, _out_wave, payload = parse_checkpoint(packet)
            try:
                doc = json.loads(payload)
            except ValueError:
                doc = None
            if isinstance(doc, dict):
                self._checkpoints[(link_id, stream_id)] = doc
        else:
            # Unknown upstream control: forward toward the front-end.
            self._queue_up(packet)

    def _handle_join(self, link_id: int, packet: Packet) -> None:
        """Splice a joining back-end rank into this hop (``TAG_JOIN``).

        The join packet doubles as the §2.5 endpoint report for
        elastic membership: it installs routing for the new rank and
        enters it into the named streams with *joining* wave semantics
        (an in-flight wave completes over the old membership), then
        continues toward the front-end so every ancestor splices too.
        """
        rank, stream_ids = parse_join(packet)
        self.routing.add_report(link_id, [rank])
        if rank not in self.reported_ranks:
            self.reported_ranks.add(rank)
            # The subtree grew: readiness stays an exact census.
            self.expected_ranks += 1
        self._c_members_joined.value += 1
        if self.recovery is not None and self.parent is None:
            self.recovery.bump("members_joined")
        for sid in stream_ids:
            manager = self.streams.get(sid)
            if manager is None:
                # A pending bulk spec joins without materializing: the
                # endpoint set travels with the spec, routes recompute
                # at materialization.
                spec = self._stream_specs.get(sid)
                if spec is not None:
                    spec["endpoints"] = spec["endpoints"] | {rank}
                continue
            manager.add_endpoints([rank])
            if link_id not in manager.child_links:
                manager.add_link(link_id)
                self._c_waves_reconfigured.value += 1
            if manager.sync_timed:
                self._note_stream_activity(manager)
            self._emit_ranks_changed(
                sid, manager.membership_epoch, gained=[rank]
            )
        if self.parent is not None:
            self._queue_up(packet)

    def _handle_leave(self, link_id: int, packet: Packet) -> None:
        """Retire a departing back-end rank (``TAG_LEAVE``) at this hop.

        The departing back-end flushed before announcing, so queued
        contributions still ride; waves stop requiring the rank from
        the next epoch, and when the whole subtree behind *link_id* is
        the leaver the link is marked announced-leaving — its eventual
        EOF is handled as an expected departure, not a failure.
        """
        rank = parse_leave(packet)
        if rank in self.reported_ranks:
            self.reported_ranks.discard(rank)
            self.expected_ranks = max(self.expected_ranks - 1, 0)
        self._c_members_left.value += 1
        if self.recovery is not None and self.parent is None:
            self.recovery.bump("members_left")
        if self.parent is not None:
            # Forward the announcement BEFORE the lost events it will
            # trigger: the front-end must learn the departure is
            # voluntary before any RANKS_CHANGED for this rank arrives,
            # or fail_fast would poison on a clean leave.
            self._queue_up(packet)
        retire_link = self.routing.ranks_behind(link_id) <= {rank}
        if retire_link:
            self._announced_leaving.add(link_id)
        for manager in self.streams.values():
            if rank not in manager.endpoints:
                continue
            manager.remove_endpoints([rank])
            if retire_link and link_id in manager.child_links:
                manager.retire_link(link_id)
                self._c_waves_reconfigured.value += 1
            if manager.sync_timed:
                self._note_stream_activity(manager)
            self._emit_ranks_changed(
                manager.stream_id, manager.membership_epoch, lost=[rank]
            )
        if self._stream_specs:
            # Copy-on-write, preserving sharing: specs that pointed at
            # the same rank set keep pointing at one (shrunk) set.
            shrunk: Dict[FrozenSet[int], FrozenSet[int]] = {}
            for spec in self._stream_specs.values():
                eps = spec["endpoints"]
                if rank not in eps:
                    continue
                new = shrunk.get(eps)
                if new is None:
                    new = shrunk[eps] = eps - {rank}
                spec["endpoints"] = new
        self.routing.remove_rank(rank)

    def _seed_from_checkpoints(self, manager, link_id: int, ranks) -> None:
        """Apply a dead child's checkpoint to a freshly adopted link.

        Orphans replay their un-ACKed output history after repair;
        the dedup watermark their dead parent had reached — deposited
        here via ``TAG_CHECKPOINT`` and keyed by rank set — makes that
        replay duplicate-free for waves the dead node had already
        forwarded upstream.  Resumable filter state restores only
        while this node's own transform state is pristine.
        """
        key = _rank_key(ranks)
        for (from_link, sid), doc in list(self._checkpoints.items()):
            if sid != manager.stream_id or from_link in self.children:
                continue  # only a *dead* depositor's state is authoritative
            wm = doc.get("watermarks", {}).get(key)
            if isinstance(wm, int):
                manager.seed_watermark(link_id, wm)
            manager.restore_state(doc)

    def handle_control_down(self, packet: Packet) -> None:
        if packet.tag == TAG_NEW_STREAM:
            (
                stream_id,
                endpoints,
                sync_id,
                trans_id,
                timeout,
                down_id,
                chunk_bytes,
                wave_pattern,
            ) = parse_new_stream(packet)
            links = self.routing.links_for(frozenset(endpoints))
            self._install_stream(
                StreamManager.create(
                    stream_id,
                    endpoints,
                    links,
                    self.registry,
                    sync_id,
                    trans_id,
                    sync_timeout=timeout,
                    down_transform_filter_id=down_id,
                    clock=self.clock,
                    owner=self,
                    chunk_bytes=chunk_bytes,
                    wave_pattern=wave_pattern,
                )
            )
            for link in links:
                self._queue_down(link, packet)
        elif packet.tag == TAG_NEW_STREAMS:
            # Batched announcement: register every stream as a lazy
            # spec (materialized on first data packet) and forward the
            # whole packet once down every link any announced group
            # routes through — one control wave for N streams.
            groups, specs = parse_new_streams(packet)
            interned = []
            fanout: set = set()
            for ranks in groups:
                grp = self.routing.group(frozenset(ranks))
                interned.append(grp)
                fanout.update(self.routing.links_for_group(grp))
            for (
                stream_id,
                gidx,
                sync_id,
                trans_id,
                timeout,
                down_id,
                chunk_bytes,
                wave_pattern,
            ) in specs:
                self._stream_specs[stream_id] = {
                    # Shared with the interned CommGroup (frozenset):
                    # 5000 specs over one communicator hold ONE rank
                    # set.  Membership churn rebinds copy-on-write.
                    "endpoints": interned[gidx].endpoints,
                    "sync": sync_id,
                    "trans": trans_id,
                    "timeout": timeout,
                    "down": down_id,
                    "chunk": chunk_bytes,
                    "pattern": wave_pattern,
                }
            for link in fanout:
                self._queue_down(link, packet)
        elif packet.tag == TAG_CLOSE_STREAM:
            (stream_id,) = packet.unpack()
            spec = self._stream_specs.pop(stream_id, None)
            manager = self._discard_stream(stream_id)
            if manager is not None:
                for out in manager.flush_upstream():
                    self._queue_up(out)
                manager.close()
                for link in manager.child_links:
                    self._queue_down(link, packet)
            elif spec is not None:
                # Never materialized here: close the announcement along
                # the group's current routes.
                for link in self.routing.links_for(frozenset(spec["endpoints"])):
                    self._queue_down(link, packet)
        elif packet.tag == TAG_SHUTDOWN:
            self.shutting_down = True
            for link in list(self.children):
                self._queue_down(link, packet)
        elif packet.tag == TAG_STATS_REQUEST:
            # Metrics gather: answer with this node's registry, then
            # keep flooding the request toward the leaves.  The
            # front-end never answers itself over the wire (the network
            # reads its registry locally); back-ends consume the
            # request silently, so only internal nodes reply.
            if self.parent is not None:
                request_id = parse_stats_request(packet)
                payload = dumps_snapshot(
                    self.obs_identity, self.obs_rank, self.metrics_snapshot()
                )
                self._c_stats_replies_relayed.value += 1
                self._queue_up(make_stats_reply(request_id, payload))
            for link in list(self.children):
                self._queue_down(link, packet)
        elif packet.tag == TAG_WAVE_ACK:
            # Link-local (one hop): the parent delivered our output
            # through wave_seq — prune the retransmit history.
            stream_id, wave_seq = parse_wave_ack(packet)
            manager = self.streams.get(stream_id)
            if manager is not None:
                manager.ack_output(wave_seq)
        elif packet.tag == TAG_WAVE_NACK:
            # Link-local (one hop): the parent is missing our output
            # from wave_seq onward — replay what history still holds.
            stream_id, wave_seq = parse_wave_nack(packet)
            manager = self.streams.get(stream_id)
            if manager is not None:
                resent = manager.resend_since(wave_seq - 1)
                for out in resent:
                    self._queue_up(out)
                if resent:
                    self._note_urgent()
        else:
            # Unknown downstream control: flood to every child.
            for link in list(self.children):
                self._queue_down(link, packet)

    # -- stream bookkeeping (lazy materialization + O(active) ticks) -------

    def _install_stream(self, manager: StreamManager) -> StreamManager:
        """Register a live stream manager (eager or just materialized)."""
        self.streams[manager.stream_id] = manager
        manager.ack_hook = self._send_wave_ack
        manager.nack_hook = self._send_wave_nack
        if manager.sync_timed:
            self._timed_stream_count += 1
        return manager

    def _discard_stream(self, stream_id: int) -> Optional[StreamManager]:
        """Forget a stream's live state (close path); returns the manager."""
        manager = self.streams.pop(stream_id, None)
        if manager is not None and manager.sync_timed:
            self._timed_stream_count -= 1
        self._active_streams.pop(stream_id, None)
        self._armed_deadlines.pop(stream_id, None)
        return manager

    def _materialize_stream(self, stream_id: int) -> Optional[StreamManager]:
        """Instantiate a bulk-announced stream's state on first use.

        Routes come from the interned group's epoch cache, so a spec
        announced before repair/join/leave still materializes against
        the *current* topology.
        """
        spec = self._stream_specs.pop(stream_id, None)
        if spec is None:
            return None
        endpoints = frozenset(spec["endpoints"])
        links = self.routing.links_for(endpoints)
        return self._install_stream(
            StreamManager.create(
                stream_id,
                sorted(endpoints),
                links,
                self.registry,
                spec["sync"],
                spec["trans"],
                sync_timeout=spec["timeout"],
                down_transform_filter_id=spec["down"],
                clock=self.clock,
                owner=self,
                chunk_bytes=spec["chunk"],
                wave_pattern=spec["pattern"],
            )
        )

    def stream_state(self, stream_id: int) -> Optional[StreamManager]:
        """The stream's manager, materializing a lazy announcement.

        Use instead of ``streams.get`` when the caller needs live
        state for a stream that may still be a pending bulk spec
        (wave hooks, membership epochs).
        """
        manager = self.streams.get(stream_id)
        if manager is None and self._stream_specs:
            manager = self._materialize_stream(stream_id)
        return manager

    def _note_stream_activity(self, manager: StreamManager) -> None:
        """Track a TimeOut stream's armed deadline (O(active) ticks).

        Call after any operation that may arm, move, or clear the
        stream's synchronization deadline.  Disarms that slip through
        (a wave released elsewhere) self-heal: the stale heap entry
        triggers at most one spurious wakeup whose ``poll_streams``
        re-evaluates the stream and clears it.
        """
        sid = manager.stream_id
        deadline = manager.next_deadline()
        if deadline is None:
            if sid in self._active_streams:
                del self._active_streams[sid]
                self._armed_deadlines.pop(sid, None)
            return
        self._active_streams[sid] = manager
        if self._armed_deadlines.get(sid) != deadline:
            self._armed_deadlines[sid] = deadline
            heapq.heappush(self._deadline_heap, (deadline, sid))

    # -- data ------------------------------------------------------------

    def _handle_data_up(self, link_id: int, packet: Packet) -> None:
        self._c_packets_up.value += 1
        manager = self.streams.get(packet.stream_id)
        if manager is None:
            if self._stream_specs:
                # First data packet of a bulk-announced stream.
                manager = self._materialize_stream(packet.stream_id)
            if manager is None:
                # Stream unknown here (e.g. point-to-point pass-through):
                # forward unchanged, preserving MRNet's negligible-overhead
                # relay behaviour (§4.2.1).
                self._queue_up(packet)
                return
        if manager.passthrough:
            # DONTWAIT + null transform: the wave machinery is an
            # identity function, so relay directly (§4.2.1).
            if not manager.closed:
                self._queue_up(packet)
            return
        outputs = manager.push_upstream(link_id, packet)
        if outputs:
            self._c_waves_aggregated.value += 1
        for out in outputs:
            self._queue_up(out)
        if manager.sync_timed:
            self._note_stream_activity(manager)

    def _handle_data_down(self, packet: Packet) -> None:
        self._c_packets_down.value += 1
        manager = self.streams.get(packet.stream_id)
        if manager is None:
            if self._stream_specs:
                manager = self._materialize_stream(packet.stream_id)
            if manager is None:
                # No stream state: flood to all children.
                for link in list(self.children):
                    self._queue_down(link, packet)
                return
        for out in manager.transform_downstream(packet):
            links = manager.child_links
            if (
                manager.wave_pattern == WAVE_DUAL_ROOT
                and out.tag == TAG_CHUNK
                and out.raw_values[1] & 1
            ):
                # Dual-root schedule: odd fragments fan out in reverse
                # child order, interleaving two broadcast schedules that
                # load the links in opposite order (Träff's dual-root
                # reduce-to-all approximated on a single tree).
                links = list(reversed(links))
            for link in links:
                self._queue_down(link, out)

    def poll_streams(self) -> None:
        """Drive time-based synchronization criteria (TimeOut filters).

        O(active): only streams with an armed deadline are visited —
        idle streams, however many thousands exist, cost nothing per
        tick.  (Only TimeOut filters ever release output from a poll;
        WaitForAll/DontWait streams release on push alone.)
        """
        active = self._active_streams
        if not active:
            return
        for sid in list(active):
            manager = active[sid]
            for out in manager.poll_upstream():
                self._queue_up(out)
            self._note_stream_activity(manager)

    def _handle_link_closed(self, link_id: int) -> None:
        self._note_urgent()
        self._last_seen.pop(link_id, None)
        self._hb_peers.discard(link_id)
        if self.parent is not None and link_id == self.parent_link_id:
            if self.policy == REPAIR and self.repair_fn is not None:
                if self._repair_parent():
                    return
            # Parent vanished and no repair: treat as shutdown.
            self.shutting_down = True
            for link in list(self.children):
                self._queue_down(link, Packet(CONTROL_STREAM_ID, TAG_SHUTDOWN, "%d", (0,)))
            return
        announced = link_id in self._announced_leaving
        self._announced_leaving.discard(link_id)
        if announced:
            # Graceful leave: endpoints and routing were already
            # retired by the TAG_LEAVE handler, so this EOF is just the
            # link winding down — drop its state deposits too (a leaver
            # must never seed a future adoption).
            for key in [k for k in self._checkpoints if k[0] == link_id]:
                self._checkpoints.pop(key, None)
        lost = self.routing.ranks_behind(link_id)
        self.children.pop(link_id, None)
        buf = self._child_buffers.pop(link_id, None)
        if buf is not None:
            # Packets still parked for the dead link (e.g. held back by
            # backpressure) are lost; account for them the same way a
            # failed flush would.
            self._drop_buffer(link_id, buf)
        self.routing.remove_link(link_id)
        for manager in self.streams.values():
            if link_id in manager.child_links:
                for out in manager.drop_link(link_id):
                    self._queue_up(out)
                self._c_waves_reconfigured.value += 1
                if self.recovery is not None and not announced:
                    self.recovery.bump("waves_reconfigured")
                if manager.sync_timed:
                    self._note_stream_activity(manager)
                gone = manager.endpoints & frozenset(lost)
                if gone:
                    self._emit_ranks_changed(
                        manager.stream_id,
                        manager.membership_epoch,
                        lost=sorted(gone),
                    )
        if lost:
            # Copy-on-write with sharing preserved, as in _handle_leave.
            shrunk: Dict[FrozenSet[int], FrozenSet[int]] = {}
            for spec in self._stream_specs.values():
                eps = spec["endpoints"]
                if not (eps & lost):
                    continue
                new = shrunk.get(eps)
                if new is None:
                    new = shrunk[eps] = eps - lost
                spec["endpoints"] = new

    def _repair_parent(self) -> bool:
        """Replace a dead parent link via the recovery coordinator.

        Returns ``True`` if a new parent end was installed.  Pending
        upstream packets carry over to the new link, and the node
        re-sends its endpoint report — the §2.5 protocol doubling as
        the repair announcement that rebuilds routing and wave
        membership at the adopter.
        """
        try:
            new_parent = self.repair_fn()
        except Exception:  # repair must never take the node down
            log.exception("%s: parent repair attempt raised", self.name)
            new_parent = None
        if new_parent is None:
            log.warning("%s: parent died and repair failed; shutting down", self.name)
            return False
        old_buffer = self._parent_buffer
        self.parent = new_parent
        self._parent_buffer = self._make_buffer(new_parent.link_id)
        self._last_seen[new_parent.link_id] = self.clock()
        # The report MUST precede any carried-over wave data on the new
        # link: it is what splices this link into the adopter's stream
        # managers — data arriving first would hit an unknown child.
        ranks = self.routing.all_ranks() or self.reported_ranks
        self._queue_up(make_endpoint_report(sorted(ranks)))
        # Crash-consistent waves: replay the un-ACKed output history
        # before the carried-over (never-sent) packets — the adopter's
        # per-link dedup watermark (seeded from our dead parent's
        # checkpoint) drops whatever it already saw, and any overlap
        # between history and the old buffer dedups the same way.
        for manager in self.streams.values():
            for pkt in manager.resend_since():
                self._queue_up(pkt)
        if old_buffer is not None:
            for pkt in old_buffer.drain():
                self._parent_buffer.add(pkt)
        self._note_urgent()
        log.info(
            "%s: parent link repaired -> link %d", self.name, new_parent.link_id
        )
        return True

    # -- crash-consistency control emitters --------------------------------

    def _send_wave_ack(self, link_id, stream_id: int, wave_seq: int) -> None:
        """Stream-manager hook: confirm delivery through *wave_seq*."""
        self._queue_down(link_id, make_wave_ack(stream_id, wave_seq))

    def _send_wave_nack(self, link_id, stream_id: int, wave_seq: int) -> None:
        """Stream-manager hook: request replay from *wave_seq* onward."""
        self._queue_down(link_id, make_wave_nack(stream_id, wave_seq))
        self._note_urgent()

    # -- membership-change notification -----------------------------------

    def _emit_ranks_changed(
        self, stream_id: int, epoch: int, lost=(), gained=()
    ) -> None:
        packet = make_ranks_changed(stream_id, epoch, lost, gained)
        if self.parent is None:
            self._note_ranks_changed(packet)
        else:
            self._queue_up(packet)

    def _note_ranks_changed(self, packet: Packet) -> None:
        """Root-level sink for membership changes; the front-end
        overrides this to surface events to the tool."""

    def _note_stats_reply(self, packet: Packet) -> None:
        """Root-level sink for ``TAG_STATS_REPLY`` packets; the
        front-end overrides this to collect gathered snapshots."""

    def _note_addr_report(self, packet: Packet) -> None:
        """Root-level sink for ``TAG_ADDR_REPORT`` packets; the
        front-end overrides this to record listener addresses during
        recursive instantiation."""

    # -- liveness (heartbeats) ---------------------------------------------

    def heartbeat_tick(self) -> None:
        """Emit due probes and enforce liveness deadlines.

        Called periodically by whichever loop drives this core (it
        also drives the periodic checkpoint deposit — see
        :meth:`checkpoint_tick`).  A no-op unless
        :class:`HeartbeatConfig` enables probing.  Only links whose
        peer has *ever* sent a probe are subject to the silence
        deadline, so a heartbeat-enabled node interoperates with
        passive peers (the tool's back-end thread, a front-end pumped
        only by API calls) without false positives.

        Probe emission is jittered: each node draws its next interval
        from ``interval * [1-jitter, 1+jitter]`` with a deterministic
        per-node generator, de-syncing the probe bursts of a large
        colocated tree.  The *detection* deadline is never jittered,
        so liveness semantics are unchanged.
        """
        self.checkpoint_tick()
        if (
            not self.heartbeat.enabled
            or self.shutting_down
            or self.crashed
            or self.wedged
        ):
            # A wedged node must also stop probing: its links stay
            # open, so silent probes are the only way peers notice.
            return
        now = self.clock()
        if self._last_beat is None or now - self._last_beat >= self._hb_interval:
            self._last_beat = now
            self._hb_interval = self._draw_hb_interval()
            self._hb_seq += 1
            probe = make_heartbeat(self._hb_seq)
            if self.parent is not None:
                self._queue_up(probe)
                self._c_heartbeats_sent.value += 1
            for link in list(self.children):
                self._queue_down(link, probe)
                self._c_heartbeats_sent.value += 1
            self._note_urgent()
        deadline = self.heartbeat.deadline
        for link_id in list(self._hb_peers):
            last = self._last_seen.get(link_id)
            if last is None or now - last < deadline:
                continue
            self._c_heartbeats_missed.value += 1
            if self.recovery is not None:
                self.recovery.bump("heartbeats_missed")
            log.warning(
                "%s: link %s silent for %.2fs (deadline %.2fs); declaring dead",
                self.name,
                "parent" if link_id == self.parent_link_id else link_id,
                now - last,
                deadline,
            )
            end = (
                self.parent
                if link_id == self.parent_link_id
                else self.children.get(link_id)
            )
            if end is not None:
                try:
                    end.close()
                except Exception:
                    pass
            self._handle_link_closed(link_id)

    def _draw_hb_interval(self) -> float:
        """Next probe interval: base interval with deterministic jitter."""
        jitter = getattr(self.heartbeat, "jitter", 0.0)
        interval = self.heartbeat.interval
        if not jitter:
            return interval
        return interval * (1.0 - jitter + 2.0 * jitter * self._hb_rng.random())

    def checkpoint_tick(self) -> None:
        """Ship one ``TAG_CHECKPOINT`` deposit per stream when due.

        A no-op unless :attr:`checkpoint_interval` is set and this
        node has a parent.  Each deposit carries the stream's output
        wave sequence, its per-child dedup watermarks and — when the
        filter's state serializes — the resumable transform/sync state,
        with link-keyed maps re-keyed by the rank set behind each link
        so the parent can match them to adopted orphans later.
        """
        if (
            not self.checkpoint_interval
            or self.parent is None
            or self.shutting_down
            or self.crashed
            or self.wedged
        ):
            return
        now = self.clock()
        if (
            self._last_checkpoint is not None
            and now - self._last_checkpoint < self.checkpoint_interval
        ):
            return
        self._last_checkpoint = now
        for sid, manager in list(self.streams.items()):
            if manager.passthrough or manager.closed:
                continue
            doc = manager.checkpoint_state()
            doc["watermarks"] = self._rekey_by_ranks(doc.get("watermarks", {}))
            sync = doc.get("sync")
            if isinstance(sync, dict):
                sync["pending"] = self._rekey_by_ranks(sync.get("pending", {}))
            payload = json.dumps(doc, separators=(",", ":"))
            self._c_checkpoint_bytes.value += len(payload)
            self._queue_up(make_checkpoint(sid, doc.get("out_wave", 0), payload))

    def _rekey_by_ranks(self, by_link: dict) -> dict:
        """Re-key a per-link map by the rank set behind each link.

        Entries for links with no known ranks (nothing reported yet)
        are dropped — they could never be matched at the parent.
        """
        out = {}
        for lid, value in by_link.items():
            try:
                link = int(lid)
            except (TypeError, ValueError):
                continue
            ranks = self.routing.ranks_behind(link)
            if ranks:
                out[_rank_key(ranks)] = value
        return out

    def _next_checkpoint_deadline(self) -> Optional[float]:
        """Clock time the next checkpoint deposit is due (None: off)."""
        if (
            not self.checkpoint_interval
            or self.parent is None
            or self.shutting_down
        ):
            return None
        if self._last_checkpoint is None:
            return self.clock()
        return self._last_checkpoint + self.checkpoint_interval

    def next_heartbeat_deadline(self) -> Optional[float]:
        """Earliest clock time :meth:`heartbeat_tick` has work to do
        (probe emission, liveness deadlines, or a checkpoint deposit)."""
        soonest = self._next_checkpoint_deadline()
        if not self.heartbeat.enabled or self.shutting_down:
            return soonest
        if self._last_beat is None:
            return self.clock()
        next_emit = self._last_beat + self._hb_interval
        if soonest is None or next_emit < soonest:
            soonest = next_emit
        deadline = self.heartbeat.deadline
        for link_id in self._hb_peers:
            last = self._last_seen.get(link_id)
            if last is None:
                continue
            check = last + deadline
            if check < soonest:
                soonest = check
        return soonest

    # -- outbound ----------------------------------------------------------

    def _queue_up(self, packet: Packet) -> None:
        if self._parent_buffer is not None:
            # Inline Packet.values_decoded: the relay path runs this
            # per packet, and the slot read is ~3x cheaper than the
            # property call.
            if packet._values is None:
                self._c_relayed_zero_copy.value += 1
            self._parent_buffer.add(packet)
            self._note_pending()
        else:
            self.deliver_local(packet)

    def _queue_down(self, link_id: int, packet: Packet) -> None:
        buf = self._child_buffers.get(link_id)
        if buf is not None:
            if packet._values is None:
                self._c_relayed_zero_copy.value += 1
            buf.add(packet)
            self._note_pending()

    def _note_pending(self) -> None:
        """Arm the adaptive flush window on the first packet queued."""
        if self._flush_deadline is None:
            self._flush_deadline = self.clock() + self.flush_max_delay

    def _note_urgent(self) -> None:
        """Expire the flush window: pending output should go now."""
        self._flush_deadline = self.clock()

    def deliver_local(self, packet: Packet) -> None:
        """Upstream output at the tree root; overridden by the front-end."""
        raise NotImplementedError(
            "root NodeCore must override deliver_local"
        )  # pragma: no cover

    def flush(self) -> None:
        """Encode and transmit all non-empty output buffers (forced)."""
        if self._parent_buffer is not None and len(self._parent_buffer):
            self._flush_buffer(self.parent_link_id, self.parent, self._parent_buffer)
        for link_id, buf in list(self._child_buffers.items()):
            if len(buf):
                self._flush_buffer(link_id, self.children.get(link_id), buf)
        if not self.has_pending_output:
            self._flush_deadline = None

    def maybe_flush(self) -> None:
        """Adaptive flush: transmit only what the policy says is due.

        Buffers past their size bound go immediately; everything goes
        once the time window armed by the first queued packet expires.
        Event loops call this while busy and :meth:`flush` when idle.
        """
        if (
            self._flush_deadline is not None
            and self.clock() >= self._flush_deadline
        ):
            self.flush()
            return
        if (
            self._parent_buffer is not None
            and self._parent_buffer.should_flush()
        ):
            self._flush_buffer(self.parent_link_id, self.parent, self._parent_buffer)
        for link_id, buf in list(self._child_buffers.items()):
            if buf.should_flush():
                self._flush_buffer(link_id, self.children.get(link_id), buf)
        if not self.has_pending_output:
            self._flush_deadline = None

    def _flush_buffer(
        self, link_id: Optional[int], end: Optional[ChannelEnd], buf: PacketBuffer
    ) -> None:
        """Transmit one buffer with backpressure and loss accounting."""
        if end is None:
            # Link already torn down; nothing left to notify.
            self._drop_buffer(link_id, buf)
            return
        if getattr(end, "closed", False):
            self._drop_buffer(link_id, buf)
            if link_id is not None:
                self._handle_link_closed(link_id)
            return
        capacity = getattr(end, "send_capacity", None)
        if capacity is not None:
            # Framing overhead: 4-byte count plus 4 bytes per packet.
            needed = buf.nbytes + 4 * (len(buf) + 1)
            # An *empty* send queue accepts any single message (else an
            # oversized batch could never leave); a non-empty queue
            # defers anything it cannot fit.
            if needed > capacity() and getattr(end, "send_backlog", 1) > 0:
                self._c_send_queue_full.value += 1
                return  # backpressure: packets stay buffered, retried later
        packets = buf.drain()
        tracer = self.tracer
        if tracer is None:
            data = encode_batch(packets)
            t0 = 0.0
        else:
            # The rebatch stage (Figure 3): queued packets become one
            # outbound framed message.  Timed here — at the encode —
            # rather than per buffered packet, so tracing costs two
            # spans per flush instead of one per relayed packet.
            t0 = tracer.span_start()
            data = encode_batch(packets)
            tracer.span_end(
                "rebatch", t0, detail=f"link={link_id} n={len(packets)}"
            )
            t0 = tracer.span_start()
        try:
            end.send(data)
            self._c_messages_sent.value += 1
            self._h_flush_batch.observe(len(packets))
            if tracer is not None:
                tracer.span_end("send", t0, detail=f"link={link_id} n={len(packets)}")
        except SendQueueFull:
            # Bound hit despite the capacity check (concurrent writer):
            # keep the packets, count the deferral.
            buf.requeue(packets)
            self._c_send_queue_full.value += 1
        except ConnectionError:
            self._drop_packets(link_id, len(packets))
            if link_id is not None:
                self._handle_link_closed(link_id)

    def _drop_buffer(self, link_id: Optional[int], buf: PacketBuffer) -> None:
        self._drop_packets(link_id, len(buf.drain()))

    def _drop_packets(self, link_id: Optional[int], count: int) -> None:
        if not count:
            return
        self._c_dropped_on_close.value += count
        key = -1 if link_id is None else link_id
        if key not in self._drop_logged:
            self._drop_logged.add(key)
            log.warning(
                "%s: link %s closed; dropped %d queued packet(s)",
                self.name,
                "parent" if link_id == self.parent_link_id else link_id,
                count,
            )

    @property
    def has_pending_output(self) -> bool:
        """True while any output buffer still holds packets."""
        if self._parent_buffer is not None and len(self._parent_buffer):
            return True
        return any(len(b) for b in self._child_buffers.values())

    @property
    def next_flush_deadline(self) -> Optional[float]:
        """Clock time the adaptive flush window expires (None if unarmed)."""
        return self._flush_deadline

    def close_all(self) -> None:
        """Close every channel this node owns an end of."""
        if self.parent is not None:
            self.parent.close()
        for end in self.children.values():
            end.close()

    @property
    def has_timeout_streams(self) -> bool:
        """True when any live stream needs time-based polling.

        Maintained as a counter at stream install/discard — O(1), not
        a scan over every manager.
        """
        return self._timed_stream_count > 0

    def next_timeout_deadline(self) -> Optional[float]:
        """Earliest clock time a TimeOut stream could release a wave.

        ``None`` when no stream holds a timed wave — the caller may
        then block indefinitely on I/O.  This is what replaced the old
        2 ms ``TIMEOUT_POLL`` spin: loops sleep until this instant.

        Served from a lazy-deletion heap: superseded entries (whose
        recorded deadline no longer matches the stream's armed one)
        are popped on encounter, so the amortized cost is O(log
        active) instead of a scan over every open stream.
        """
        heap = self._deadline_heap
        armed = self._armed_deadlines
        while heap:
            deadline, sid = heap[0]
            if armed.get(sid) != deadline:
                heapq.heappop(heap)  # stale: disarmed or re-armed later
                continue
            return deadline
        return None

    def next_wakeup_deadline(self) -> Optional[float]:
        """Earliest clock time *any* timed concern needs this core.

        The single source of liveness semantics for every driver:
        loops sleep until exactly this instant (TimeOut streams and
        heartbeat emission/deadlines), so drivers cannot silently
        diverge on when a silent peer is declared dead.
        """
        deadline = self.next_timeout_deadline()
        hb = self.next_heartbeat_deadline()
        if hb is not None and (deadline is None or hb < deadline):
            deadline = hb
        return deadline


class CommNode(threading.Thread):
    """An internal process: a :class:`NodeCore` driven by its own thread.

    The driver is one selector-based
    :class:`~repro.transport.eventloop.EventLoop` owning every socket
    handed over via ``parent_socket``/:meth:`add_child_socket` plus
    the in-process inbox; the node runs with exactly one I/O thread.
    (The legacy ``io_mode="threads"`` inbox-polling driver — one
    reader thread per TCP link — was deprecated when the event loop
    landed and has been removed.)
    """

    io_mode = "eventloop"

    def __init__(
        self,
        name: str,
        registry: FilterRegistry,
        expected_ranks: int,
        parent: Optional[ChannelEnd] = None,
        clock: Callable[[], float] = time.monotonic,
        inbox: Optional[Inbox] = None,
        parent_socket=None,
    ):
        super().__init__(name=f"commnode-{name}", daemon=True)
        if parent is None and parent_socket is None:
            raise ValueError("CommNode needs a parent end or parent_socket")
        from ..transport.eventloop import EventLoop

        self.loop = EventLoop(clock=clock)
        if parent_socket is not None:
            parent = self.loop.add_socket(parent_socket)
        self.core = NodeCore(name, registry, expected_ranks, parent, clock, inbox)
        self.loop.bind(self.core)

    @property
    def inbox(self) -> Inbox:
        return self.core.inbox

    def add_child_socket(self, sock, **link_kwargs) -> ChannelEnd:
        """Register a connected child socket with this node's event loop.

        Must be called before :meth:`start`.  Returns the loop-managed
        link (usable wherever a ``ChannelEnd`` is expected).
        """
        end = self.loop.add_socket(sock, **link_kwargs)
        self.core.add_child(end)
        return end

    def run(self) -> None:  # pragma: no branch - loop structure
        self.loop.run()

    def kill(self) -> None:
        """Crash this node abruptly (fault injection).

        Unlike shutdown there is no goodbye broadcast: the loop exits
        and closes its channel ends, so peers see EOF (or, for a
        wedged node, heartbeat silence) exactly as they would for a
        killed OS process.
        """
        self.core.crashed = True
        self.loop.wake()


class NodeHost(threading.Thread):
    """One thread, one event loop, many colocated comm nodes.

    The colocated runtime: every :class:`NodeCore` added before
    :meth:`start` is driven by the same selector loop, so an entire
    internal tree costs exactly one steady-state thread (plus the
    optional filter workers), however many nodes it hosts.  Links
    between hosted nodes should be inproc pairs from
    ``loop.add_inproc_pair``; links to the outside world (channels,
    sockets, shm) register against the owning core as usual.
    """

    def __init__(self, clock: Callable[[], float] = time.monotonic, workers: int = 0):
        super().__init__(name="colocated-host", daemon=True)
        from ..transport.eventloop import EventLoop

        self.loop = EventLoop(clock=clock, workers=workers)

    def add_node(self, core: NodeCore) -> None:
        """Bind one more core onto the shared loop (before start)."""
        self.loop.bind(core)

    def run(self) -> None:
        self.loop.run()

    def close(self) -> None:
        """Free loop resources if the host thread never started."""
        if self.ident is None:
            self.loop.close()


class ColocatedCommNode:
    """A :class:`CommNode`-shaped handle for one core on a shared loop.

    Duck-types the thread-per-node surface the network, fault
    injector and recovery coordinator drive — ``core`` / ``loop`` /
    ``inbox`` / ``start`` / ``is_alive`` / ``join`` / ``kill`` — so a
    colocated node slots into every existing code path.  ``start``
    launches the shared host exactly once; ``is_alive``/``join`` track
    *this* core's lifetime on the loop, not the host thread's.
    """

    io_mode = "eventloop"

    def __init__(self, host: NodeHost, core: NodeCore):
        self._host = host
        self.core = core
        self.loop = host.loop

    @property
    def name(self) -> str:
        return f"commnode-{self.core.name}"

    @property
    def inbox(self) -> Inbox:
        return self.core.inbox

    def start(self) -> None:
        try:
            self._host.start()
        except RuntimeError:
            pass  # a colocated sibling already started the host

    def is_alive(self) -> bool:
        return self._host.is_alive() and not self.loop.core_finished(self.core)

    def join(self, timeout: Optional[float] = None) -> None:
        """Wait until the shared loop has torn this core down."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self.loop.core_finished(self.core) and self._host.is_alive():
            if deadline is not None and time.monotonic() >= deadline:
                return
            time.sleep(0.002)

    def kill(self) -> None:
        """Crash this node abruptly (fault injection), siblings live on."""
        self.core.crashed = True
        self.loop.wake()
