"""Chunked-wave framing: split big payloads into pipeline fragments.

A data packet whose numeric array payload exceeds a stream's
``chunk_bytes`` threshold is carried as ``n_chunks`` sub-packets on the
same stream, tagged :data:`~repro.core.protocol.TAG_CHUNK`.  Each chunk
prefixes the original field values with the framing fields of
:data:`CHUNK_PREFIX_FMT`::

    (wave_id, chunk_index, n_chunks, original_tag, *sliced values)

Scalar (and string) fields are replicated into every chunk; numeric
array fields are sliced into ``n_chunks`` contiguous ranges.  The
original packet's tag rides along as ``original_tag`` so reassembly is
lossless; ``wave_id`` is a per-sender sequence number used to detect
wave restarts after a mid-wave fault.

Chunking is what lets a depth-*d* tree overlap its hops: hop *k*
reduces chunk *i* while hop *k−1* is still reducing chunk *i+1*
(Träff's pipelined collectives, arXiv:2109.12626).  The codec here is
pure — splitting then reassembling reproduces the original packet's
values exactly — and every policy decision (when to split, when to run
filters incrementally) lives in the callers
(:class:`~repro.core.stream_manager.StreamManager`,
:class:`~repro.core.backend.BackEndStream`, ``Stream.send``).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from .formats import FormatString, TypeCode, parse_format
from .packet import NATIVE_DTYPE, Packet
from .protocol import TAG_CHUNK

__all__ = [
    "CHUNK_PREFIX_FMT",
    "N_PREFIX_FIELDS",
    "chunkable_bytes",
    "split_packet",
    "wrap_chunk",
    "is_chunk",
    "chunk_meta",
    "strip_chunk",
    "reassemble",
    "ChunkReassembler",
]

#: Framing fields prepended to every chunk's value tuple:
#: wave id, chunk index, chunk count, original application tag.
CHUNK_PREFIX_FMT = "%ud %ud %ud %d"

#: Number of framing fields in :data:`CHUNK_PREFIX_FMT`.
N_PREFIX_FIELDS = 4


def _sliceable(spec) -> bool:
    """True for fields that chunking may slice (numeric arrays)."""
    return spec.is_array and spec.code is not TypeCode.STRING


def chunkable_bytes(packet: Packet) -> int:
    """Total payload bytes held in *packet*'s numeric array fields.

    This — not the full frame size — is what chunking divides: scalars
    and strings replicate into every fragment.  Returns 0 for packets
    with no numeric array field, which are never split.
    """
    total = 0
    fmt = packet.fmt
    values = packet.raw_values
    for spec, value in zip(fmt.fields, values):
        if _sliceable(spec):
            total += len(value) * NATIVE_DTYPE[spec.code].itemsize
    return total


def split_packet(
    packet: Packet, chunk_bytes: int, wave_id: int
) -> Optional[List[Packet]]:
    """Split *packet* into ``TAG_CHUNK`` fragments of ≈``chunk_bytes``.

    Returns ``None`` when the packet should travel whole: chunking
    disabled (``chunk_bytes`` falsy), no numeric array payload, or the
    payload already fits in one chunk.  Otherwise returns the ordered
    fragment list; ``reassemble`` of that list reproduces the original
    values exactly.
    """
    if not chunk_bytes:
        return None
    total = chunkable_bytes(packet)
    if total <= chunk_bytes:
        return None
    n_chunks = -(-total // int(chunk_bytes))  # ceil division
    fmt = packet.fmt
    chunk_fmt = parse_format(f"{CHUNK_PREFIX_FMT} {fmt.canonical}")
    values = packet.raw_values
    chunks: List[Packet] = []
    for i in range(n_chunks):
        sliced = []
        for spec, value in zip(fmt.fields, values):
            if _sliceable(spec):
                length = len(value)
                sliced.append(value[i * length // n_chunks : (i + 1) * length // n_chunks])
            else:
                sliced.append(value)
        chunks.append(
            Packet.trusted(
                packet.stream_id,
                TAG_CHUNK,
                chunk_fmt,
                (wave_id, i, n_chunks, packet.tag, *sliced),
                packet.origin_rank,
            )
        )
    return chunks


def wrap_chunk(packet: Packet, wave_id: int, index: int, n_chunks: int) -> Packet:
    """Re-frame a whole packet as fragment *index* of an output wave.

    The incremental (chunkwise) pipeline uses this to forward each
    partial filter result upstream immediately: the filter's output for
    one aligned chunk becomes one ``TAG_CHUNK`` fragment of the node's
    own output wave, keeping the payload pipelined hop after hop.
    """
    fmt = packet.fmt
    chunk_fmt = parse_format(f"{CHUNK_PREFIX_FMT} {fmt.canonical}")
    return Packet.trusted(
        packet.stream_id,
        TAG_CHUNK,
        chunk_fmt,
        (wave_id, index, n_chunks, packet.tag, *packet.raw_values),
        packet.origin_rank,
    )


def is_chunk(packet: Packet) -> bool:
    """True if *packet* is a pipeline fragment (cheap header test)."""
    return packet.tag == TAG_CHUNK


def chunk_meta(packet: Packet) -> Tuple[int, int, int, int]:
    """A chunk's ``(wave_id, chunk_index, n_chunks, original_tag)``."""
    raw = packet.raw_values
    return raw[0], raw[1], raw[2], raw[3]


def strip_chunk(packet: Packet) -> Packet:
    """Peel the framing off one chunk, restoring the original format.

    The result carries the original tag and a payload whose array
    fields hold just this fragment's slice — the unit incremental
    (chunkwise) filters operate on.
    """
    fmt = packet.fmt
    inner_fmt = parse_format(
        " ".join(spec.spec for spec in fmt.fields[N_PREFIX_FIELDS:])
    )
    raw = packet.raw_values
    return Packet.trusted(
        packet.stream_id,
        raw[3],
        inner_fmt,
        raw[N_PREFIX_FIELDS:],
        packet.origin_rank,
    )


def reassemble(chunks: Sequence[Packet]) -> Packet:
    """Rebuild the original whole packet from its ordered fragments.

    Scalars come from the first fragment; numeric array slices are
    concatenated in index order.  The inverse of :func:`split_packet`:
    the rebuilt packet's values equal the original's.
    """
    if not chunks:
        raise ValueError("cannot reassemble an empty chunk list")
    first = chunks[0]
    fmt = first.fmt
    inner_fmt = parse_format(
        " ".join(spec.spec for spec in fmt.fields[N_PREFIX_FIELDS:])
    )
    orig_tag = first.raw_values[3]
    if len(chunks) == 1:
        values: Tuple = first.raw_values[N_PREFIX_FIELDS:]
        return Packet.trusted(
            first.stream_id, orig_tag, inner_fmt, values, first.origin_rank
        )
    out = []
    for field_idx, spec in enumerate(inner_fmt.fields):
        raw_idx = N_PREFIX_FIELDS + field_idx
        if _sliceable(spec):
            parts = [c.raw_values[raw_idx] for c in chunks]
            if all(isinstance(p, np.ndarray) for p in parts):
                joined = np.concatenate(parts)
                joined.setflags(write=False)
                out.append(joined)
            else:
                merged: Tuple = ()
                for p in parts:
                    merged += tuple(p)
                out.append(merged)
        else:
            out.append(first.raw_values[raw_idx])
    return Packet.trusted(
        first.stream_id, orig_tag, inner_fmt, tuple(out), first.origin_rank
    )


class ChunkReassembler:
    """Accumulate one sender's in-order fragments into whole packets.

    One instance per (link, stream) — fragment order is guaranteed only
    per sender.  Feed every ``TAG_CHUNK`` packet to :meth:`add`; a
    completed whole packet comes back on the final fragment, ``None``
    otherwise.  A fragment that restarts the sequence (``chunk_index``
    0 with a partial set pending, a new ``wave_id``, or an index gap)
    silently discards the stale partial wave — exactly the recovery
    behaviour a mid-wave sender fault requires — and the discard is
    visible via :attr:`discarded_waves`.
    """

    __slots__ = ("_chunks", "_wave_id", "_next_index", "discarded_waves")

    def __init__(self):
        self._chunks: List[Packet] = []
        self._wave_id: Optional[int] = None
        self._next_index = 0
        self.discarded_waves = 0

    @property
    def pending(self) -> int:
        """Fragments of the in-progress wave buffered so far."""
        return len(self._chunks)

    def add(self, packet: Packet) -> Optional[Packet]:
        """Feed one fragment; return the whole packet when complete."""
        wave_id, index, n_chunks, _tag = chunk_meta(packet)
        if self._chunks and (wave_id != self._wave_id or index != self._next_index):
            self.discard()
        if index != len(self._chunks):
            # An out-of-sequence fragment with nothing buffered: a tail
            # from a wave whose start we never saw.  Drop it.
            return None
        self._wave_id = wave_id
        # Buffered fragments outlive the receive cycle: own the bytes.
        self._chunks.append(packet.materialize())
        self._next_index = index + 1
        if len(self._chunks) == n_chunks:
            whole = reassemble(self._chunks)
            self._chunks = []
            self._wave_id = None
            self._next_index = 0
            return whole
        return None

    def discard(self) -> None:
        """Drop the in-progress partial wave (sender fault/restart)."""
        if self._chunks:
            self.discarded_waves += 1
        self._chunks = []
        self._wave_id = None
        self._next_index = 0
