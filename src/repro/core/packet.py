"""MRNet data packets: typed payloads with a packed binary encoding.

A :class:`Packet` is the unit of data on a stream (paper §2.1).  Each
packet carries:

* ``stream_id`` — identifies the stream the packet belongs to, used by
  internal processes to demultiplex (paper §2.3);
* ``tag`` — an application-level message tag (MRNet's API lets tools
  tag messages; Paradyn uses tags to dispatch handlers);
* a format (see :mod:`repro.core.formats`) and a tuple of values
  matching that format;
* ``origin_rank`` — rank of the end-point that produced the packet,
  letting filters attribute data to back-ends.

The wire encoding ("efficient, packed binary representation", §1) is:

.. code-block:: text

   uint32 stream_id | int32 tag | uint32 origin_rank |
   uint32 fmt_len | fmt bytes (UTF-8, canonical) |
   packed fields ...

All multi-byte quantities are big-endian ("network order").

Zero-copy lazy data plane
-------------------------

The paper's internal processes forward packets "by reference whenever
possible" (§2.3).  Three constructors with different trust/laziness
levels make that literal:

* ``Packet(...)`` — the user-facing constructor: validates and
  normalises every value (``_normalise``).
* :meth:`Packet.trusted` — skips validation for values whose typing is
  already guaranteed (decoded off the wire, or computed by a built-in
  filter from decoded inputs).
* :meth:`Packet.lazy_from_wire` — parses *only* the fixed 12-byte
  header and keeps the rest of the frame as an undecoded
  ``bytes``/``memoryview`` slice.  ``fmt`` and ``values`` decode on
  first access; :meth:`to_bytes` returns the original frame
  byte-identically.  A relay hop that never touches ``values``
  therefore never decodes, validates, or re-encodes anything.

Large array fields (``> _NUMPY_THRESHOLD`` elements) decode to
read-only numpy views over the wire buffer instead of Python tuples;
:attr:`raw_values` exposes them for vectorized filters, while the
public :attr:`values` materialises plain tuples on demand (and caches
the result), so user-visible semantics — equality, hashing, indexing —
are unchanged.

Inside a process packets are passed by reference and never re-encoded;
:meth:`Packet.to_bytes` caches its result so a packet fanned out to
many children is serialized once (zero-copy path, §2.3).
"""

from __future__ import annotations

import struct
from typing import Any, Iterator, Sequence, Tuple

import numpy as np

from .formats import FieldSpec, FormatError, FormatString, TypeCode, parse_format
from .formats import _BOUNDS as _INT_BOUNDS
from .formats import _FLOAT_CODES

__all__ = ["Packet", "PacketDecodeError"]

_HEADER = struct.Struct(">IiI")
_U32 = struct.Struct(">I")

# Above this element count, array fields go through numpy's vectorized
# byte-swap/copy instead of struct.pack(*values) — an order of magnitude
# faster for the multi-thousand-element vectors concatenation builds.
# The same threshold gates decoding to an ndarray view vs. a tuple.
_NUMPY_THRESHOLD = 64

# Big-endian (wire) dtypes, used on the encode path.
_NP_DTYPE = {
    TypeCode.CHAR: np.dtype(">u1"),
    TypeCode.INT32: np.dtype(">i4"),
    TypeCode.UINT32: np.dtype(">u4"),
    TypeCode.INT64: np.dtype(">i8"),
    TypeCode.UINT64: np.dtype(">u8"),
    TypeCode.FLOAT32: np.dtype(">f4"),
    TypeCode.FLOAT64: np.dtype(">f8"),
}

# Native-order dtypes, used for in-memory vectorized computation.
NATIVE_DTYPE = {
    TypeCode.CHAR: np.dtype("u1"),
    TypeCode.INT32: np.dtype("i4"),
    TypeCode.UINT32: np.dtype("u4"),
    TypeCode.INT64: np.dtype("i8"),
    TypeCode.UINT64: np.dtype("u8"),
    TypeCode.FLOAT32: np.dtype("f4"),
    TypeCode.FLOAT64: np.dtype("f8"),
}


class PacketDecodeError(ValueError):
    """Raised when a byte buffer cannot be decoded as a packet."""


def _owns_buffer(value: np.ndarray) -> bool:
    """True when *value*'s ultimate backing memory is immortal.

    Walks the ``.base`` chain to the exporting object: arrays that own
    their data (or view another owning array) are safe to keep forever;
    so is a view over ``bytes``.  A view whose root exporter is
    anything else — a shared-memory ring slice, an mmap, a bytearray —
    borrows memory that may be reused or mutated, and must be copied
    before the packet is parked (see :meth:`Packet.materialize`).
    """
    base = value.base
    while isinstance(base, np.ndarray):
        base = base.base
    if base is None or isinstance(base, bytes):
        return True
    if isinstance(base, memoryview):
        return isinstance(base.obj, bytes)
    return False


def _check_scalar(code: TypeCode, value: Any) -> Any:
    """Validate and normalise one scalar against its type code."""
    # Fast path for exact builtin types (note ``type(...) is int``
    # rejects bool, which is an int subclass we must not accept).
    kind = type(value)
    if kind is int:
        bounds = _INT_BOUNDS.get(code)
        if bounds is not None:
            if bounds[0] <= value <= bounds[1]:
                return value
            raise FormatError(f"value {value} out of range for {code}")
    elif kind is float and code in _FLOAT_CODES:
        return value
    elif kind is str and code is TypeCode.STRING:
        return value
    if isinstance(value, np.generic):
        # numpy scalars normalise to native Python numbers first.
        if isinstance(value, np.bool_):
            raise FormatError(f"expected number for {code}, got numpy bool")
        value = value.item()
    if code.is_integral:
        if isinstance(value, bool) or not isinstance(value, int):
            if code is TypeCode.CHAR and isinstance(value, str) and len(value) == 1:
                value = ord(value)
            else:
                raise FormatError(
                    f"expected int for {code}, got {type(value).__name__}"
                )
        lo, hi = code.bounds
        if not lo <= value <= hi:
            raise FormatError(f"value {value} out of range for {code}")
        return value
    if code.is_float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise FormatError(
                f"expected float for {code}, got {type(value).__name__}"
            )
        return float(value)
    if code is TypeCode.STRING:
        if not isinstance(value, str):
            raise FormatError(f"expected str, got {type(value).__name__}")
        return value
    if code is TypeCode.BYTES:
        if not isinstance(value, (bytes, bytearray, memoryview)):
            raise FormatError(f"expected bytes, got {type(value).__name__}")
        return bytes(value)
    raise FormatError(f"unhandled type code {code}")  # pragma: no cover


def _normalise(fields: Tuple[FieldSpec, ...], values: Sequence[Any]) -> Tuple[Any, ...]:
    if len(values) != len(fields):
        raise FormatError(
            f"format has {len(fields)} fields but {len(values)} values given"
        )
    out = []
    for spec, value in zip(fields, values):
        if spec.is_array:
            if spec.code is TypeCode.STRING:
                if not isinstance(value, (list, tuple)) or not all(
                    isinstance(v, str) for v in value
                ):
                    raise FormatError("%as expects a sequence of str")
                out.append(tuple(value))
            elif spec.code is TypeCode.CHAR and isinstance(
                value, (bytes, bytearray, memoryview)
            ):
                out.append(tuple(bytes(value)))
            elif isinstance(value, np.ndarray):
                out.append(_normalise_ndarray(spec.code, value))
            else:
                if isinstance(value, (str, bytes)):
                    raise FormatError(f"{spec.spec} expects a sequence of scalars")
                try:
                    items = list(value)
                except TypeError:
                    raise FormatError(
                        f"{spec.spec} expects a sequence, got {type(value).__name__}"
                    ) from None
                out.append(tuple(_check_scalar(spec.code, v) for v in items))
        else:
            out.append(_check_scalar(spec.code, value))
    return tuple(out)


def _normalise_ndarray(code: TypeCode, arr: np.ndarray) -> np.ndarray:
    """Vectorized validation of a numpy array field.

    Returns a *read-only private copy* in the field's native dtype, so
    later mutation by the caller cannot change the packet, and the
    encode path is a single byteswap copy.
    """
    if arr.ndim != 1:
        raise FormatError(f"array fields must be 1-D, got shape {arr.shape}")
    if code.is_integral:
        if arr.dtype.kind not in "iu":
            raise FormatError(
                f"expected integer array for {code}, got dtype {arr.dtype}"
            )
        lo, hi = code.bounds
        if arr.size and (int(arr.min()) < lo or int(arr.max()) > hi):
            raise FormatError(f"array values out of range for {code}")
    elif code.is_float:
        if arr.dtype.kind not in "iuf":
            raise FormatError(
                f"expected numeric array for {code}, got dtype {arr.dtype}"
            )
    else:
        raise FormatError(f"ndarray not supported for {code}")
    out = np.array(arr, dtype=NATIVE_DTYPE[code])
    out.setflags(write=False)
    return out


def _copy_readonly(arr: np.ndarray) -> np.ndarray:
    out = arr.copy()
    out.setflags(write=False)
    return out


def _materialize(raw: Tuple[Any, ...]) -> Tuple[Any, ...]:
    """Convert any ndarray-backed fields to plain tuples."""
    if any(isinstance(v, np.ndarray) for v in raw):
        return tuple(
            tuple(v.tolist()) if isinstance(v, np.ndarray) else v for v in raw
        )
    return raw


class Packet:
    """One typed data packet.

    Parameters
    ----------
    stream_id:
        Id of the stream this packet travels on.
    tag:
        Application message tag.
    fmt:
        Format string or pre-parsed :class:`FormatString`.
    values:
        Field values matching *fmt*.
    origin_rank:
        Rank of the producing end-point (0 for the front-end).
    """

    __slots__ = (
        "stream_id",
        "tag",
        "origin_rank",
        "_fmt",
        "_values",
        "_public",
        "_encoded",
        "_body",
    )

    def __init__(
        self,
        stream_id: int,
        tag: int,
        fmt: str | FormatString,
        values: Sequence[Any],
        origin_rank: int = 0,
    ):
        stream_id = int(stream_id)
        tag = int(tag)
        origin_rank = int(origin_rank)
        if not 0 <= stream_id < 2**32:
            raise ValueError(f"stream_id {stream_id} out of uint32 range")
        if not -(2**31) <= tag < 2**31:
            raise ValueError(f"tag {tag} out of int32 range")
        if not 0 <= origin_rank < 2**32:
            raise ValueError(f"origin_rank {origin_rank} out of uint32 range")
        self.stream_id = stream_id
        self.tag = tag
        self._fmt = fmt if isinstance(fmt, FormatString) else parse_format(fmt)
        self._values = _normalise(self._fmt.fields, values)
        self._public = None
        self.origin_rank = origin_rank
        self._encoded: bytes | memoryview | None = None
        self._body: int | None = None

    # -- alternate constructors ------------------------------------------

    @classmethod
    def trusted(
        cls,
        stream_id: int,
        tag: int,
        fmt: FormatString | str,
        values: Sequence[Any],
        origin_rank: int = 0,
    ) -> "Packet":
        """Construct without value validation or normalisation.

        For values whose typing is already guaranteed: they were just
        decoded from the wire (the sender validated them), or computed
        by a built-in filter from decoded inputs.  ``values`` may
        contain read-only ndarrays for array fields; these stay
        vectorized until user code materialises :attr:`values`.
        """
        p = object.__new__(cls)
        p.stream_id = stream_id
        p.tag = tag
        p.origin_rank = origin_rank
        p._fmt = fmt if isinstance(fmt, FormatString) else parse_format(fmt)
        p._values = tuple(values)
        p._public = None
        p._encoded = None
        p._body = None
        return p

    @classmethod
    def lazy_from_wire(cls, frame: bytes | memoryview) -> "Packet":
        """Deferred decode: parse only the fixed header, keep the frame.

        The returned packet knows its ``stream_id``/``tag``/
        ``origin_rank`` (enough to demultiplex and route); ``fmt`` and
        ``values`` decode lazily on first access.  :meth:`to_bytes`
        returns *frame* byte-identically, so relay hops forward the
        inbound bytes without any decode/re-encode round trip.

        Raises :class:`PacketDecodeError` if *frame* is too short to
        hold a packet header; payload truncation is detected lazily,
        when (if ever) the values are first decoded.
        """
        try:
            stream_id, tag, origin = _HEADER.unpack_from(frame, 0)
        except struct.error as exc:
            raise PacketDecodeError(str(exc)) from exc
        p = object.__new__(cls)
        p.stream_id = stream_id
        p.tag = tag
        p.origin_rank = origin
        p._fmt = None
        p._values = None
        p._public = None
        p._encoded = frame if isinstance(frame, (bytes, memoryview)) else bytes(frame)
        p._body = None
        return p

    # -- lazy attributes --------------------------------------------------

    @property
    def fmt(self) -> FormatString:
        """The packet format (parsed from the wire frame on demand)."""
        if self._fmt is None:
            self._parse_wire_fmt()
        return self._fmt

    @property
    def values(self) -> Tuple[Any, ...]:
        """Field values as plain tuples (decoded/materialised on demand)."""
        public = self._public
        if public is None:
            raw = self._values
            if raw is None:
                raw = self._decode_values()
            public = self._public = _materialize(raw)
        return public

    @property
    def raw_values(self) -> Tuple[Any, ...]:
        """Field values without tuple materialisation.

        Array fields decoded from large wire frames (or produced by
        vectorized filters) appear as read-only 1-D ndarrays; everything
        else is the same objects :attr:`values` would contain.  Filters
        use this to reduce vectorized without paying for ``tolist``.
        """
        raw = self._values
        if raw is None:
            raw = self._decode_values()
        return raw

    @property
    def values_decoded(self) -> bool:
        """False while this is an undecoded lazy wire packet."""
        return self._values is not None

    def _parse_wire_fmt(self) -> None:
        view = self._encoded
        try:
            (fmt_len,) = _U32.unpack_from(view, _HEADER.size)
        except struct.error as exc:
            raise PacketDecodeError(str(exc)) from exc
        start = _HEADER.size + _U32.size
        raw = bytes(view[start : start + fmt_len])
        if len(raw) != fmt_len:
            raise PacketDecodeError("truncated format string")
        try:
            self._fmt = parse_format(raw.decode("utf-8"))
        except (UnicodeDecodeError, FormatError) as exc:
            raise PacketDecodeError(str(exc)) from exc
        self._body = start + fmt_len

    def _decode_values(self) -> Tuple[Any, ...]:
        fmt = self.fmt  # parses the wire fmt, setting _body
        view = self._encoded
        if isinstance(view, bytes):
            view = memoryview(view)
        offset = self._body
        values = []
        try:
            for spec in fmt.fields:
                value, offset = _decode_field(view, offset, spec)
                values.append(value)
        except struct.error as exc:
            raise PacketDecodeError(str(exc)) from exc
        if offset != len(view):
            raise PacketDecodeError(
                f"{len(view) - offset} trailing bytes after packet"
            )
        self._values = tuple(values)
        return self._values

    # -- value access ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, idx: int) -> Any:
        return self.values[idx]

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def unpack(self) -> Tuple[Any, ...]:
        """Return all field values as a tuple (scanf-style receive)."""
        return self.values

    def array(self, idx: int) -> np.ndarray:
        """Field *idx* as a (read-only) 1-D ndarray, without tuple cost.

        Only valid for numeric array fields; the cheap path when the
        packet was decoded from a large wire frame (the ndarray is a
        view over the frame), a conversion otherwise.
        """
        spec = self.fmt.fields[idx]
        if not spec.is_array or spec.code is TypeCode.STRING:
            raise FormatError(f"field {idx} ({spec.spec}) is not a numeric array")
        value = self.raw_values[idx]
        if isinstance(value, np.ndarray):
            return value
        arr = np.asarray(value, dtype=NATIVE_DTYPE[spec.code])
        arr.setflags(write=False)
        return arr

    # -- identity --------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, Packet):
            return NotImplemented
        return (
            self.stream_id == other.stream_id
            and self.tag == other.tag
            and self.fmt == other.fmt
            and self.values == other.values
            and self.origin_rank == other.origin_rank
        )

    def __hash__(self) -> int:
        return hash((self.stream_id, self.tag, self.fmt, self.values, self.origin_rank))

    def __repr__(self) -> str:
        if self._values is None and self._public is None:
            return (
                f"Packet(stream={self.stream_id}, tag={self.tag}, "
                f"<undecoded {len(self._encoded)}B frame>, "
                f"origin={self.origin_rank})"
            )
        vals = ", ".join(repr(v) for v in self.values[:4])
        if len(self.values) > 4:
            vals += ", ..."
        return (
            f"Packet(stream={self.stream_id}, tag={self.tag}, "
            f"fmt={self.fmt.canonical!r}, values=({vals}), "
            f"origin={self.origin_rank})"
        )

    def replace(self, **kwargs) -> "Packet":
        """Return a copy with some attributes replaced.

        Filters use this to re-stamp aggregated packets (e.g. new
        values, same stream) without mutating shared inputs.
        """
        return Packet(
            kwargs.get("stream_id", self.stream_id),
            kwargs.get("tag", self.tag),
            kwargs.get("fmt", self.fmt),
            kwargs.get("values", self.values),
            kwargs.get("origin_rank", self.origin_rank),
        )

    # -- codec -----------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Encode to the packed wire representation (cached).

        For a packet built by :meth:`lazy_from_wire` this returns the
        original inbound frame byte-identically — even if its format
        text was non-canonical — so a relayed packet is bit-exact.
        """
        enc = self._encoded
        if enc is None:
            fmt = self.fmt
            fmt_bytes = fmt.canonical_bytes
            scalar_struct = fmt.scalar_struct
            if scalar_struct is not None:
                # All-fixed-scalar format: one precompiled pack of the
                # whole value tuple instead of the per-field loop.
                enc = self._encoded = b"".join(
                    (
                        _HEADER.pack(self.stream_id, self.tag, self.origin_rank),
                        _U32.pack(len(fmt_bytes)),
                        fmt_bytes,
                        scalar_struct.pack(*self._values),
                    )
                )
                return enc
            parts = [
                _HEADER.pack(self.stream_id, self.tag, self.origin_rank),
            ]
            parts.append(_U32.pack(len(fmt_bytes)))
            parts.append(fmt_bytes)
            for spec, value in zip(fmt.fields, self._values):
                _encode_field(parts, spec, value)
            enc = self._encoded = b"".join(parts)
        elif not isinstance(enc, bytes):
            enc = self._encoded = bytes(enc)
        return enc

    def materialize(self) -> "Packet":
        """Ensure this packet owns every byte it references (in place).

        The zero-copy shm receive path delivers frames as
        ``memoryview`` slices aliasing the ring directly; once the read
        is committed the producer may overwrite those bytes.  Any
        packet that *parks* — output batching buffers, synchronization
        queues, chunk reassembly — calls this first: a borrowed frame
        is copied to owned ``bytes`` (decoded caches over the old
        buffer are dropped to re-decode lazily), and decoded/computed
        array values whose root exporter is not immortal are copied.
        Packets that are consumed before parking never pay the copy —
        that is the elision the ``shm_frames_zero_copy`` counter counts.
        Returns ``self`` for call-site convenience.
        """
        enc = self._encoded
        if isinstance(enc, memoryview) and not isinstance(enc.obj, bytes):
            self._encoded = bytes(enc)
            # Decoded ndarray fields were frombuffer views over the old
            # frame; forget them so access re-decodes from the copy.
            self._values = None
            self._public = None
            return self
        values = self._values
        if values is not None and any(
            isinstance(v, np.ndarray) and not _owns_buffer(v) for v in values
        ):
            self._values = tuple(
                _copy_readonly(v)
                if isinstance(v, np.ndarray) and not _owns_buffer(v)
                else v
                for v in values
            )
        return self

    def encoded_view(self) -> bytes | memoryview:
        """Wire bytes without forcing a copy of a lazy packet's frame.

        Returns the raw ``memoryview`` slice for an undecoded wire
        packet (zero-copy relay path), else the cached/computed
        :meth:`to_bytes` result.  Callers must treat it as read-only.
        """
        enc = self._encoded
        if enc is not None:
            return enc
        return self.to_bytes()

    @property
    def nbytes(self) -> int:
        """Encoded size in bytes (never decodes a lazy packet)."""
        enc = self._encoded
        if enc is not None:
            return len(enc)
        return len(self.to_bytes())

    @classmethod
    def from_bytes(cls, data: bytes | memoryview) -> "Packet":
        """Decode a packet from its wire representation (eagerly)."""
        packet, offset = cls.decode_from(data, 0)
        if offset != len(data):
            raise PacketDecodeError(
                f"{len(data) - offset} trailing bytes after packet"
            )
        return packet

    @classmethod
    def decode_from(
        cls, data: bytes | memoryview, offset: int, *, trusted: bool = True
    ) -> Tuple["Packet", int]:
        """Decode one packet starting at *offset*; return (packet, end).

        With ``trusted=True`` (the default) the decoded values skip
        re-validation: they came off the wire, where only well-typed
        values can be represented, so the per-element ``_check_scalar``
        pass is pure overhead.  ``trusted=False`` restores the
        validating constructor for frames from untrusted producers.
        """
        view = memoryview(data)
        try:
            stream_id, tag, origin = _HEADER.unpack_from(view, offset)
            offset += _HEADER.size
            (fmt_len,) = _U32.unpack_from(view, offset)
            offset += _U32.size
            fmt_text = bytes(view[offset : offset + fmt_len]).decode("utf-8")
            if len(fmt_text.encode("utf-8")) != fmt_len:
                raise PacketDecodeError("truncated format string")
            offset += fmt_len
            fmt = parse_format(fmt_text)
            values = []
            for spec in fmt.fields:
                value, offset = _decode_field(view, offset, spec)
                values.append(value)
        except (struct.error, UnicodeDecodeError, FormatError) as exc:
            raise PacketDecodeError(str(exc)) from exc
        if trusted:
            return cls.trusted(stream_id, tag, fmt, values, origin), offset
        return cls(stream_id, tag, fmt, _materialize(tuple(values)), origin), offset


def _encode_field(parts: list, spec: FieldSpec, value: Any) -> None:
    code = spec.code
    if spec.is_array:
        if code is TypeCode.STRING:
            parts.append(_U32.pack(len(value)))
            for s in value:
                raw = s.encode("utf-8")
                parts.append(_U32.pack(len(raw)))
                parts.append(raw)
        else:
            parts.append(_U32.pack(len(value)))
            if isinstance(value, np.ndarray) or len(value) > _NUMPY_THRESHOLD:
                # Vectorized encode: one big-endian copy, no per-element
                # Python work.
                if len(value):
                    parts.append(
                        np.asarray(value, dtype=_NP_DTYPE[code]).tobytes()
                    )
            elif len(value):
                parts.append(
                    struct.pack(f">{len(value)}{code.struct_char}", *value)
                )
        return
    if code is TypeCode.STRING:
        raw = value.encode("utf-8")
        parts.append(_U32.pack(len(raw)))
        parts.append(raw)
    elif code is TypeCode.BYTES:
        parts.append(_U32.pack(len(value)))
        parts.append(value)
    else:
        parts.append(struct.pack(f">{code.struct_char}", value))


def _decode_field(view: memoryview, offset: int, spec: FieldSpec):
    code = spec.code
    if spec.is_array:
        (count,) = _U32.unpack_from(view, offset)
        offset += _U32.size
        if code is TypeCode.STRING:
            items = []
            for _ in range(count):
                (slen,) = _U32.unpack_from(view, offset)
                offset += _U32.size
                raw = bytes(view[offset : offset + slen])
                if len(raw) != slen:
                    raise PacketDecodeError("truncated string element")
                items.append(raw.decode("utf-8"))
                offset += slen
            return tuple(items), offset
        fmt = f">{count}{code.struct_char}"
        size = struct.calcsize(fmt)
        if offset + size > len(view):
            raise PacketDecodeError("truncated array field")
        if count > _NUMPY_THRESHOLD:
            # Zero-copy: a read-only big-endian view over the wire
            # buffer.  Stays an ndarray through vectorized filters;
            # Packet.values materialises a tuple only if user code
            # asks for one.
            arr = np.frombuffer(view, dtype=_NP_DTYPE[code], count=count,
                                offset=offset)
            if arr.flags.writeable:  # e.g. the buffer is a bytearray
                arr.setflags(write=False)
            return arr, offset + size
        values = struct.unpack_from(fmt, view, offset)
        return tuple(values), offset + size
    if code is TypeCode.STRING:
        (slen,) = _U32.unpack_from(view, offset)
        offset += _U32.size
        raw = bytes(view[offset : offset + slen])
        if len(raw) != slen:
            raise PacketDecodeError("truncated string field")
        return raw.decode("utf-8"), offset + slen
    if code is TypeCode.BYTES:
        (blen,) = _U32.unpack_from(view, offset)
        offset += _U32.size
        raw = bytes(view[offset : offset + blen])
        if len(raw) != blen:
            raise PacketDecodeError("truncated bytes field")
        return raw, offset + blen
    fmt = f">{code.struct_char}"
    size = struct.calcsize(fmt)
    if offset + size > len(view):
        raise PacketDecodeError("truncated scalar field")
    (value,) = struct.unpack_from(fmt, view, offset)
    return value, offset + size
