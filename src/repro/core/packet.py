"""MRNet data packets: typed payloads with a packed binary encoding.

A :class:`Packet` is the unit of data on a stream (paper §2.1).  Each
packet carries:

* ``stream_id`` — identifies the stream the packet belongs to, used by
  internal processes to demultiplex (paper §2.3);
* ``tag`` — an application-level message tag (MRNet's API lets tools
  tag messages; Paradyn uses tags to dispatch handlers);
* a format (see :mod:`repro.core.formats`) and a tuple of values
  matching that format;
* ``origin_rank`` — rank of the end-point that produced the packet,
  letting filters attribute data to back-ends.

The wire encoding ("efficient, packed binary representation", §1) is:

.. code-block:: text

   uint32 stream_id | int32 tag | uint32 origin_rank |
   uint32 fmt_len | fmt bytes (UTF-8, canonical) |
   packed fields ...

All multi-byte quantities are big-endian ("network order").  Inside a
process packets are passed by reference and never re-encoded
(zero-copy path, §2.3); :meth:`Packet.to_bytes` caches its result so a
packet fanned out to many children is serialized once.
"""

from __future__ import annotations

import struct
from typing import Any, Iterator, Sequence, Tuple

import numpy as np

from .formats import FieldSpec, FormatError, FormatString, TypeCode, parse_format

__all__ = ["Packet", "PacketDecodeError"]

_HEADER = struct.Struct(">IiI")
_U32 = struct.Struct(">I")

# Above this element count, array fields go through numpy's vectorized
# byte-swap/copy instead of struct.pack(*values) — an order of magnitude
# faster for the multi-thousand-element vectors concatenation builds.
_NUMPY_THRESHOLD = 64

_NP_DTYPE = {
    TypeCode.CHAR: np.dtype(">u1"),
    TypeCode.INT32: np.dtype(">i4"),
    TypeCode.UINT32: np.dtype(">u4"),
    TypeCode.INT64: np.dtype(">i8"),
    TypeCode.UINT64: np.dtype(">u8"),
    TypeCode.FLOAT32: np.dtype(">f4"),
    TypeCode.FLOAT64: np.dtype(">f8"),
}


class PacketDecodeError(ValueError):
    """Raised when a byte buffer cannot be decoded as a packet."""


def _check_scalar(code: TypeCode, value: Any) -> Any:
    """Validate and normalise one scalar against its type code."""
    if isinstance(value, np.generic):
        # numpy scalars normalise to native Python numbers first.
        if isinstance(value, np.bool_):
            raise FormatError(f"expected number for {code}, got numpy bool")
        value = value.item()
    if code.is_integral:
        if isinstance(value, bool) or not isinstance(value, int):
            if code is TypeCode.CHAR and isinstance(value, str) and len(value) == 1:
                value = ord(value)
            else:
                raise FormatError(
                    f"expected int for {code}, got {type(value).__name__}"
                )
        lo, hi = code.bounds
        if not lo <= value <= hi:
            raise FormatError(f"value {value} out of range for {code}")
        return value
    if code.is_float:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise FormatError(
                f"expected float for {code}, got {type(value).__name__}"
            )
        return float(value)
    if code is TypeCode.STRING:
        if not isinstance(value, str):
            raise FormatError(f"expected str, got {type(value).__name__}")
        return value
    if code is TypeCode.BYTES:
        if not isinstance(value, (bytes, bytearray, memoryview)):
            raise FormatError(f"expected bytes, got {type(value).__name__}")
        return bytes(value)
    raise FormatError(f"unhandled type code {code}")  # pragma: no cover


def _normalise(fields: Tuple[FieldSpec, ...], values: Sequence[Any]) -> Tuple[Any, ...]:
    if len(values) != len(fields):
        raise FormatError(
            f"format has {len(fields)} fields but {len(values)} values given"
        )
    out = []
    for spec, value in zip(fields, values):
        if spec.is_array:
            if spec.code is TypeCode.STRING:
                if not isinstance(value, (list, tuple)) or not all(
                    isinstance(v, str) for v in value
                ):
                    raise FormatError("%as expects a sequence of str")
                out.append(tuple(value))
            elif spec.code is TypeCode.CHAR and isinstance(
                value, (bytes, bytearray, memoryview)
            ):
                out.append(tuple(bytes(value)))
            elif isinstance(value, np.ndarray):
                out.append(_normalise_ndarray(spec.code, value))
            else:
                if isinstance(value, (str, bytes)):
                    raise FormatError(f"{spec.spec} expects a sequence of scalars")
                try:
                    items = list(value)
                except TypeError:
                    raise FormatError(
                        f"{spec.spec} expects a sequence, got {type(value).__name__}"
                    ) from None
                out.append(tuple(_check_scalar(spec.code, v) for v in items))
        else:
            out.append(_check_scalar(spec.code, value))
    return tuple(out)


def _normalise_ndarray(code: TypeCode, arr: np.ndarray) -> Tuple[Any, ...]:
    """Vectorized validation + conversion of a numpy array field."""
    if arr.ndim != 1:
        raise FormatError(f"array fields must be 1-D, got shape {arr.shape}")
    if code.is_integral:
        if arr.dtype.kind not in "iu":
            raise FormatError(
                f"expected integer array for {code}, got dtype {arr.dtype}"
            )
        lo, hi = code.bounds
        if arr.size and (int(arr.min()) < lo or int(arr.max()) > hi):
            raise FormatError(f"array values out of range for {code}")
    elif code.is_float:
        if arr.dtype.kind not in "iuf":
            raise FormatError(
                f"expected numeric array for {code}, got dtype {arr.dtype}"
            )
        return tuple(arr.astype(float).tolist())
    else:
        raise FormatError(f"ndarray not supported for {code}")
    return tuple(arr.tolist())


class Packet:
    """One typed data packet.

    Parameters
    ----------
    stream_id:
        Id of the stream this packet travels on.
    tag:
        Application message tag.
    fmt:
        Format string or pre-parsed :class:`FormatString`.
    values:
        Field values matching *fmt*.
    origin_rank:
        Rank of the producing end-point (0 for the front-end).
    """

    __slots__ = ("stream_id", "tag", "fmt", "values", "origin_rank", "_encoded")

    def __init__(
        self,
        stream_id: int,
        tag: int,
        fmt: str | FormatString,
        values: Sequence[Any],
        origin_rank: int = 0,
    ):
        if not 0 <= int(stream_id) < 2**32:
            raise ValueError(f"stream_id {stream_id} out of uint32 range")
        if not -(2**31) <= int(tag) < 2**31:
            raise ValueError(f"tag {tag} out of int32 range")
        if not 0 <= int(origin_rank) < 2**32:
            raise ValueError(f"origin_rank {origin_rank} out of uint32 range")
        self.stream_id = int(stream_id)
        self.tag = int(tag)
        self.fmt = fmt if isinstance(fmt, FormatString) else parse_format(fmt)
        self.values = _normalise(self.fmt.fields, values)
        self.origin_rank = int(origin_rank)
        self._encoded: bytes | None = None

    # -- value access ---------------------------------------------------

    def __len__(self) -> int:
        return len(self.values)

    def __getitem__(self, idx: int) -> Any:
        return self.values[idx]

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def unpack(self) -> Tuple[Any, ...]:
        """Return all field values as a tuple (scanf-style receive)."""
        return self.values

    # -- identity --------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, Packet):
            return NotImplemented
        return (
            self.stream_id == other.stream_id
            and self.tag == other.tag
            and self.fmt == other.fmt
            and self.values == other.values
            and self.origin_rank == other.origin_rank
        )

    def __hash__(self) -> int:
        return hash((self.stream_id, self.tag, self.fmt, self.values, self.origin_rank))

    def __repr__(self) -> str:
        vals = ", ".join(repr(v) for v in self.values[:4])
        if len(self.values) > 4:
            vals += ", ..."
        return (
            f"Packet(stream={self.stream_id}, tag={self.tag}, "
            f"fmt={self.fmt.canonical!r}, values=({vals}), "
            f"origin={self.origin_rank})"
        )

    def replace(self, **kwargs) -> "Packet":
        """Return a copy with some attributes replaced.

        Filters use this to re-stamp aggregated packets (e.g. new
        values, same stream) without mutating shared inputs.
        """
        return Packet(
            kwargs.get("stream_id", self.stream_id),
            kwargs.get("tag", self.tag),
            kwargs.get("fmt", self.fmt),
            kwargs.get("values", self.values),
            kwargs.get("origin_rank", self.origin_rank),
        )

    # -- codec -----------------------------------------------------------

    def to_bytes(self) -> bytes:
        """Encode to the packed wire representation (cached)."""
        if self._encoded is None:
            parts = [
                _HEADER.pack(self.stream_id, self.tag, self.origin_rank),
            ]
            fmt_bytes = self.fmt.canonical.encode("utf-8")
            parts.append(_U32.pack(len(fmt_bytes)))
            parts.append(fmt_bytes)
            for spec, value in zip(self.fmt.fields, self.values):
                _encode_field(parts, spec, value)
            self._encoded = b"".join(parts)
        return self._encoded

    @property
    def nbytes(self) -> int:
        """Encoded size in bytes."""
        return len(self.to_bytes())

    @classmethod
    def from_bytes(cls, data: bytes | memoryview) -> "Packet":
        """Decode a packet from its wire representation."""
        packet, offset = cls.decode_from(data, 0)
        if offset != len(data):
            raise PacketDecodeError(
                f"{len(data) - offset} trailing bytes after packet"
            )
        return packet

    @classmethod
    def decode_from(cls, data: bytes | memoryview, offset: int) -> Tuple["Packet", int]:
        """Decode one packet starting at *offset*; return (packet, end)."""
        view = memoryview(data)
        try:
            stream_id, tag, origin = _HEADER.unpack_from(view, offset)
            offset += _HEADER.size
            (fmt_len,) = _U32.unpack_from(view, offset)
            offset += _U32.size
            fmt_text = bytes(view[offset : offset + fmt_len]).decode("utf-8")
            if len(fmt_text.encode("utf-8")) != fmt_len:
                raise PacketDecodeError("truncated format string")
            offset += fmt_len
            fmt = parse_format(fmt_text)
            values = []
            for spec in fmt.fields:
                value, offset = _decode_field(view, offset, spec)
                values.append(value)
        except (struct.error, UnicodeDecodeError, FormatError) as exc:
            raise PacketDecodeError(str(exc)) from exc
        return cls(stream_id, tag, fmt, values, origin), offset


def _encode_field(parts: list, spec: FieldSpec, value: Any) -> None:
    code = spec.code
    if spec.is_array:
        if code is TypeCode.STRING:
            parts.append(_U32.pack(len(value)))
            for s in value:
                raw = s.encode("utf-8")
                parts.append(_U32.pack(len(raw)))
                parts.append(raw)
        else:
            parts.append(_U32.pack(len(value)))
            if len(value) > _NUMPY_THRESHOLD:
                # Vectorized encode: one big-endian copy, no per-element
                # Python work.
                parts.append(np.asarray(value, dtype=_NP_DTYPE[code]).tobytes())
            elif value:
                parts.append(
                    struct.pack(f">{len(value)}{code.struct_char}", *value)
                )
        return
    if code is TypeCode.STRING:
        raw = value.encode("utf-8")
        parts.append(_U32.pack(len(raw)))
        parts.append(raw)
    elif code is TypeCode.BYTES:
        parts.append(_U32.pack(len(value)))
        parts.append(value)
    else:
        parts.append(struct.pack(f">{code.struct_char}", value))


def _decode_field(view: memoryview, offset: int, spec: FieldSpec):
    code = spec.code
    if spec.is_array:
        (count,) = _U32.unpack_from(view, offset)
        offset += _U32.size
        if code is TypeCode.STRING:
            items = []
            for _ in range(count):
                (slen,) = _U32.unpack_from(view, offset)
                offset += _U32.size
                raw = bytes(view[offset : offset + slen])
                if len(raw) != slen:
                    raise PacketDecodeError("truncated string element")
                items.append(raw.decode("utf-8"))
                offset += slen
            return tuple(items), offset
        fmt = f">{count}{code.struct_char}"
        size = struct.calcsize(fmt)
        if offset + size > len(view):
            raise PacketDecodeError("truncated array field")
        if count > _NUMPY_THRESHOLD:
            arr = np.frombuffer(view, dtype=_NP_DTYPE[code], count=count,
                                offset=offset)
            return tuple(arr.tolist()), offset + size
        values = struct.unpack_from(fmt, view, offset)
        return tuple(values), offset + size
    if code is TypeCode.STRING:
        (slen,) = _U32.unpack_from(view, offset)
        offset += _U32.size
        raw = bytes(view[offset : offset + slen])
        if len(raw) != slen:
            raise PacketDecodeError("truncated string field")
        return raw.decode("utf-8"), offset + slen
    if code is TypeCode.BYTES:
        (blen,) = _U32.unpack_from(view, offset)
        offset += _U32.size
        raw = bytes(view[offset : offset + blen])
        if len(raw) != blen:
            raise PacketDecodeError("truncated bytes field")
        return raw, offset + blen
    fmt = f">{code.struct_char}"
    size = struct.calcsize(fmt)
    if offset + size > len(view):
        raise PacketDecodeError("truncated scalar field")
    (value,) = struct.unpack_from(fmt, view, offset)
    return value, offset + size
