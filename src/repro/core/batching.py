"""Packet batching/unbatching (Figure 3, outermost layer).

"Data packets are batched into packet buffers, which logically
represent a series of communications destined for the same process, to
allow for fewer larger messages to be sent over busy connections,
reducing overall communication costs." (paper §2.3)

A :class:`PacketBuffer` accumulates packets bound for one neighbour and
encodes them into a single framed message:

.. code-block:: text

   uint32 packet_count | (uint32 length | packet bytes) ...

Packets are held *by reference* until :meth:`PacketBuffer.encode` is
called, so fan-out to several children never copies payloads (the
zero-copy path the paper calls out).

Unbatching is *lazy* by default: :func:`decode_batch` validates the
framing eagerly (counts, lengths, no trailing bytes) but yields
:meth:`~repro.core.packet.Packet.lazy_from_wire` packets whose payload
stays an undecoded ``memoryview`` slice of the inbound message.  A
relay hop that re-batches such a packet forwards the original frame
bytes untouched — no field decode, no validation, no re-encode.
"""

from __future__ import annotations

import struct
from typing import Iterable, List

from .packet import Packet, PacketDecodeError

__all__ = [
    "PacketBuffer",
    "encode_batch",
    "decode_batch",
    "FLUSH_MAX_PACKETS",
    "FLUSH_MAX_BYTES",
    "FLUSH_MAX_DELAY",
]

_U32 = struct.Struct(">I")

# Adaptive flush policy knobs (see docs/architecture.md).  A node's
# output buffers are transmitted when any of these trips: the buffer
# holds FLUSH_MAX_PACKETS packets or FLUSH_MAX_BYTES payload bytes, or
# FLUSH_MAX_DELAY seconds have passed since the first packet queued
# after the previous flush.  Event loops additionally flush whenever
# they are about to go idle, so the delay is only ever paid under
# sustained load — exactly when batching into "fewer larger messages
# over busy connections" (§2.3) pays for itself.
FLUSH_MAX_PACKETS = 128
FLUSH_MAX_BYTES = 1 << 16
FLUSH_MAX_DELAY = 0.001


def encode_batch(packets: Iterable[Packet]) -> bytes:
    """Encode an iterable of packets into one framed message.

    Uses :meth:`Packet.encoded_view`, so an undecoded lazy packet
    contributes its original wire frame without a private copy; the
    only copy is the final join into the outgoing message.
    """
    bodies = [p.encoded_view() for p in packets]
    parts = [_U32.pack(len(bodies))]
    for body in bodies:
        parts.append(_U32.pack(len(body)))
        parts.append(body)
    return b"".join(parts)


def decode_batch(data: bytes | memoryview, *, lazy: bool = True) -> List[Packet]:
    """Decode a framed message back into its packets.

    Framing (count, per-packet lengths, trailing bytes) is validated
    eagerly either way.  With ``lazy=True`` (the default) each packet
    is a header-only :meth:`Packet.lazy_from_wire` over a zero-copy
    slice of *data*; its field values decode on first access, and a
    truncated/corrupt *body* raises :class:`PacketDecodeError` at that
    point instead of here.  ``lazy=False`` restores eager full decode.
    """
    view = memoryview(data)
    try:
        (count,) = _U32.unpack_from(view, 0)
    except struct.error as exc:
        raise PacketDecodeError("truncated batch header") from exc
    offset = _U32.size
    packets: List[Packet] = []
    for _ in range(count):
        try:
            (length,) = _U32.unpack_from(view, offset)
        except struct.error as exc:
            raise PacketDecodeError("truncated packet frame") from exc
        offset += _U32.size
        end = offset + length
        if end > len(view):
            raise PacketDecodeError("truncated packet body")
        if lazy:
            packets.append(Packet.lazy_from_wire(view[offset:end]))
        else:
            packet, consumed = Packet.decode_from(view[offset:end], 0)
            if consumed != length:
                raise PacketDecodeError("packet frame length mismatch")
            packets.append(packet)
        offset = end
    if offset != len(view):
        raise PacketDecodeError(f"{len(view) - offset} trailing bytes after batch")
    return packets


class PacketBuffer:
    """Accumulates packets destined for one neighbouring process.

    ``max_packets``/``max_bytes`` bound how much a buffer may hold
    before :meth:`should_flush` reports it is ready to send; a comm
    node flushes all buffers at the end of each processing round
    regardless, so these are upper bounds, not delays.

    Byte accounting uses :attr:`Packet.nbytes`, which for an undecoded
    lazy packet is the length of its wire frame — tracking size never
    forces a decode or an eager encode of a lazy packet.
    """

    __slots__ = ("destination", "max_packets", "max_bytes", "_packets", "_nbytes")

    def __init__(self, destination: object, max_packets: int = 128, max_bytes: int = 1 << 20):
        if max_packets < 1:
            raise ValueError("max_packets must be >= 1")
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.destination = destination
        self.max_packets = max_packets
        self.max_bytes = max_bytes
        self._packets: List[Packet] = []
        self._nbytes = 0

    def add(self, packet: Packet) -> None:
        """Append *packet* (by reference) to the buffer.

        The buffer may outlive the receive cycle that produced the
        packet, so a packet borrowing zero-copy shm ring memory is
        materialised here (a no-op for owned frames).
        """
        self._packets.append(packet.materialize())
        self._nbytes += packet.nbytes

    def extend(self, packets: Iterable[Packet]) -> None:
        for packet in packets:
            self.add(packet)

    def __len__(self) -> int:
        return len(self._packets)

    @property
    def nbytes(self) -> int:
        """Total payload bytes currently buffered."""
        return self._nbytes

    def should_flush(self) -> bool:
        """True once the buffer hit its packet- or byte-count bound."""
        return len(self._packets) >= self.max_packets or self._nbytes >= self.max_bytes

    def drain(self) -> List[Packet]:
        """Remove and return the buffered packets (no encoding)."""
        packets, self._packets = self._packets, []
        self._nbytes = 0
        return packets

    def requeue(self, packets: List[Packet]) -> None:
        """Put drained packets back at the *front* of the buffer.

        Used when a send attempt fails recoverably (e.g. the link's
        bounded send queue is full) so backpressure never reorders or
        drops packets.
        """
        self._packets[:0] = packets
        self._nbytes += sum(p.nbytes for p in packets)

    def encode(self) -> bytes:
        """Encode and clear the buffer; returns the framed message."""
        return encode_batch(self.drain())
