"""Communicators: groups of network end-points (paper §2.1).

"MRNet uses communicators to represent groups of network end-points.
Like communicators in MPI, MRNet communicators provide a handle that
identifies a set of end-points for point-to-point, multicast or
broadcast communications."  Communicators are created and managed by
the front-end; back-ends cannot address each other.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Iterator

__all__ = ["Communicator"]


class Communicator:
    """An immutable set of back-end ranks, owned by a front-end network."""

    __slots__ = ("_network", "_ranks")

    def __init__(self, network, ranks: Iterable[int]):
        ranks = frozenset(int(r) for r in ranks)
        if not ranks:
            raise ValueError("communicator must contain at least one end-point")
        unknown = ranks - network.endpoints
        if unknown:
            raise ValueError(f"unknown back-end ranks: {sorted(unknown)}")
        self._network = network
        self._ranks = ranks

    @property
    def network(self):
        return self._network

    @property
    def ranks(self) -> FrozenSet[int]:
        return self._ranks

    def __len__(self) -> int:
        return len(self._ranks)

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._ranks))

    def __contains__(self, rank: int) -> bool:
        return rank in self._ranks

    def __eq__(self, other) -> bool:
        if not isinstance(other, Communicator):
            return NotImplemented
        return self._network is other._network and self._ranks == other._ranks

    def __hash__(self) -> int:
        return hash((id(self._network), self._ranks))

    def subset(self, ranks: Iterable[int]) -> "Communicator":
        """A new communicator over a subset of this one's end-points."""
        ranks = frozenset(int(r) for r in ranks)
        extra = ranks - self._ranks
        if extra:
            raise ValueError(
                f"ranks {sorted(extra)} are not members of this communicator"
            )
        return Communicator(self._network, ranks)

    def __repr__(self) -> str:
        shown = sorted(self._ranks)
        if len(shown) > 8:
            body = f"{shown[:8]}... ({len(shown)} ranks)"
        else:
            body = str(shown)
        return f"Communicator({body})"
