"""Format-string handling for MRNet typed packets.

MRNet describes packet contents with a format string "similar to that
used by C formatted I/O primitives printf and scanf" (paper §2.1): for
example ``"%d %f %s"`` is an integer, a float, and a character string.
MRNet "also adds specifiers for arrays of simple data types"; we follow
the real MRNet convention of an ``a`` modifier (``%ad`` is an array of
32-bit integers).

Supported specifiers:

========  ==========================  ================
spec      Python type                 wire encoding
========  ==========================  ================
``%c``    int (0..255) or 1-char str  1 byte
``%d``    int                         int32, big-endian
``%ud``   int (non-negative)          uint32
``%ld``   int                         int64
``%uld``  int (non-negative)          uint64
``%f``    float                       IEEE-754 binary32
``%lf``   float                       IEEE-754 binary64
``%s``    str                         uint32 length + UTF-8 bytes
``%b``    bytes                       uint32 length + raw bytes
``%ac``   bytes / sequence of ints    uint32 count + bytes
``%ad``   sequence of ints            uint32 count + int32[]
``%aud``  sequence of ints            uint32 count + uint32[]
``%ald``  sequence of ints            uint32 count + int64[]
``%auld`` sequence of ints            uint32 count + uint64[]
``%af``   sequence of floats          uint32 count + float32[]
``%alf``  sequence of floats          uint32 count + float64[]
``%as``   sequence of strs            uint32 count + each as ``%s``
========  ==========================  ================

A :class:`FormatString` is an immutable, validated parse of such a
string; parsing is memoised because streams re-use the same format for
every packet they carry.
"""

from __future__ import annotations

import functools
import struct
from dataclasses import dataclass
from enum import Enum
from typing import Optional, Tuple

__all__ = [
    "TypeCode",
    "FieldSpec",
    "FormatString",
    "FormatError",
    "parse_format",
]


class FormatError(ValueError):
    """Raised for malformed format strings or mismatched values."""


class TypeCode(Enum):
    """Base element types carried in MRNet packets."""

    CHAR = "c"
    INT32 = "d"
    UINT32 = "ud"
    INT64 = "ld"
    UINT64 = "uld"
    FLOAT32 = "f"
    FLOAT64 = "lf"
    STRING = "s"
    BYTES = "b"

    # These look up precomputed module tables: they sit on the
    # per-field packet encode/decode hot path, where rebuilding the
    # table per call is measurable.

    @property
    def is_integral(self) -> bool:
        return self in _INTEGRAL_CODES

    @property
    def is_float(self) -> bool:
        return self in _FLOAT_CODES

    @property
    def struct_char(self) -> str:
        """The :mod:`struct` code for fixed-width scalar types."""
        try:
            return _STRUCT_CHAR[self]
        except KeyError:  # STRING / BYTES are length-prefixed
            raise FormatError(f"{self} has no fixed-width struct code") from None

    @property
    def bounds(self) -> Tuple[int, int] | None:
        """Inclusive (lo, hi) range for integral types, else ``None``."""
        return _BOUNDS.get(self)


_INTEGRAL_CODES = frozenset(
    (TypeCode.CHAR, TypeCode.INT32, TypeCode.UINT32, TypeCode.INT64, TypeCode.UINT64)
)
_FLOAT_CODES = frozenset((TypeCode.FLOAT32, TypeCode.FLOAT64))
_STRUCT_CHAR = {
    TypeCode.CHAR: "B",
    TypeCode.INT32: "i",
    TypeCode.UINT32: "I",
    TypeCode.INT64: "q",
    TypeCode.UINT64: "Q",
    TypeCode.FLOAT32: "f",
    TypeCode.FLOAT64: "d",
}
_BOUNDS = {
    TypeCode.CHAR: (0, 0xFF),
    TypeCode.INT32: (-(2**31), 2**31 - 1),
    TypeCode.UINT32: (0, 2**32 - 1),
    TypeCode.INT64: (-(2**63), 2**63 - 1),
    TypeCode.UINT64: (0, 2**64 - 1),
}


# Longest-match ordering matters: "uld" before "ud"/"ld"/"d", etc.
_SCALAR_SPECS = ("uld", "ud", "ld", "lf", "c", "d", "f", "s", "b")
_SCALAR_BY_SPEC = {
    "c": TypeCode.CHAR,
    "d": TypeCode.INT32,
    "ud": TypeCode.UINT32,
    "ld": TypeCode.INT64,
    "uld": TypeCode.UINT64,
    "f": TypeCode.FLOAT32,
    "lf": TypeCode.FLOAT64,
    "s": TypeCode.STRING,
    "b": TypeCode.BYTES,
}
# Array element types; "%ab" is not a thing ("%b" is already a blob).
_ARRAY_ELEMENT_SPECS = ("uld", "ud", "ld", "lf", "c", "d", "f", "s")


@dataclass(frozen=True)
class FieldSpec:
    """One ``%...`` conversion in a format string."""

    code: TypeCode
    is_array: bool = False

    @property
    def spec(self) -> str:
        """The textual specifier, e.g. ``"%ad"``."""
        return "%" + ("a" if self.is_array else "") + self.code.value

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.spec


class FormatString:
    """A validated, parsed packet format.

    Instances are immutable and hashable; two formats compare equal iff
    their field sequences are identical (whitespace between conversions
    is not significant).
    """

    __slots__ = ("_fields", "_canonical", "_canonical_bytes", "_scalar_struct")

    def __init__(self, fmt: str):
        self._fields = _parse_fields(fmt)
        self._canonical = " ".join(f.spec for f in self._fields)
        self._canonical_bytes = self._canonical.encode("utf-8")
        # Formats made only of fixed-width scalars (the overwhelmingly
        # common case for small control/tool packets) pack their whole
        # value tuple with one precompiled Struct instead of a
        # per-field encode loop.
        self._scalar_struct: Optional[struct.Struct] = None
        if all(not f.is_array and f.code in _STRUCT_CHAR for f in self._fields):
            self._scalar_struct = struct.Struct(
                ">" + "".join(_STRUCT_CHAR[f.code] for f in self._fields)
            )

    @property
    def fields(self) -> Tuple[FieldSpec, ...]:
        return self._fields

    @property
    def canonical(self) -> str:
        """Canonical text: single-space-separated specifiers."""
        return self._canonical

    @property
    def canonical_bytes(self) -> bytes:
        """UTF-8 encoding of :attr:`canonical` (cached; wire hot path)."""
        return self._canonical_bytes

    @property
    def scalar_struct(self) -> Optional[struct.Struct]:
        """Whole-tuple Struct for all-fixed-scalar formats, else None."""
        return self._scalar_struct

    def __len__(self) -> int:
        return len(self._fields)

    def __iter__(self):
        return iter(self._fields)

    def __eq__(self, other) -> bool:
        if isinstance(other, FormatString):
            return self._fields == other._fields
        if isinstance(other, str):
            return self._fields == parse_format(other)._fields
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._fields)

    def __repr__(self) -> str:
        return f"FormatString({self._canonical!r})"


def _parse_fields(fmt: str) -> Tuple[FieldSpec, ...]:
    if not isinstance(fmt, str):
        raise FormatError(f"format must be a str, got {type(fmt).__name__}")
    fields = []
    i, n = 0, len(fmt)
    while i < n:
        ch = fmt[i]
        if ch.isspace():
            i += 1
            continue
        if ch != "%":
            raise FormatError(
                f"unexpected character {ch!r} at offset {i} in format {fmt!r}"
            )
        i += 1
        is_array = False
        if i < n and fmt[i] == "a":
            is_array = True
            i += 1
        specs = _ARRAY_ELEMENT_SPECS if is_array else _SCALAR_SPECS
        for spec in specs:
            if fmt.startswith(spec, i):
                # Guard against a longer identifier, e.g. "%dd".
                end = i + len(spec)
                if end < n and not (fmt[end].isspace() or fmt[end] == "%"):
                    continue
                fields.append(FieldSpec(_SCALAR_BY_SPEC[spec], is_array))
                i = end
                break
        else:
            raise FormatError(
                f"unknown conversion at offset {i} in format {fmt!r}"
            )
    if not fields:
        raise FormatError(f"format {fmt!r} contains no conversions")
    return tuple(fields)


@functools.lru_cache(maxsize=4096)
def parse_format(fmt: str) -> FormatString:
    """Parse and memoise a format string.

    Streams stamp every packet with the same format, so parsing is on
    the packet hot path; the cache makes repeat parses O(1).
    """
    return FormatString(fmt)
