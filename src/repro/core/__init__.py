"""Core MRNet machinery: packets, streams, comm nodes, the Network API."""

from .backend import BackEnd, BackEndStream, NetworkShutdown
from .batching import PacketBuffer, decode_batch, encode_batch
from .commnode import CommNode, NodeCore
from .communicator import Communicator
from .failure import (
    DEGRADE,
    FAIL_FAST,
    REPAIR,
    HeartbeatConfig,
    InstantiationError,
    RanksChanged,
    RecoveryCoordinator,
)
from .formats import FormatError, FormatString, TypeCode, parse_format
from .network import Network, NetworkDownError, NetworkError
from .packet import Packet, PacketDecodeError
from .protocol import (
    CONTROL_STREAM_ID,
    FIRST_APP_TAG,
    FIRST_STREAM_ID,
    TAG_CLOSE_STREAM,
    TAG_ENDPOINT_REPORT,
    TAG_HEARTBEAT,
    TAG_NEW_STREAM,
    TAG_RANKS_CHANGED,
    TAG_SHUTDOWN,
)
from .routing import RoutingTable
from .stream import Stream, StreamClosed
from .stream_manager import StreamManager

__all__ = [
    "Packet",
    "PacketDecodeError",
    "FormatString",
    "FormatError",
    "TypeCode",
    "parse_format",
    "PacketBuffer",
    "encode_batch",
    "decode_batch",
    "Network",
    "NetworkError",
    "NetworkDownError",
    "FAIL_FAST",
    "DEGRADE",
    "REPAIR",
    "HeartbeatConfig",
    "InstantiationError",
    "RanksChanged",
    "RecoveryCoordinator",
    "Communicator",
    "Stream",
    "StreamClosed",
    "BackEnd",
    "BackEndStream",
    "NetworkShutdown",
    "CommNode",
    "NodeCore",
    "StreamManager",
    "RoutingTable",
    "CONTROL_STREAM_ID",
    "FIRST_STREAM_ID",
    "FIRST_APP_TAG",
    "TAG_ENDPOINT_REPORT",
    "TAG_NEW_STREAM",
    "TAG_CLOSE_STREAM",
    "TAG_SHUTDOWN",
    "TAG_HEARTBEAT",
    "TAG_RANKS_CHANGED",
]
