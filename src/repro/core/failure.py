"""Fault-tolerance layer: policies, liveness, and tree repair.

The paper defers "recovery mechanisms for failures of tool or MRNet
processes" to future work (§6); this module supplies them for the
reproduction's runtimes.  Three pieces:

**Failure policy** — every :class:`~repro.core.network.Network` runs
under one of three policies:

* ``fail_fast`` — the first observed failure (a dead link, a lost
  rank set) poisons the network: the next front-end API call raises
  :class:`NetworkDownError` carrying the root cause.
* ``degrade`` (default) — failures shrink the tree: dead subtrees are
  dropped from routing, in-flight waves reconfigure to complete over
  the surviving rank set, and the front-end is notified through
  ``RANKS_CHANGED`` events.  This matches the pre-existing behaviour
  for child-link death and keeps it for internal-node death.
* ``repair`` — like ``degrade``, but orphaned processes additionally
  reconnect to their grandparent (the dual-path idea of Träff's
  two-tree reductions applied to the control tree): the network heals
  back to full membership instead of shrinking permanently.

**Heartbeats** — EOF detection only catches *closed* connections.  A
wedged peer — alive at the TCP level but no longer processing — is
caught by lightweight liveness probes (``TAG_HEARTBEAT``) multiplexed
through each node's existing event loop, governed by a
:class:`HeartbeatConfig` (probe interval + miss threshold).

**RecoveryCoordinator** — the thread-hosted runtimes (``local`` and
``tcp`` transports) keep every process in one address space, so
repair is brokered by a per-network coordinator: an orphan asks it
for a new parent, the coordinator walks up the topology to the
nearest live ancestor, manufactures a fresh edge (an in-process
channel or a socketpair, matching the network's transport), and
hands each side over.  The orphan then re-reports its endpoint set
through the new edge, which is what updates routing tables and wave
membership at the adopter — the same §2.5 report protocol used at
startup, reused for repair.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from ..obs.metrics import MetricsRegistry

__all__ = [
    "FAIL_FAST",
    "DEGRADE",
    "REPAIR",
    "POLICIES",
    "HeartbeatConfig",
    "RanksChanged",
    "InstantiationError",
    "backoff_delays",
    "RecoveryCoordinator",
]

FAIL_FAST = "fail_fast"
DEGRADE = "degrade"
REPAIR = "repair"
POLICIES = (FAIL_FAST, DEGRADE, REPAIR)


class InstantiationError(ConnectionError):
    """Tree instantiation could not reach a peer after bounded retries."""

    def __init__(self, address, attempts: int, last_error: Optional[str] = None):
        detail = f" ({last_error})" if last_error else ""
        super().__init__(
            f"unreachable MRNet process at {address[0]}:{address[1]} "
            f"after {attempts} connect attempt(s){detail}"
        )
        self.address = tuple(address)
        self.attempts = attempts
        self.last_error = last_error


@dataclass(frozen=True)
class HeartbeatConfig:
    """Liveness probing knobs.

    ``interval`` seconds between probes (``<= 0`` disables heartbeats
    entirely — the default — so steady-state overhead is zero unless a
    tool opts in).  A peer is declared dead after ``miss_threshold``
    consecutive intervals with *no* traffic of any kind: data packets
    count as liveness, so probes only flow on otherwise-idle links.
    """

    interval: float = 0.0
    miss_threshold: int = 3
    #: Fractional probe-emission jitter: each node draws its next probe
    #: interval uniformly from ``interval * [1 - jitter, 1 + jitter]``
    #: (deterministically, seeded by the node name) so a large tree's
    #: probes de-synchronize instead of bursting in lockstep.  Jitter
    #: never affects the *detection* deadline below.
    jitter: float = 0.2

    @property
    def enabled(self) -> bool:
        return self.interval > 0

    @property
    def deadline(self) -> float:
        """Silence longer than this declares the peer dead.

        Computed from the nominal interval: with jitter ``j <= 0.5``
        and ``miss_threshold >= 2`` a live peer's probes always arrive
        inside the deadline.
        """
        return self.interval * max(self.miss_threshold, 1)


@dataclass(frozen=True)
class RanksChanged:
    """One wave-membership change observed by the front-end."""

    stream_id: int
    epoch: int
    lost: Tuple[int, ...]
    gained: Tuple[int, ...]


def backoff_delays(
    attempts: int,
    base: float = 0.1,
    cap: float = 2.0,
    jitter: float = 0.5,
    rng=None,
) -> List[float]:
    """Capped exponential backoff with deterministic jitter.

    Returns ``attempts - 1`` sleep durations (no sleep after the last
    try).  Delay *k* is ``min(cap, base * 2**k)`` scaled by a jitter
    factor drawn uniformly from ``[1 - jitter, 1 + jitter]`` using
    *rng* (an object with ``uniform``; defaults to a fixed-seed
    ``random.Random`` so retry schedules are reproducible).
    """
    if rng is None:
        import random

        rng = random.Random(0xB0FF)
    delays = []
    for k in range(max(attempts - 1, 0)):
        d = min(cap, base * (2.0**k))
        delays.append(d * rng.uniform(1.0 - jitter, 1.0 + jitter))
    return delays


@dataclass
class _Member:
    """One registered process slot of a thread-hosted network."""

    key: tuple  # topology (host, index)
    kind: str  # "frontend" | "commnode" | "backend" | "remote"
    parent_key: Optional[tuple]
    core: object = None  # NodeCore (frontend/commnode)
    commnode: object = None  # CommNode wrapper (commnode only)
    slot: object = None  # _LeafSlot (backend only)
    addr: object = None  # (host, port) listener address (remote only)
    proc: object = None  # Popen-like handle (remote only)


class RecoveryCoordinator:
    """Brokers orphan adoption and aggregates recovery statistics.

    One instance per thread-hosted :class:`Network`.  All methods are
    thread-safe: orphans call :meth:`adopt` from comm-node loop
    threads or the tool thread (back-ends), concurrently with the
    front-end pumping.
    """

    def __init__(self, transport: str = "local", clock: Callable[[], float] = time.monotonic):
        self.transport = transport
        self.clock = clock
        self._lock = threading.Lock()
        self._members: Dict[tuple, _Member] = {}
        self._failed_nodes: set = set()
        # Typed registry (see repro.obs.metrics); bump()/snapshot()
        # keep their historical plain-dict API on top of it.
        self.metrics = MetricsRegistry()
        for name, help_text in (
            ("nodes_failed", "Distinct processes declared failed"),
            ("orphans_adopted", "Orphan adoptions brokered network-wide"),
            ("waves_reconfigured", "Stream membership changes network-wide"),
            ("heartbeats_missed", "Liveness deadlines expired network-wide"),
            ("members_joined", "Back-ends that joined the running network"),
            ("members_left", "Back-ends that left the running network"),
        ):
            self.metrics.counter(name, help_text)

    # -- registration (Network construction) -------------------------------

    def register(self, member: _Member) -> None:
        with self._lock:
            self._members[member.key] = member

    def register_frontend(self, key: tuple, core) -> None:
        self.register(_Member(key, "frontend", None, core=core))

    def register_commnode(self, key: tuple, parent_key: tuple, commnode) -> None:
        self.register(
            _Member(key, "commnode", parent_key, core=commnode.core, commnode=commnode)
        )

    def register_backend(self, key: tuple, parent_key: tuple, slot) -> None:
        self.register(_Member(key, "backend", parent_key, slot=slot))

    def register_remote(
        self, key: tuple, parent_key: Optional[tuple], addr, proc=None
    ) -> None:
        """Register an out-of-process comm node by its listener address.

        ``transport="process"`` trees keep their internal nodes in
        separate OS processes; the coordinator tracks them by address
        (and optionally a Popen-like handle for liveness) so orphaned
        back-ends — which always live in the front-end process — can
        still walk to a live ancestor and reconnect over TCP.
        """
        self.register(_Member(key, "remote", parent_key, addr=addr, proc=proc))

    def members(self, kind: Optional[str] = None) -> List[_Member]:
        """Snapshot of registered members, optionally one *kind*."""
        with self._lock:
            return [
                m for m in self._members.values()
                if kind is None or m.kind == kind
            ]

    def member(self, key: tuple) -> Optional[_Member]:
        """The registered member under *key*, if any."""
        with self._lock:
            return self._members.get(key)

    def unregister(self, key: tuple) -> None:
        """Forget a member slot (e.g. a back-end re-homed elsewhere)."""
        with self._lock:
            self._members.pop(key, None)

    # -- stats -------------------------------------------------------------

    def bump(self, counter: str, n: int = 1) -> None:
        """Add *n* to the named recovery counter (thread-safe)."""
        with self._lock:
            self.metrics.counter(counter).value += n

    def note_node_failure(self, key: Optional[tuple]) -> None:
        """Record one failed process (idempotent per topology key)."""
        with self._lock:
            if key in self._failed_nodes:
                return
            self._failed_nodes.add(key)
            self.metrics.counter("nodes_failed").value += 1

    def snapshot(self) -> Dict[str, int]:
        """Plain ``name -> count`` dump of the recovery counters."""
        with self._lock:
            return {k: c.value for k, c in self.metrics.counters().items()}

    # -- liveness ----------------------------------------------------------

    def _alive(self, member: _Member) -> bool:
        if member.kind == "frontend":
            return True
        if member.kind == "commnode":
            core = member.core
            return not (
                getattr(core, "crashed", False) or getattr(core, "shutting_down", False)
            )
        if member.kind == "remote":
            proc = member.proc
            return proc is None or proc.poll() is None
        backend = getattr(member.slot, "backend", None)
        return backend is not None and not backend.shut_down

    def live_ancestor(self, orphan_key: tuple) -> Optional[_Member]:
        """The nearest live proper ancestor of *orphan_key* (grandparent
        first, walking toward the root)."""
        with self._lock:
            member = self._members.get(orphan_key)
            while member is not None and member.parent_key is not None:
                parent = self._members.get(member.parent_key)
                if parent is None:
                    return None
                if parent is not member and self._alive(parent):
                    return parent
                member = parent
        return None

    # -- adoption ----------------------------------------------------------

    def adopt(self, orphan_key: tuple, orphan_inbox) -> Optional[object]:
        """Attach the orphan under its nearest live ancestor.

        Returns the orphan's new parent :class:`ChannelEnd` (or an
        object presenting that interface), or ``None`` when no live
        ancestor exists / the transport cannot be repaired.  The
        *adopter* side is delivered thread-safely: an in-process
        channel end is offered to the ancestor core's admission queue;
        a socket is handed to the ancestor's event loop.

        The caller must follow up by sending its endpoint report
        through the returned end — that report is what re-populates
        routing and stream membership at the adopter.
        """
        # live_ancestor takes the lock itself; walk outside any edge setup.
        dead_parent = None
        with self._lock:
            me = self._members.get(orphan_key)
            if me is not None:
                dead_parent = me.parent_key
        ancestor = self.live_ancestor(orphan_key)
        if ancestor is None:
            return None
        end = self._make_edge(ancestor, orphan_inbox)
        if end is None:
            return None
        if dead_parent is not None:
            self.note_node_failure(dead_parent)
        self.bump("orphans_adopted")
        with self._lock:
            me = self._members.get(orphan_key)
            if me is not None:
                me.parent_key = ancestor.key
        return end

    # -- voluntary joins ----------------------------------------------------

    def choose_adopter(self, exclude: Iterable[tuple] = ()) -> Optional[_Member]:
        """Pick a parent for a *joining* back-end (coordinator's choice).

        Prefers the live registered comm node with the fewest children
        (spreading join load across the tree); falls back to the
        front-end when no comm node is live.  Remote (out-of-process)
        members are chosen by address the same way, with an unknown
        child count treated as infinite only relative to in-process
        candidates.  *exclude* names member keys that must not be
        chosen — ``Network.rebalance()`` passes the hot node it is
        evacuating so the mover cannot re-adopt its own evacuee.
        """
        excluded = set(exclude)
        with self._lock:
            best = None
            best_load = None
            frontend = None
            for member in self._members.values():
                if member.kind == "frontend":
                    frontend = member
                    continue
                if member.kind not in ("commnode", "remote"):
                    continue
                if member.key in excluded:
                    continue
                if not self._alive(member):
                    continue
                core = member.core
                load = (
                    len(getattr(core, "children", ()))
                    if core is not None
                    else 1 << 20
                )
                if best is None or load < best_load:
                    best, best_load = member, load
            return best or frontend

    def make_join_edge(self, member: _Member, joiner_inbox) -> Optional[object]:
        """Manufacture the joining back-end's parent edge under *member*.

        Unlike :meth:`adopt` this is a voluntary join, not a repair —
        the adopter's admission must not count it as an orphan
        adoption.
        """
        return self._make_edge(member, joiner_inbox, adopted=False)

    def _make_edge(
        self, ancestor: _Member, orphan_inbox, adopted: bool = True
    ) -> Optional[object]:
        """Manufacture one parent↔child edge toward *ancestor*."""
        if ancestor.kind == "remote":
            # Out-of-process adopter: dial its listener; its event
            # loop's acceptor admits the connection as a child link.
            from ..transport.tcp import tcp_connect_retry

            try:
                return tcp_connect_retry(
                    ancestor.addr, orphan_inbox, attempts=3, timeout=5.0
                )
            except (OSError, ConnectionError, InstantiationError):
                return None
        core = ancestor.core
        loop = getattr(ancestor.commnode, "loop", None) if ancestor.commnode else None
        if loop is not None:
            # Selector-driven adopter: give it a raw socket; the loop
            # registers it and attaches the child on its own thread.
            import socket as socket_mod

            from ..transport.tcp import TcpChannelEnd, _alloc_link_id

            sock_parent, sock_child = socket_mod.socketpair()
            # Name the adopting core explicitly: a colocated loop hosts
            # many cores and must not default to the first bound one.
            loop.adopt_socket(sock_parent, core=core, adopted=adopted)
            return TcpChannelEnd(sock_child, _alloc_link_id(), orphan_inbox)
        # Inbox-driven adopter (the front-end):
        # build an in-process channel and queue the parent end for
        # admission at the adopter's next processing step.
        from ..transport.channel import Channel

        channel = Channel(core.inbox, orphan_inbox)
        # end_a sends toward the orphan (the adopter's child end);
        # end_b sends toward the adopter (the orphan's parent end).
        core.offer_child(channel.end_a, adopted=adopted)
        return channel.end_b

    def __repr__(self) -> str:
        return (
            f"RecoveryCoordinator(members={len(self._members)}, "
            f"stats={self.snapshot()})"
        )
