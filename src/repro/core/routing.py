"""Per-node routing state: which back-end ranks lie behind which link.

"a child node object represents a connection directly to an end-point
or to another internal process through which at least one end-point in
the set can ultimately be reached" (paper §2.3).  The
:class:`RoutingTable` is built from the upstream endpoint reports of
§2.5 and answers the downstream fan-out question: given a stream's
endpoint set, which child links must a packet be copied to?

Many-stream scaling (ROADMAP item 2, SDN-group-table style): tools run
thousands of streams over a handful of *communicators*, so the table
interns endpoint sets into :class:`CommGroup` objects and caches each
group's route list against a table-wide **epoch** that bumps on every
topology mutation (endpoint report, link loss, graceful leave).  N
streams over the same group share one ``links_for`` computation per
epoch instead of paying one intersection scan each; repair/join/leave
invalidate the cache implicitly by bumping the epoch.  A maintained
rank→link reverse index makes :meth:`RoutingTable.link_of` O(1).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Union

__all__ = ["CommGroup", "RoutingTable"]


class CommGroup:
    """An interned communicator endpoint set with cached routes.

    One ``CommGroup`` exists per distinct endpoint set per
    :class:`RoutingTable`; every stream over the same communicator
    shares it.  The cached route list is stamped with the table epoch
    it was computed under and recomputed lazily on the first lookup
    after a topology change — stale groups cost nothing until used.
    """

    __slots__ = ("endpoints", "_routes", "_routes_epoch")

    def __init__(self, endpoints: Iterable[int]):
        self.endpoints: FrozenSet[int] = frozenset(endpoints)
        self._routes: Optional[List[int]] = None
        self._routes_epoch: int = -1

    def __len__(self) -> int:
        return len(self.endpoints)

    def __repr__(self) -> str:
        return f"CommGroup({sorted(self.endpoints)})"


class RoutingTable:
    """Maps child link ids to the set of back-end ranks they reach."""

    def __init__(self):
        self._reach: Dict[int, Set[int]] = {}
        # rank -> link carrying it (O(1) link_of; last report wins,
        # matching the scan order semantics it replaces closely enough
        # for a tree where each rank lives behind exactly one link).
        self._rank_link: Dict[int, int] = {}
        # Interned endpoint sets (communicators) with cached routes.
        self._groups: Dict[FrozenSet[int], CommGroup] = {}
        #: Topology mutation counter.  Bumps whenever a reach set
        #: actually changes; group route caches key off it.
        self.epoch: int = 0

    # -- mutation (each bump invalidates every cached route) ---------------

    def add_report(self, link_id: int, ranks: Iterable[int]) -> None:
        """Record (or extend) the ranks reachable through *link_id*."""
        reach = self._reach.setdefault(link_id, set())
        added = False
        for rank in ranks:
            if rank not in reach:
                reach.add(rank)
                added = True
            self._rank_link[rank] = link_id
        if added:
            self.epoch += 1

    def remove_link(self, link_id: int) -> Set[int]:
        """Forget a link (closed child); returns the ranks it reached."""
        ranks = self._reach.pop(link_id, set())
        for rank in ranks:
            if self._rank_link.get(rank) == link_id:
                del self._rank_link[rank]
        if ranks:
            self.epoch += 1
        return ranks

    def remove_rank(self, rank: int) -> None:
        """Forget one back-end rank everywhere (graceful leave).

        The link itself survives — other ranks may still be reachable
        through it; an empty reach set just stops attracting fan-out.
        """
        known = False
        for ranks in self._reach.values():
            if rank in ranks:
                ranks.discard(rank)
                known = True
        self._rank_link.pop(rank, None)
        if known:
            self.epoch += 1

    # -- group interning + cached lookup -----------------------------------

    def group(self, endpoints: Union[FrozenSet[int], Set[int], Iterable[int]]) -> CommGroup:
        """Intern *endpoints* into this table's shared :class:`CommGroup`."""
        key = endpoints if isinstance(endpoints, frozenset) else frozenset(endpoints)
        grp = self._groups.get(key)
        if grp is None:
            grp = self._groups[key] = CommGroup(key)
        return grp

    def links_for_group(self, group: CommGroup) -> List[int]:
        """Cached route list for an interned group (do not mutate).

        Valid until the next table mutation; callers that keep the
        list across epochs must copy it.
        """
        if group._routes_epoch != self.epoch:
            group._routes = self._compute_links(group.endpoints)
            group._routes_epoch = self.epoch
        return group._routes

    def links_for(self, endpoints: Union[FrozenSet[int], Set[int]]) -> List[int]:
        """Child links whose reachable set intersects *endpoints*.

        Links are ordered by the smallest rank they reach, so stream
        child lists — and therefore wave order in synchronization
        filters and concatenation output — follow back-end rank order
        regardless of the order endpoint reports happened to arrive.

        The result is served from the interned group's epoch cache and
        copied, so callers may mutate it freely.
        """
        return list(self.links_for_group(self.group(endpoints)))

    def _compute_links(self, endpoints: FrozenSet[int]) -> List[int]:
        """The uncached intersection scan (reference semantics)."""
        hits = [
            (min(ranks & endpoints), link)
            for link, ranks in self._reach.items()
            if ranks & endpoints
        ]
        return [link for _, link in sorted(hits)]

    # -- queries -------------------------------------------------------------

    def ranks_behind(self, link_id: int) -> Set[int]:
        return set(self._reach.get(link_id, ()))

    def all_ranks(self) -> Set[int]:
        out: Set[int] = set()
        for ranks in self._reach.values():
            out |= ranks
        return out

    def link_of(self, rank: int) -> int:
        """The child link leading to *rank* (raises if unknown)."""
        try:
            return self._rank_link[rank]
        except KeyError:
            raise KeyError(f"no route to back-end rank {rank}") from None

    @property
    def links(self) -> List[int]:
        return list(self._reach)

    def __len__(self) -> int:
        return len(self._reach)

    def __repr__(self) -> str:
        return f"RoutingTable({ {l: sorted(r) for l, r in self._reach.items()} })"
