"""Per-node routing state: which back-end ranks lie behind which link.

"a child node object represents a connection directly to an end-point
or to another internal process through which at least one end-point in
the set can ultimately be reached" (paper §2.3).  The
:class:`RoutingTable` is built from the upstream endpoint reports of
§2.5 and answers the downstream fan-out question: given a stream's
endpoint set, which child links must a packet be copied to?
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Set

__all__ = ["RoutingTable"]


class RoutingTable:
    """Maps child link ids to the set of back-end ranks they reach."""

    def __init__(self):
        self._reach: Dict[int, Set[int]] = {}

    def add_report(self, link_id: int, ranks: Iterable[int]) -> None:
        """Record (or extend) the ranks reachable through *link_id*."""
        self._reach.setdefault(link_id, set()).update(ranks)

    def remove_link(self, link_id: int) -> Set[int]:
        """Forget a link (closed child); returns the ranks it reached."""
        return self._reach.pop(link_id, set())

    def remove_rank(self, rank: int) -> None:
        """Forget one back-end rank everywhere (graceful leave).

        The link itself survives — other ranks may still be reachable
        through it; an empty reach set just stops attracting fan-out.
        """
        for ranks in self._reach.values():
            ranks.discard(rank)

    def links_for(self, endpoints: FrozenSet[int] | Set[int]) -> List[int]:
        """Child links whose reachable set intersects *endpoints*.

        Links are ordered by the smallest rank they reach, so stream
        child lists — and therefore wave order in synchronization
        filters and concatenation output — follow back-end rank order
        regardless of the order endpoint reports happened to arrive.
        """
        hits = [
            (min(ranks & endpoints), link)
            for link, ranks in self._reach.items()
            if ranks & endpoints
        ]
        return [link for _, link in sorted(hits)]

    def ranks_behind(self, link_id: int) -> Set[int]:
        return set(self._reach.get(link_id, ()))

    def all_ranks(self) -> Set[int]:
        out: Set[int] = set()
        for ranks in self._reach.values():
            out |= ranks
        return out

    def link_of(self, rank: int) -> int:
        """The child link leading to *rank* (raises if unknown)."""
        for link, ranks in self._reach.items():
            if rank in ranks:
                return link
        raise KeyError(f"no route to back-end rank {rank}")

    @property
    def links(self) -> List[int]:
        return list(self._reach)

    def __len__(self) -> int:
        return len(self._reach)

    def __repr__(self) -> str:
        return f"RoutingTable({ {l: sorted(r) for l, r in self._reach.items()} })"
