"""Tool back-ends (paper §2.2, Figure 2's ``back_end_main``).

A :class:`BackEnd` is the leaf-side library: it connects to the MRNet
tree (``MR_Network::init_backend``), receives packets with a
*stream-anonymous* ``recv`` that returns both the data and a stream
handle, and sends packets upstream on those handles.

Back-ends are passive objects: they process their inbox from whichever
thread calls :meth:`recv`/:meth:`poll`, so a test or example can drive
hundreds of back-ends from one thread (the GIL would serialise
per-back-end threads anyway — see DESIGN.md).
"""

from __future__ import annotations

import queue
import time
from collections import deque
from typing import Any, Dict, Optional, Tuple

from ..transport.channel import ChannelEnd, Inbox
from ..transport.eventloop import SendQueueFull
from .batching import decode_batch, encode_batch
from .chunking import ChunkReassembler, chunk_meta, split_packet
from .failure import RanksChanged
from .packet import Packet
from .protocol import (
    CONTROL_STREAM_ID,
    FIRST_APP_TAG,
    TAG_CHUNK,
    TAG_CLOSE_STREAM,
    TAG_NEW_STREAM,
    TAG_NEW_STREAMS,
    TAG_RANKS_CHANGED,
    TAG_SHUTDOWN,
    TAG_WAVE_ACK,
    TAG_WAVE_NACK,
    make_endpoint_report,
    make_join,
    make_leave,
    parse_new_stream,
    parse_new_streams,
    parse_ranks_changed,
    parse_wave_ack,
    parse_wave_nack,
)
from .stream_manager import HISTORY_MAX_BYTES, HISTORY_MAX_WAVES

__all__ = ["BackEnd", "BackEndStream", "NetworkShutdown"]


class NetworkShutdown(ConnectionError):
    """Raised by back-end operations after the network shut down."""


class BackEndStream:
    """Back-end-side handle for one stream.

    ``chunk_bytes`` is learned from the stream's NEW_STREAM
    announcement: when set, array payloads above the threshold leave as
    pipeline fragments, each in its own transport frame so upstream
    hops can start reducing before the last fragment is even sent.
    """

    def __init__(self, backend: "BackEnd", stream_id: int, chunk_bytes: int = 0):
        self._backend = backend
        self.stream_id = stream_id
        self.chunk_bytes = chunk_bytes
        self.closed = False
        self._send_wave = 0  # wave ids for this sender's fragments
        # Bounded replay history of sent fragment waves (crash
        # consistency): pruned by the parent's TAG_WAVE_ACK, replayed
        # after a parent repair or on TAG_WAVE_NACK.  A fragment is
        # recorded only *after* its send succeeded, so a repair that
        # fires mid-wave replays exactly the sent prefix and the retry
        # of the failing fragment continues the sequence seamlessly.
        self._history: deque = deque()
        self._history_bytes = 0

    def send(
        self, fmt: str, *values: Any, tag: int = FIRST_APP_TAG, flush: bool = True
    ) -> None:
        """Send a packet upstream toward the front-end.

        With ``flush=False`` the packet is buffered locally (MRNet's
        ``Stream::Send``/``Stream::Flush`` split): a later
        :meth:`BackEnd.flush` ships everything buffered as one batched
        message, one syscall instead of one per packet.
        """
        if self.closed:
            raise NetworkShutdown(f"stream {self.stream_id} is closed")
        packet = Packet(
            self.stream_id, tag, fmt, values, origin_rank=self._backend.rank
        )
        if flush:
            self._send_maybe_chunked(packet, buffered=False)
        else:
            self._send_maybe_chunked(packet, buffered=True)

    def send_packet(self, packet: Packet) -> None:
        if self.closed:
            raise NetworkShutdown(f"stream {self.stream_id} is closed")
        if packet.stream_id != self.stream_id:
            raise ValueError("packet stream id mismatch")
        self._send_maybe_chunked(packet, buffered=False)

    def _send_maybe_chunked(self, packet: Packet, buffered: bool) -> None:
        if self.chunk_bytes:
            chunks = split_packet(packet, self.chunk_bytes, self._send_wave)
            if chunks is not None:
                self._send_wave += 1
                for chunk in chunks:
                    if buffered:
                        self._backend._buffer_upstream(chunk)
                    else:
                        # One frame per fragment: the parent starts on
                        # fragment 0 while we are still encoding the rest.
                        self._backend._send_upstream(chunk)
                    self._record(chunk)
                return
        if buffered:
            self._backend._buffer_upstream(packet)
        else:
            self._backend._send_upstream(packet)

    # -- crash-consistent replay ------------------------------------------

    def _record(self, chunk: Packet) -> None:
        """Park one sent fragment in the bounded replay history."""
        wave_id = chunk_meta(chunk)[0]
        if self._history and self._history[-1][0] == wave_id:
            self._history[-1][1].append(chunk)
        else:
            self._history.append((wave_id, [chunk]))
        self._history_bytes += chunk.nbytes
        while self._history and (
            len(self._history) > HISTORY_MAX_WAVES
            or self._history_bytes > HISTORY_MAX_BYTES
        ):
            _seq, chunks = self._history.popleft()
            self._history_bytes -= sum(c.nbytes for c in chunks)

    def ack_output(self, wave_seq: int) -> None:
        """``TAG_WAVE_ACK`` from the parent: prune through *wave_seq*."""
        while self._history and self._history[0][0] <= wave_seq:
            _seq, chunks = self._history.popleft()
            self._history_bytes -= sum(c.nbytes for c in chunks)

    def resend_since(self, wave_seq: int = -1) -> list:
        """Fragments of buffered waves newer than *wave_seq*, in order."""
        out = []
        for seq, chunks in self._history:
            if seq > wave_seq:
                out.extend(chunks)
        return out

    def __repr__(self) -> str:
        return f"BackEndStream(id={self.stream_id}, rank={self._backend.rank})"


class BackEnd:
    """One tool back-end attached to a leaf slot of the MRNet tree."""

    def __init__(self, rank: int, name: str, parent: ChannelEnd, inbox: Inbox):
        self.rank = rank
        self.name = name
        self._parent = parent
        self._inbox = inbox
        self._streams: Dict[int, BackEndStream] = {}
        # Down-broadcast (reduce-to-all) fragments are reassembled into
        # whole packets before delivery, keyed (stream, origin) since
        # fragment order is only guaranteed per sender.
        self._down_reassemblers: Dict[Tuple[int, int], ChunkReassembler] = {}
        self._pending: deque[Tuple[Packet, BackEndStream]] = deque()
        self._out: list[Packet] = []
        self.connected = False
        self.shut_down = False
        # Tree repair (repair policy only): invoked when the parent
        # link dies without a preceding SHUTDOWN; returns a new parent
        # ChannelEnd toward a live ancestor, or None to give up.
        self.repair_fn = None
        self.reconnects = 0
        self._repairing = False
        # True after a voluntary leave(): the detach was announced, so
        # teardown is expected rather than a network failure.
        self.left = False
        # Fragments replayed from stream histories (repair or NACK).
        self.chunks_retransmitted = 0
        # Down-flooded TAG_RANKS_CHANGED notifications, oldest first:
        # elastic membership fires both directions, so surviving
        # back-ends observe peers joining and leaving here.
        self.membership_events: list[RanksChanged] = []

    # -- lifecycle ------------------------------------------------------------

    def connect(self) -> None:
        """Join the network: report this end-point upstream (§2.5)."""
        if not self.connected:
            self.connected = True
            self._send_raw(make_endpoint_report([self.rank]))

    def join(self, stream_ids=()) -> None:
        """Join a *running* network as a brand-new rank.

        Where :meth:`connect` replays the instantiation-time §2.5
        end-point report for a topology-reserved leaf, ``join``
        announces a rank the topology never knew: every ancestor hop
        splices this back-end into its routing table and into the
        listed streams with joining (grace) semantics, so the rank's
        contributions enter reductions at the next wave-epoch boundary.
        """
        if not self.connected:
            self.connected = True
            self._send_raw(make_join(self.rank, sorted(stream_ids)))

    def register_stream(self, stream_id: int, chunk_bytes: int = 0) -> BackEndStream:
        """Pre-seed a stream handle without a NEW_STREAM announcement.

        A joining back-end missed the broadcasts that created the
        streams it is entering; the front-end knows their parameters
        and seeds the handles before the join is announced.  If data
        later races ahead and :meth:`_handle_control` sees the stream's
        NEW_STREAM replayed, the existing handle just adopts the knob.
        """
        stream = self._streams.get(stream_id)
        if stream is None:
            stream = self._streams[stream_id] = BackEndStream(
                self, stream_id, chunk_bytes=chunk_bytes
            )
        else:
            stream.chunk_bytes = chunk_bytes
        return stream

    # -- receiving ---------------------------------------------------------

    def recv(self, timeout: Optional[float] = None) -> Optional[Tuple[Packet, BackEndStream]]:
        """Stream-anonymous receive (Figure 2's ``MR_Stream::recv``).

        Returns ``(packet, stream)`` for the next data packet, or
        ``None`` once the network has shut down.  Raises
        ``TimeoutError`` if *timeout* elapses with no packet.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._pending:
                return self._pending.popleft()
            if self.shut_down:
                return None
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"back-end {self.rank} recv timed out"
                    )
            try:
                link_id, payload = self._inbox.get(timeout=remaining)
            except queue.Empty:
                raise TimeoutError(f"back-end {self.rank} recv timed out") from None
            self._ingest(link_id, payload)

    def poll(self) -> Optional[Tuple[Packet, BackEndStream]]:
        """Non-blocking receive; drains the inbox, returns next packet or None."""
        while True:
            if self._pending:
                return self._pending.popleft()
            if self.shut_down:
                return None
            try:
                link_id, payload = self._inbox.get_nowait()
            except queue.Empty:
                return None
            self._ingest(link_id, payload)

    def get_stream(self, stream_id: int) -> BackEndStream:
        """The handle for a stream already announced to this back-end."""
        try:
            return self._streams[stream_id]
        except KeyError:
            raise KeyError(
                f"stream {stream_id} unknown at back-end {self.rank}"
            ) from None

    @property
    def stream_ids(self) -> Tuple[int, ...]:
        return tuple(self._streams)

    # -- internals ------------------------------------------------------------

    def _ingest(self, link_id: int, payload: Optional[bytes]) -> None:
        if payload is None:
            if link_id != self._parent.link_id:
                # EOF from a link that is no longer our parent — a
                # stale delivery from before a repair.  Ignore it.
                return
            # Parent link died.  An orderly teardown announces itself
            # with TAG_SHUTDOWN first, so an unannounced EOF here means
            # the parent *crashed* — reconnect to a live ancestor if a
            # repair path was configured.
            if not self.shut_down and self._repair_parent():
                return
            self._mark_shutdown()
            return
        for packet in decode_batch(payload):
            if packet.stream_id == CONTROL_STREAM_ID:
                self._handle_control(packet)
            else:
                stream = self._streams.get(packet.stream_id)
                if stream is None:
                    # Data raced ahead of NEW_STREAM (cannot happen on
                    # FIFO links, but stay safe): synthesise the handle.
                    stream = BackEndStream(self, packet.stream_id)
                    self._streams[packet.stream_id] = stream
                if packet.tag == TAG_CHUNK:
                    key = (packet.stream_id, packet.origin_rank)
                    asm = self._down_reassemblers.get(key)
                    if asm is None:
                        asm = self._down_reassemblers[key] = ChunkReassembler()
                    whole = asm.add(packet)
                    if whole is None:
                        continue
                    packet = whole
                self._pending.append((packet.materialize(), stream))

    def _handle_control(self, packet: Packet) -> None:
        if packet.tag == TAG_NEW_STREAM:
            parsed = parse_new_stream(packet)
            stream_id, endpoints = parsed[0], parsed[1]
            chunk_bytes = parsed[6]
            if self.rank in endpoints:
                stream = self._streams.get(stream_id)
                if stream is None:
                    self._streams[stream_id] = BackEndStream(
                        self, stream_id, chunk_bytes=chunk_bytes
                    )
                else:
                    # Handle synthesised by racing data: adopt the knob.
                    stream.chunk_bytes = chunk_bytes
        elif packet.tag == TAG_NEW_STREAMS:
            # Bulk announcement: register a handle for every spec whose
            # (deduplicated) endpoint group contains this rank.
            groups, specs = parse_new_streams(packet)
            for stream_id, gidx, _sync, _trans, _timeout, _down, chunk_bytes, _pattern in specs:
                if self.rank not in groups[gidx]:
                    continue
                stream = self._streams.get(stream_id)
                if stream is None:
                    self._streams[stream_id] = BackEndStream(
                        self, stream_id, chunk_bytes=chunk_bytes or 0
                    )
                else:
                    stream.chunk_bytes = chunk_bytes or 0
        elif packet.tag == TAG_CLOSE_STREAM:
            (stream_id,) = packet.unpack()
            stream = self._streams.pop(stream_id, None)
            if stream is not None:
                stream.closed = True
            for key in [k for k in self._down_reassemblers if k[0] == stream_id]:
                del self._down_reassemblers[key]
        elif packet.tag == TAG_SHUTDOWN:
            self._mark_shutdown()
        elif packet.tag == TAG_WAVE_ACK:
            stream_id, wave_seq = parse_wave_ack(packet)
            stream = self._streams.get(stream_id)
            if stream is not None:
                stream.ack_output(wave_seq)
        elif packet.tag == TAG_RANKS_CHANGED:
            stream_id, epoch, lost, gained = parse_ranks_changed(packet)
            self.membership_events.append(
                RanksChanged(stream_id, epoch, lost, gained)
            )
        elif packet.tag == TAG_WAVE_NACK:
            # The parent is missing our output from wave_seq on:
            # replay whatever the bounded history still holds.
            stream_id, wave_seq = parse_wave_nack(packet)
            stream = self._streams.get(stream_id)
            if stream is not None:
                self._replay([stream], since=wave_seq - 1)
        # Other control traffic (e.g. TAG_HEARTBEAT probes from a
        # liveness-enabled parent) is consumed silently: back-ends are
        # passive and answer liveness with their data traffic.

    def _repair_parent(self) -> bool:
        """Reconnect to a live ancestor after an unannounced EOF."""
        if self.repair_fn is None or self._repairing:
            return False
        self._repairing = True
        try:
            try:
                new_parent = self.repair_fn()
            except Exception:
                new_parent = None
            if new_parent is None:
                return False
            self._parent = new_parent
            self.reconnects += 1
            try:
                # Re-announce this end-point through the new edge: the
                # adopter's routing table and stream membership update
                # from this report (the §2.5 protocol reused for repair).
                self._send_raw(make_endpoint_report([self.rank]))
            except NetworkShutdown:
                return False
            # Crash-consistent waves: replay every un-ACKed fragment
            # wave after the report (report-before-data invariant).
            # The new parent's dedup watermark — seeded from our dead
            # parent's checkpoint when one exists — drops whatever the
            # old parent already forwarded upstream.
            self._replay(self._streams.values())
            return True
        finally:
            self._repairing = False

    def _replay(self, streams, since: int = -1) -> None:
        """Best-effort re-send of buffered fragment waves."""
        for stream in streams:
            for chunk in stream.resend_since(since):
                try:
                    self._send_raw(chunk)
                except (NetworkShutdown, ConnectionError):
                    return
                self.chunks_retransmitted += 1

    def leave(self) -> None:
        """Gracefully detach from a running network (elastic membership).

        Flushes any locally buffered sends, announces ``TAG_LEAVE`` so
        every ancestor retires this rank at a wave-epoch boundary
        (queued contributions still ride the next waves), then closes
        the uplink.  The back-end is unusable afterwards; unlike a
        crash, no repair or degrade accounting fires anywhere — the
        EOF that follows the announcement is expected.
        """
        if self.left or self.shut_down:
            self.left = True
            return
        self.left = True
        try:
            self.flush()
        except (NetworkShutdown, ConnectionError):
            pass
        if self.connected:
            try:
                self._send_raw(make_leave(self.rank))
            except (NetworkShutdown, ConnectionError):
                pass
        self._mark_shutdown()

    def _mark_shutdown(self) -> None:
        self.shut_down = True
        for stream in self._streams.values():
            stream.closed = True
        # Release the uplink eagerly: a shared-memory end holds kernel
        # segments that only disappear when some process closes them,
        # and after SHUTDOWN nobody else will.
        try:
            self._parent.close()
        except Exception:
            pass

    def _send_upstream(self, packet: Packet) -> None:
        self._check_sendable()
        self._send_raw(packet)

    def _buffer_upstream(self, packet: Packet) -> None:
        self._check_sendable()
        self._out.append(packet)

    def flush(self) -> None:
        """Ship all packets buffered by ``send(..., flush=False)``.

        Everything buffered since the last flush leaves as one batched
        message regardless of stream, preserving per-stream FIFO order.
        """
        if not self._out:
            return
        packets, self._out = self._out, []
        self._send_batch(packets)

    def _check_sendable(self) -> None:
        if self.shut_down:
            raise NetworkShutdown(f"back-end {self.rank}: network is down")
        if not self.connected:
            raise NetworkShutdown(
                f"back-end {self.rank} must connect() before sending"
            )

    def _send_raw(self, packet: Packet) -> None:
        self._send_batch([packet])

    def _send_batch(self, packets: list[Packet]) -> None:
        try:
            self._parent.send(encode_batch(packets))
            return
        except SendQueueFull as exc:
            # The payload outgrew the link's bounded send queue.  With
            # chunking enabled oversized sends are split before they get
            # here, so point at the knob instead of just failing.
            raise SendQueueFull(
                f"{exc}; payload too large for the uplink's send-queue "
                f"bound — create the stream with chunk_bytes=<n> to split "
                f"large sends into pipeline fragments"
            ) from exc
        except ConnectionError:
            pass
        # The EOF that announces a crashed parent can be queued behind
        # data, so the first sign of death may be this send failing.
        # Repair (if configured) and retry the batch once on the new
        # edge before declaring the network down.
        if not self.shut_down and not self._repairing and self._repair_parent():
            try:
                self._parent.send(encode_batch(packets))
                return
            except ConnectionError:
                pass
        self._mark_shutdown()
        raise NetworkShutdown(
            f"back-end {self.rank}: connection closed"
        ) from None

    def __repr__(self) -> str:
        return f"BackEnd(rank={self.rank}, name={self.name!r})"
