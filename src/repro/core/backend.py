"""Tool back-ends (paper §2.2, Figure 2's ``back_end_main``).

A :class:`BackEnd` is the leaf-side library: it connects to the MRNet
tree (``MR_Network::init_backend``), receives packets with a
*stream-anonymous* ``recv`` that returns both the data and a stream
handle, and sends packets upstream on those handles.

Back-ends are passive objects: they process their inbox from whichever
thread calls :meth:`recv`/:meth:`poll`, so a test or example can drive
hundreds of back-ends from one thread (the GIL would serialise
per-back-end threads anyway — see DESIGN.md).
"""

from __future__ import annotations

import queue
import time
from collections import deque
from typing import Any, Dict, Optional, Tuple

from ..transport.channel import ChannelEnd, Inbox
from ..transport.eventloop import SendQueueFull
from .batching import decode_batch, encode_batch
from .chunking import ChunkReassembler, split_packet
from .packet import Packet
from .protocol import (
    CONTROL_STREAM_ID,
    FIRST_APP_TAG,
    TAG_CHUNK,
    TAG_CLOSE_STREAM,
    TAG_NEW_STREAM,
    TAG_SHUTDOWN,
    make_endpoint_report,
    parse_new_stream,
)

__all__ = ["BackEnd", "BackEndStream", "NetworkShutdown"]


class NetworkShutdown(ConnectionError):
    """Raised by back-end operations after the network shut down."""


class BackEndStream:
    """Back-end-side handle for one stream.

    ``chunk_bytes`` is learned from the stream's NEW_STREAM
    announcement: when set, array payloads above the threshold leave as
    pipeline fragments, each in its own transport frame so upstream
    hops can start reducing before the last fragment is even sent.
    """

    def __init__(self, backend: "BackEnd", stream_id: int, chunk_bytes: int = 0):
        self._backend = backend
        self.stream_id = stream_id
        self.chunk_bytes = chunk_bytes
        self.closed = False
        self._send_wave = 0  # wave ids for this sender's fragments

    def send(
        self, fmt: str, *values: Any, tag: int = FIRST_APP_TAG, flush: bool = True
    ) -> None:
        """Send a packet upstream toward the front-end.

        With ``flush=False`` the packet is buffered locally (MRNet's
        ``Stream::Send``/``Stream::Flush`` split): a later
        :meth:`BackEnd.flush` ships everything buffered as one batched
        message, one syscall instead of one per packet.
        """
        if self.closed:
            raise NetworkShutdown(f"stream {self.stream_id} is closed")
        packet = Packet(
            self.stream_id, tag, fmt, values, origin_rank=self._backend.rank
        )
        if flush:
            self._send_maybe_chunked(packet, buffered=False)
        else:
            self._send_maybe_chunked(packet, buffered=True)

    def send_packet(self, packet: Packet) -> None:
        if self.closed:
            raise NetworkShutdown(f"stream {self.stream_id} is closed")
        if packet.stream_id != self.stream_id:
            raise ValueError("packet stream id mismatch")
        self._send_maybe_chunked(packet, buffered=False)

    def _send_maybe_chunked(self, packet: Packet, buffered: bool) -> None:
        if self.chunk_bytes:
            chunks = split_packet(packet, self.chunk_bytes, self._send_wave)
            if chunks is not None:
                self._send_wave += 1
                for chunk in chunks:
                    if buffered:
                        self._backend._buffer_upstream(chunk)
                    else:
                        # One frame per fragment: the parent starts on
                        # fragment 0 while we are still encoding the rest.
                        self._backend._send_upstream(chunk)
                return
        if buffered:
            self._backend._buffer_upstream(packet)
        else:
            self._backend._send_upstream(packet)

    def __repr__(self) -> str:
        return f"BackEndStream(id={self.stream_id}, rank={self._backend.rank})"


class BackEnd:
    """One tool back-end attached to a leaf slot of the MRNet tree."""

    def __init__(self, rank: int, name: str, parent: ChannelEnd, inbox: Inbox):
        self.rank = rank
        self.name = name
        self._parent = parent
        self._inbox = inbox
        self._streams: Dict[int, BackEndStream] = {}
        # Down-broadcast (reduce-to-all) fragments are reassembled into
        # whole packets before delivery, keyed (stream, origin) since
        # fragment order is only guaranteed per sender.
        self._down_reassemblers: Dict[Tuple[int, int], ChunkReassembler] = {}
        self._pending: deque[Tuple[Packet, BackEndStream]] = deque()
        self._out: list[Packet] = []
        self.connected = False
        self.shut_down = False
        # Tree repair (repair policy only): invoked when the parent
        # link dies without a preceding SHUTDOWN; returns a new parent
        # ChannelEnd toward a live ancestor, or None to give up.
        self.repair_fn = None
        self.reconnects = 0
        self._repairing = False

    # -- lifecycle ------------------------------------------------------------

    def connect(self) -> None:
        """Join the network: report this end-point upstream (§2.5)."""
        if not self.connected:
            self.connected = True
            self._send_raw(make_endpoint_report([self.rank]))

    # -- receiving ---------------------------------------------------------

    def recv(self, timeout: Optional[float] = None) -> Optional[Tuple[Packet, BackEndStream]]:
        """Stream-anonymous receive (Figure 2's ``MR_Stream::recv``).

        Returns ``(packet, stream)`` for the next data packet, or
        ``None`` once the network has shut down.  Raises
        ``TimeoutError`` if *timeout* elapses with no packet.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            if self._pending:
                return self._pending.popleft()
            if self.shut_down:
                return None
            remaining = None
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise TimeoutError(
                        f"back-end {self.rank} recv timed out"
                    )
            try:
                link_id, payload = self._inbox.get(timeout=remaining)
            except queue.Empty:
                raise TimeoutError(f"back-end {self.rank} recv timed out") from None
            self._ingest(link_id, payload)

    def poll(self) -> Optional[Tuple[Packet, BackEndStream]]:
        """Non-blocking receive; drains the inbox, returns next packet or None."""
        while True:
            if self._pending:
                return self._pending.popleft()
            if self.shut_down:
                return None
            try:
                link_id, payload = self._inbox.get_nowait()
            except queue.Empty:
                return None
            self._ingest(link_id, payload)

    def get_stream(self, stream_id: int) -> BackEndStream:
        """The handle for a stream already announced to this back-end."""
        try:
            return self._streams[stream_id]
        except KeyError:
            raise KeyError(
                f"stream {stream_id} unknown at back-end {self.rank}"
            ) from None

    @property
    def stream_ids(self) -> Tuple[int, ...]:
        return tuple(self._streams)

    # -- internals ------------------------------------------------------------

    def _ingest(self, link_id: int, payload: Optional[bytes]) -> None:
        if payload is None:
            if link_id != self._parent.link_id:
                # EOF from a link that is no longer our parent — a
                # stale delivery from before a repair.  Ignore it.
                return
            # Parent link died.  An orderly teardown announces itself
            # with TAG_SHUTDOWN first, so an unannounced EOF here means
            # the parent *crashed* — reconnect to a live ancestor if a
            # repair path was configured.
            if not self.shut_down and self._repair_parent():
                return
            self._mark_shutdown()
            return
        for packet in decode_batch(payload):
            if packet.stream_id == CONTROL_STREAM_ID:
                self._handle_control(packet)
            else:
                stream = self._streams.get(packet.stream_id)
                if stream is None:
                    # Data raced ahead of NEW_STREAM (cannot happen on
                    # FIFO links, but stay safe): synthesise the handle.
                    stream = BackEndStream(self, packet.stream_id)
                    self._streams[packet.stream_id] = stream
                if packet.tag == TAG_CHUNK:
                    key = (packet.stream_id, packet.origin_rank)
                    asm = self._down_reassemblers.get(key)
                    if asm is None:
                        asm = self._down_reassemblers[key] = ChunkReassembler()
                    whole = asm.add(packet)
                    if whole is None:
                        continue
                    packet = whole
                self._pending.append((packet.materialize(), stream))

    def _handle_control(self, packet: Packet) -> None:
        if packet.tag == TAG_NEW_STREAM:
            parsed = parse_new_stream(packet)
            stream_id, endpoints = parsed[0], parsed[1]
            chunk_bytes = parsed[6]
            if self.rank in endpoints:
                stream = self._streams.get(stream_id)
                if stream is None:
                    self._streams[stream_id] = BackEndStream(
                        self, stream_id, chunk_bytes=chunk_bytes
                    )
                else:
                    # Handle synthesised by racing data: adopt the knob.
                    stream.chunk_bytes = chunk_bytes
        elif packet.tag == TAG_CLOSE_STREAM:
            (stream_id,) = packet.unpack()
            stream = self._streams.pop(stream_id, None)
            if stream is not None:
                stream.closed = True
            for key in [k for k in self._down_reassemblers if k[0] == stream_id]:
                del self._down_reassemblers[key]
        elif packet.tag == TAG_SHUTDOWN:
            self._mark_shutdown()
        # Other control traffic (e.g. TAG_HEARTBEAT probes from a
        # liveness-enabled parent) is consumed silently: back-ends are
        # passive and answer liveness with their data traffic.

    def _repair_parent(self) -> bool:
        """Reconnect to a live ancestor after an unannounced EOF."""
        if self.repair_fn is None or self._repairing:
            return False
        self._repairing = True
        try:
            try:
                new_parent = self.repair_fn()
            except Exception:
                new_parent = None
            if new_parent is None:
                return False
            self._parent = new_parent
            self.reconnects += 1
            try:
                # Re-announce this end-point through the new edge: the
                # adopter's routing table and stream membership update
                # from this report (the §2.5 protocol reused for repair).
                self._send_raw(make_endpoint_report([self.rank]))
            except NetworkShutdown:
                return False
            return True
        finally:
            self._repairing = False

    def _mark_shutdown(self) -> None:
        self.shut_down = True
        for stream in self._streams.values():
            stream.closed = True
        # Release the uplink eagerly: a shared-memory end holds kernel
        # segments that only disappear when some process closes them,
        # and after SHUTDOWN nobody else will.
        try:
            self._parent.close()
        except Exception:
            pass

    def _send_upstream(self, packet: Packet) -> None:
        self._check_sendable()
        self._send_raw(packet)

    def _buffer_upstream(self, packet: Packet) -> None:
        self._check_sendable()
        self._out.append(packet)

    def flush(self) -> None:
        """Ship all packets buffered by ``send(..., flush=False)``.

        Everything buffered since the last flush leaves as one batched
        message regardless of stream, preserving per-stream FIFO order.
        """
        if not self._out:
            return
        packets, self._out = self._out, []
        self._send_batch(packets)

    def _check_sendable(self) -> None:
        if self.shut_down:
            raise NetworkShutdown(f"back-end {self.rank}: network is down")
        if not self.connected:
            raise NetworkShutdown(
                f"back-end {self.rank} must connect() before sending"
            )

    def _send_raw(self, packet: Packet) -> None:
        self._send_batch([packet])

    def _send_batch(self, packets: list[Packet]) -> None:
        try:
            self._parent.send(encode_batch(packets))
            return
        except SendQueueFull as exc:
            # The payload outgrew the link's bounded send queue.  With
            # chunking enabled oversized sends are split before they get
            # here, so point at the knob instead of just failing.
            raise SendQueueFull(
                f"{exc}; payload too large for the uplink's send-queue "
                f"bound — create the stream with chunk_bytes=<n> to split "
                f"large sends into pipeline fragments"
            ) from exc
        except ConnectionError:
            pass
        # The EOF that announces a crashed parent can be queued behind
        # data, so the first sign of death may be this send failing.
        # Repair (if configured) and retry the batch once on the new
        # edge before declaring the network down.
        if not self.shut_down and not self._repairing and self._repair_parent():
            try:
                self._parent.send(encode_batch(packets))
                return
            except ConnectionError:
                pass
        self._mark_shutdown()
        raise NetworkShutdown(
            f"back-end {self.rank}: connection closed"
        ) from None

    def __repr__(self) -> str:
        return f"BackEnd(rank={self.rank}, name={self.name!r})"
