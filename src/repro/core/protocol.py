"""Wire protocol constants and control-message helpers.

MRNet multiplexes everything over the tree links.  We reserve stream
id 0 as the *control stream*; packets on it drive network life-cycle:

* ``TAG_ENDPOINT_REPORT`` (upstream) — "the root of that sub-tree
  sends a report to its parent containing the end-points accessible
  via that sub-tree" (§2.5).  Payload ``"%aud"``: back-end ranks.
* ``TAG_NEW_STREAM`` (downstream) — stream creation announcement.
  Payload ``"%ud %aud %d %d %lf %d %d %d"``: stream id, endpoint
  ranks, synchronization filter id, upstream transformation filter id,
  synchronization timeout (seconds; meaningful for TimeOut sync),
  downstream transformation filter id, chunk size in bytes (0 =
  chunking disabled), and wave pattern (see *Chunked waves* below).
* ``TAG_NEW_STREAMS`` (downstream) — *batched* stream creation: one
  packet announces many streams in a single control wave.  Payload
  ``"%s"``: a JSON document with ``"g"`` (deduplicated communicator
  rank lists) and ``"s"`` (per-stream field tuples referencing a
  group by index), so a thousand streams over one communicator ship
  its rank list once.  Nodes register the announcements *lazily* and
  instantiate a stream's filter state on its first data packet.
* ``TAG_CLOSE_STREAM`` (downstream) — payload ``"%ud"``: stream id.
* ``TAG_SHUTDOWN`` (downstream) — tears the tree down.
* ``TAG_HEARTBEAT`` (both directions) — liveness probe, consumed at
  the first hop; payload ``"%ud"``: a per-sender sequence number.
  Heartbeats let a node detect a *wedged* peer — one whose TCP
  connection is still open but whose loop stopped processing — which
  EOF detection alone can never see.
* ``TAG_RANKS_CHANGED`` (upstream) — a stream's wave membership
  changed at some node (a child link died or an orphan was adopted).
  Payload ``"%ud %ud %aud %aud"``: stream id, the emitting node's
  membership epoch after the change, ranks lost, ranks gained.  The
  front-end surfaces these so a tool can distinguish "sum over 1023
  ranks" from "sum over 1024".
* ``TAG_STATS_REQUEST`` (downstream) — the front-end asks every
  internal node for its metrics registry.  Payload ``"%ud"``: a
  request id echoed in replies, letting the front-end discard stale
  replies from an earlier gather.
* ``TAG_STATS_REPLY`` (upstream) — one node's answer.  Payload
  ``"%ud %s"``: the echoed request id and a JSON document in the
  ``mrnet.stats/3`` schema (see :mod:`repro.obs.snapshot`).  Replies
  are relayed hop by hop toward the root on the ordinary upstream
  control path, through the same packet buffers that batch tool data.
* ``TAG_ADDR_REPORT`` (upstream) — parallel recursive instantiation
  (paper §2.5, mode 1): an internal process announces its listener
  address to the front-end so back-end attach points can be resolved
  without the launcher reading each child's stdout.  Payload
  ``"%s %s %ud"``: the node's topology label, listener host, listener
  port.  Reports relay hop by hop like any upstream control packet.
* ``TAG_JOIN`` (upstream) — elastic membership: a back-end attached to
  a *running* network asks to enter existing streams at the next
  wave-epoch boundary.  Payload ``"%ud %aud"``: the joining rank and
  the stream ids it enters.  Every node on the path to the root adds
  the rank to those streams' endpoint sets, splices the carrying link
  in with joining (grace) semantics, fires ``RanksChanged`` with the
  rank *gained*, and relays the packet upward.
* ``TAG_LEAVE`` (upstream) — a back-end detaches voluntarily.  Payload
  ``"%ud"``: the leaving rank.  Nodes retire the rank from every
  stream at a wave-epoch boundary (queued contributions still ride
  along — leaving drains, it does not abort), fire ``RanksChanged``
  with the rank *lost*, and treat the subsequent link EOF as announced
  rather than as a failure.
* ``TAG_WAVE_ACK`` (downstream, link-local) — crash-consistent waves:
  a parent acknowledges consumption of a child's output wave so the
  child can prune its bounded retransmit history.  Payload
  ``"%ud %ud"``: stream id, highest consumed wave sequence.
* ``TAG_WAVE_NACK`` (downstream, link-local) — a parent observed a gap
  in a child's wave sequence and asks for retransmission.  Payload
  ``"%ud %ud"``: stream id, first missing wave sequence.  The child
  re-sends whatever its bounded history still holds from that
  sequence on; sequences aged out of the history are simply skipped
  (the parent's reassembler realigns on the next complete wave).
* ``TAG_CHECKPOINT`` (upstream, one hop) — periodic filter-state
  checkpoint.  Payload ``"%ud %ud %s"``: stream id, the sender's
  output-wave sequence at capture time, and a JSON document holding
  the sender's transformation-filter state and per-source wave
  watermarks.  The parent *stores* the checkpoint (it does not relay
  it); if the sender later dies and its orphans re-home here, the
  stored watermarks seed duplicate suppression and the filter state
  lets the adopter resume the dead node's partial reductions.

Application packets use non-negative tags; tags below
``FIRST_APP_TAG`` are reserved for the protocol.

Chunked waves
-------------

Data-stream payloads above a stream's ``chunk_bytes`` threshold travel
as *pipeline fragments*: sub-packets on the same (non-control) stream
carrying the reserved ``TAG_CHUNK`` tag.  A chunk's value tuple is the
original packet's values with array fields sliced, prefixed by the
framing fields of :data:`~repro.core.chunking.CHUNK_PREFIX_FMT`::

    (wave_id, chunk_index, n_chunks, original_tag, *sliced values)

``TAG_CHUNK`` is negative but never a *control* tag: control detection
is ``stream_id == CONTROL_STREAM_ID``, so chunks route through the
ordinary data plane.  See :mod:`repro.core.chunking` for the codec.

``TAG_NEW_STREAM`` carries two trailing fields for this machinery:
``chunk_bytes`` (0 disables chunking) and ``wave_pattern`` (one of
:data:`WAVE_REDUCE`, :data:`WAVE_REDUCE_TO_ALL`, :data:`WAVE_DUAL_ROOT`).
Parsers pad defaults for the historical six-field announcement so
mixed-version trees interoperate.
"""

from __future__ import annotations

import json
from typing import List, Sequence, Tuple

from .packet import Packet

__all__ = [
    "CONTROL_STREAM_ID",
    "FIRST_STREAM_ID",
    "TAG_ENDPOINT_REPORT",
    "TAG_NEW_STREAM",
    "TAG_CLOSE_STREAM",
    "TAG_SHUTDOWN",
    "TAG_HEARTBEAT",
    "TAG_RANKS_CHANGED",
    "TAG_STATS_REQUEST",
    "TAG_STATS_REPLY",
    "TAG_ADDR_REPORT",
    "TAG_JOIN",
    "TAG_LEAVE",
    "TAG_WAVE_ACK",
    "TAG_WAVE_NACK",
    "TAG_CHECKPOINT",
    "TAG_NEW_STREAMS",
    "TAG_CHUNK",
    "FIRST_APP_TAG",
    "WAVE_REDUCE",
    "WAVE_REDUCE_TO_ALL",
    "WAVE_DUAL_ROOT",
    "WAVE_PATTERNS",
    "FMT_ENDPOINT_REPORT",
    "FMT_NEW_STREAM",
    "FMT_CLOSE_STREAM",
    "FMT_HEARTBEAT",
    "FMT_RANKS_CHANGED",
    "FMT_STATS_REQUEST",
    "FMT_STATS_REPLY",
    "FMT_ADDR_REPORT",
    "FMT_JOIN",
    "FMT_LEAVE",
    "FMT_WAVE_ACK",
    "FMT_WAVE_NACK",
    "FMT_CHECKPOINT",
    "FMT_NEW_STREAMS",
    "make_endpoint_report",
    "make_new_stream",
    "make_close_stream",
    "make_shutdown",
    "make_heartbeat",
    "make_ranks_changed",
    "make_stats_request",
    "make_stats_reply",
    "make_addr_report",
    "make_join",
    "make_leave",
    "make_wave_ack",
    "make_wave_nack",
    "make_checkpoint",
    "make_new_streams",
    "parse_new_stream",
    "parse_new_streams",
    "parse_ranks_changed",
    "parse_stats_request",
    "parse_stats_reply",
    "parse_addr_report",
    "parse_join",
    "parse_leave",
    "parse_wave_ack",
    "parse_wave_nack",
    "parse_checkpoint",
]

CONTROL_STREAM_ID = 0
FIRST_STREAM_ID = 1

TAG_ENDPOINT_REPORT = -1
TAG_NEW_STREAM = -2
TAG_CLOSE_STREAM = -3
TAG_SHUTDOWN = -4
TAG_HEARTBEAT = -5
TAG_RANKS_CHANGED = -6
TAG_STATS_REQUEST = -7
TAG_STATS_REPLY = -8
TAG_ADDR_REPORT = -9
TAG_JOIN = -10
TAG_LEAVE = -11
TAG_WAVE_ACK = -12
TAG_WAVE_NACK = -13
TAG_CHECKPOINT = -14
TAG_NEW_STREAMS = -15

#: Reserved tag marking a pipeline fragment on a *data* stream.  Not a
#: control tag — chunks never ride stream 0 — but kept below
#: ``FIRST_APP_TAG`` so it can never collide with an application tag.
TAG_CHUNK = -16

FIRST_APP_TAG = 100

#: Wave patterns (``TAG_NEW_STREAM`` trailing field).  ``WAVE_REDUCE``
#: is the classic upstream reduction; ``WAVE_REDUCE_TO_ALL`` turns the
#: reduced result around at the root and broadcasts it back down the
#: same stream; ``WAVE_DUAL_ROOT`` additionally alternates the
#: down-broadcast fan-out order per chunk (Träff's dual-root schedule
#: approximated on a single tree — see docs/architecture.md).
WAVE_REDUCE = 0
WAVE_REDUCE_TO_ALL = 1
WAVE_DUAL_ROOT = 2
WAVE_PATTERNS = (WAVE_REDUCE, WAVE_REDUCE_TO_ALL, WAVE_DUAL_ROOT)

FMT_ENDPOINT_REPORT = "%aud"
FMT_NEW_STREAM = "%ud %aud %d %d %lf %d %d %d"
FMT_CLOSE_STREAM = "%ud"
FMT_SHUTDOWN = "%d"
FMT_HEARTBEAT = "%ud"
FMT_RANKS_CHANGED = "%ud %ud %aud %aud"
FMT_STATS_REQUEST = "%ud"
FMT_STATS_REPLY = "%ud %s"
FMT_ADDR_REPORT = "%s %s %ud"
FMT_JOIN = "%ud %aud"
FMT_LEAVE = "%ud"
FMT_WAVE_ACK = "%ud %ud"
FMT_WAVE_NACK = "%ud %ud"
FMT_CHECKPOINT = "%ud %ud %s"
FMT_NEW_STREAMS = "%s"


def make_endpoint_report(ranks: Sequence[int]) -> Packet:
    """Build an upstream endpoint report for *ranks*."""
    return Packet(
        CONTROL_STREAM_ID, TAG_ENDPOINT_REPORT, FMT_ENDPOINT_REPORT, (tuple(ranks),)
    )


def make_new_stream(
    stream_id: int,
    endpoints: Sequence[int],
    sync_filter_id: int,
    transform_filter_id: int,
    sync_timeout: float = 0.0,
    down_transform_filter_id: int = 0,
    chunk_bytes: int = 0,
    wave_pattern: int = WAVE_REDUCE,
) -> Packet:
    """Build the downstream stream-creation announcement.

    ``chunk_bytes`` of 0 disables chunking for the stream;
    ``wave_pattern`` is one of :data:`WAVE_PATTERNS`.
    """
    return Packet(
        CONTROL_STREAM_ID,
        TAG_NEW_STREAM,
        FMT_NEW_STREAM,
        (
            stream_id,
            tuple(endpoints),
            sync_filter_id,
            transform_filter_id,
            float(sync_timeout),
            down_transform_filter_id,
            int(chunk_bytes),
            int(wave_pattern),
        ),
    )


def parse_new_stream(
    packet: Packet,
) -> Tuple[int, Tuple[int, ...], int, int, float, int, int, int]:
    """Unpack a ``TAG_NEW_STREAM`` control packet.

    Tolerates the historical six-field announcement (pre-chunking
    peers) by padding ``chunk_bytes=0`` / ``wave_pattern=WAVE_REDUCE``.
    """
    fields = packet.unpack()
    stream_id, endpoints, sync_id, trans_id, timeout, down_id = fields[:6]
    chunk_bytes = fields[6] if len(fields) > 6 else 0
    wave_pattern = fields[7] if len(fields) > 7 else WAVE_REDUCE
    return (
        stream_id,
        endpoints,
        sync_id,
        trans_id,
        timeout,
        down_id,
        chunk_bytes,
        wave_pattern,
    )


def make_new_streams(
    groups: Sequence[Sequence[int]],
    streams: Sequence[Tuple[int, int, int, int, float, int, int, int]],
) -> Packet:
    """Build a *batched* downstream stream-creation announcement.

    One ``TAG_NEW_STREAMS`` packet announces many streams in a single
    control wave (the many-stream fast path behind
    ``Network.new_streams``).  *groups* is the deduplicated list of
    communicator endpoint sets (sorted rank sequences); each entry of
    *streams* is ``(stream_id, group_index, sync_filter_id,
    transform_filter_id, sync_timeout, down_transform_filter_id,
    chunk_bytes, wave_pattern)`` — the ``TAG_NEW_STREAM`` fields with
    the endpoint array replaced by an index into *groups*, so N
    streams over one communicator ship its rank list once.
    """
    doc = {
        "g": [list(g) for g in groups],
        "s": [list(s) for s in streams],
    }
    return Packet(
        CONTROL_STREAM_ID,
        TAG_NEW_STREAMS,
        FMT_NEW_STREAMS,
        (json.dumps(doc, separators=(",", ":")),),
    )


def parse_new_streams(
    packet: Packet,
) -> Tuple[
    List[Tuple[int, ...]],
    List[Tuple[int, int, int, int, float, int, int, int]],
]:
    """Unpack a ``TAG_NEW_STREAMS`` packet → (groups, stream specs)."""
    (blob,) = packet.unpack()
    doc = json.loads(blob)
    groups = [tuple(int(r) for r in g) for g in doc["g"]]
    streams = [
        (
            int(s[0]),
            int(s[1]),
            int(s[2]),
            int(s[3]),
            float(s[4]),
            int(s[5]),
            int(s[6]),
            int(s[7]),
        )
        for s in doc["s"]
    ]
    return groups, streams


def make_close_stream(stream_id: int) -> Packet:
    return Packet(CONTROL_STREAM_ID, TAG_CLOSE_STREAM, FMT_CLOSE_STREAM, (stream_id,))


def make_shutdown() -> Packet:
    return Packet(CONTROL_STREAM_ID, TAG_SHUTDOWN, FMT_SHUTDOWN, (0,))


def make_heartbeat(seq: int) -> Packet:
    """Build a liveness probe (consumed at the receiving hop)."""
    return Packet(CONTROL_STREAM_ID, TAG_HEARTBEAT, FMT_HEARTBEAT, (seq,))


def make_ranks_changed(
    stream_id: int,
    epoch: int,
    lost: Sequence[int] = (),
    gained: Sequence[int] = (),
) -> Packet:
    """Build the upstream wave-membership-change notification."""
    return Packet(
        CONTROL_STREAM_ID,
        TAG_RANKS_CHANGED,
        FMT_RANKS_CHANGED,
        (stream_id, epoch, tuple(lost), tuple(gained)),
    )


def parse_ranks_changed(
    packet: Packet,
) -> Tuple[int, int, Tuple[int, ...], Tuple[int, ...]]:
    """Unpack a ``TAG_RANKS_CHANGED`` control packet."""
    stream_id, epoch, lost, gained = packet.unpack()
    return stream_id, epoch, tuple(lost), tuple(gained)


def make_stats_request(request_id: int) -> Packet:
    """Build the downstream metrics-gather broadcast."""
    return Packet(
        CONTROL_STREAM_ID, TAG_STATS_REQUEST, FMT_STATS_REQUEST, (request_id,)
    )


def parse_stats_request(packet: Packet) -> int:
    """Unpack a ``TAG_STATS_REQUEST`` control packet → request id."""
    (request_id,) = packet.unpack()
    return request_id


def make_stats_reply(request_id: int, payload: str) -> Packet:
    """Build one node's upstream metrics reply.

    *payload* is the ``mrnet.stats/3`` JSON produced by
    :func:`repro.obs.snapshot.dumps_snapshot`.
    """
    return Packet(
        CONTROL_STREAM_ID, TAG_STATS_REPLY, FMT_STATS_REPLY, (request_id, payload)
    )


def parse_stats_reply(packet: Packet) -> Tuple[int, str]:
    """Unpack a ``TAG_STATS_REPLY`` control packet → (request id, JSON)."""
    request_id, payload = packet.unpack()
    return request_id, payload


def make_addr_report(label: str, host: str, port: int) -> Packet:
    """Build an internal node's upstream listener-address announcement."""
    return Packet(
        CONTROL_STREAM_ID, TAG_ADDR_REPORT, FMT_ADDR_REPORT, (label, host, port)
    )


def parse_addr_report(packet: Packet) -> Tuple[str, str, int]:
    """Unpack a ``TAG_ADDR_REPORT`` control packet → (label, host, port)."""
    label, host, port = packet.unpack()
    return label, host, port


def make_join(rank: int, stream_ids: Sequence[int]) -> Packet:
    """Build a joining back-end's upstream membership announcement."""
    return Packet(
        CONTROL_STREAM_ID, TAG_JOIN, FMT_JOIN, (rank, tuple(stream_ids))
    )


def parse_join(packet: Packet) -> Tuple[int, Tuple[int, ...]]:
    """Unpack a ``TAG_JOIN`` control packet → (rank, stream ids)."""
    rank, stream_ids = packet.unpack()
    return rank, tuple(stream_ids)


def make_leave(rank: int) -> Packet:
    """Build a leaving back-end's upstream detach announcement."""
    return Packet(CONTROL_STREAM_ID, TAG_LEAVE, FMT_LEAVE, (rank,))


def parse_leave(packet: Packet) -> int:
    """Unpack a ``TAG_LEAVE`` control packet → leaving rank."""
    (rank,) = packet.unpack()
    return rank


def make_wave_ack(stream_id: int, wave_seq: int) -> Packet:
    """Build a parent's downstream wave-consumption acknowledgement."""
    return Packet(CONTROL_STREAM_ID, TAG_WAVE_ACK, FMT_WAVE_ACK, (stream_id, wave_seq))


def parse_wave_ack(packet: Packet) -> Tuple[int, int]:
    """Unpack a ``TAG_WAVE_ACK`` control packet → (stream id, wave seq)."""
    stream_id, wave_seq = packet.unpack()
    return stream_id, wave_seq


def make_wave_nack(stream_id: int, wave_seq: int) -> Packet:
    """Build a parent's downstream retransmission request."""
    return Packet(
        CONTROL_STREAM_ID, TAG_WAVE_NACK, FMT_WAVE_NACK, (stream_id, wave_seq)
    )


def parse_wave_nack(packet: Packet) -> Tuple[int, int]:
    """Unpack a ``TAG_WAVE_NACK`` control packet → (stream id, wave seq)."""
    stream_id, wave_seq = packet.unpack()
    return stream_id, wave_seq


def make_checkpoint(stream_id: int, wave_seq: int, state_json: str) -> Packet:
    """Build a node's periodic filter-state checkpoint for its parent."""
    return Packet(
        CONTROL_STREAM_ID,
        TAG_CHECKPOINT,
        FMT_CHECKPOINT,
        (stream_id, wave_seq, state_json),
    )


def parse_checkpoint(packet: Packet) -> Tuple[int, int, str]:
    """Unpack a ``TAG_CHECKPOINT`` packet → (stream id, wave seq, JSON)."""
    stream_id, wave_seq, state_json = packet.unpack()
    return stream_id, wave_seq, state_json
