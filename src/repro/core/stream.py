"""Front-end stream handles (paper §2.1–2.2).

"A stream is a logical channel that connects the front-end to the
end-points of a communicator.  All tool-level communication via MRNet
uses streams."  A :class:`Stream` is the front-end's handle: ``send``
multicasts downstream to the stream's communicator; ``recv`` blocks
for the next aggregated upstream packet.

The front-end is single-threaded by design (tool front-ends drive
MRNet from their event loop), so ``recv`` pumps the network while it
waits; packets for *other* streams arriving meanwhile are queued on
those streams, supporting the paper's "multiple simultaneous,
asynchronous collective communication operations".
"""

from __future__ import annotations

import time
from typing import Any, Optional, Tuple

from .communicator import Communicator
from .packet import Packet
from .protocol import FIRST_APP_TAG

__all__ = ["Stream", "StreamClosed"]


class StreamClosed(RuntimeError):
    """Raised when using a stream after it was closed."""


class Stream:
    """A logical data channel between the front-end and a communicator."""

    def __init__(self, network, stream_id: int, communicator: Communicator):
        self._network = network
        self.stream_id = stream_id
        self.communicator = communicator
        self.closed = False

    # -- sending -------------------------------------------------------------

    def send(self, fmt: str, *values: Any, tag: int = FIRST_APP_TAG) -> None:
        """Multicast a packet downstream to every stream end-point.

        Mirrors Figure 2's ``stream->send("%d", FLOAT_MAX_INIT)``.
        """
        self._check_open()
        packet = Packet(self.stream_id, tag, fmt, values)
        self._network._send_downstream(packet)

    def send_packet(self, packet: Packet) -> None:
        """Multicast a pre-built packet (must carry this stream's id)."""
        self._check_open()
        if packet.stream_id != self.stream_id:
            raise ValueError(
                f"packet stream id {packet.stream_id} != {self.stream_id}"
            )
        self._network._send_downstream(packet)

    # -- receiving ---------------------------------------------------------

    def recv(self, timeout: Optional[float] = None) -> Packet:
        """Block for the next upstream (aggregated) packet on this stream.

        Raises ``TimeoutError`` if *timeout* seconds elapse first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        return self._network._recv_on_stream(self.stream_id, deadline)

    def recv_values(self, timeout: Optional[float] = None) -> Tuple[Any, ...]:
        """Like :meth:`recv` but returns the packet's values directly."""
        return self.recv(timeout).unpack()

    def try_recv(self) -> Optional[Packet]:
        """Non-blocking receive: the next packet, or ``None``."""
        return self._network._try_recv_on_stream(self.stream_id)

    @property
    def membership_epoch(self) -> int:
        """The front-end's wave-membership epoch for this stream.

        Starts at 0 and bumps on every membership change at the root
        (a child link died, an orphan was adopted); lets a tool
        correlate an aggregate with the rank set that produced it.
        """
        manager = self._network._core.streams.get(self.stream_id)
        return manager.membership_epoch if manager is not None else 0

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Tear the stream down across the network (idempotent)."""
        if not self.closed:
            self.closed = True
            self._network._close_stream(self.stream_id)

    def _check_open(self) -> None:
        if self.closed:
            raise StreamClosed(f"stream {self.stream_id} is closed")

    def __enter__(self) -> "Stream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return (
            f"Stream(id={self.stream_id}, endpoints={len(self.communicator)}, "
            f"{state})"
        )
