"""Front-end stream handles (paper §2.1–2.2).

"A stream is a logical channel that connects the front-end to the
end-points of a communicator.  All tool-level communication via MRNet
uses streams."  A :class:`Stream` is the front-end's handle: ``send``
multicasts downstream to the stream's communicator; ``recv`` blocks
for the next aggregated upstream packet.

The front-end is single-threaded by design (tool front-ends drive
MRNet from their event loop), so ``recv`` pumps the network while it
waits; packets for *other* streams arriving meanwhile are queued on
those streams, supporting the paper's "multiple simultaneous,
asynchronous collective communication operations".

Streams created with ``chunk_bytes`` split large array sends into
pipeline fragments (see :mod:`repro.core.chunking`) so multi-level
trees overlap their hops; streams created with a reduce-to-all wave
pattern additionally broadcast each reduced wave back down to every
back-end, and :meth:`Stream.allreduce` receives the front-end's copy.
"""

from __future__ import annotations

import time
from typing import Any, Optional, Tuple

from .chunking import split_packet
from .communicator import Communicator
from .packet import Packet
from .protocol import FIRST_APP_TAG, WAVE_DUAL_ROOT, WAVE_REDUCE, WAVE_REDUCE_TO_ALL

__all__ = ["Stream", "StreamClosed"]


class StreamClosed(RuntimeError):
    """Raised when using a stream after it was closed."""


class Stream:
    """A logical data channel between the front-end and a communicator.

    ``chunk_bytes`` (``None`` disables chunking — byte-exact legacy
    behaviour) and ``pattern`` (a wave pattern from
    :mod:`repro.core.protocol`) are fixed at creation by
    :meth:`repro.core.network.Network.new_stream`.
    """

    def __init__(
        self,
        network,
        stream_id: int,
        communicator: Communicator,
        chunk_bytes: Optional[int] = None,
        pattern: int = WAVE_REDUCE,
    ):
        self._network = network
        self.stream_id = stream_id
        self.communicator = communicator
        self.chunk_bytes = chunk_bytes
        self.pattern = pattern
        self.closed = False
        self._send_wave = 0  # wave ids for front-end-originated fragments

    # -- sending -------------------------------------------------------------

    def send(self, fmt: str, *values: Any, tag: int = FIRST_APP_TAG) -> None:
        """Multicast a packet downstream to every stream end-point.

        Mirrors Figure 2's ``stream->send("%d", FLOAT_MAX_INIT)``.
        Array payloads above the stream's ``chunk_bytes`` are split
        into pipeline fragments that multicast hop-overlapped.
        """
        self._check_open()
        packet = Packet(self.stream_id, tag, fmt, values)
        self._send_maybe_chunked(packet)

    def send_packet(self, packet: Packet) -> None:
        """Multicast a pre-built packet (must carry this stream's id)."""
        self._check_open()
        if packet.stream_id != self.stream_id:
            raise ValueError(
                f"packet stream id {packet.stream_id} != {self.stream_id}"
            )
        self._send_maybe_chunked(packet)

    def _send_maybe_chunked(self, packet: Packet) -> None:
        if self.chunk_bytes:
            chunks = split_packet(packet, self.chunk_bytes, self._send_wave)
            if chunks is not None:
                self._send_wave += 1
                for chunk in chunks:
                    self._network._send_downstream(chunk)
                return
        self._network._send_downstream(packet)

    # -- receiving ---------------------------------------------------------

    def recv(self, timeout: Optional[float] = None) -> Packet:
        """Block for the next upstream (aggregated) packet on this stream.

        Raises ``TimeoutError`` if *timeout* seconds elapse first.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        return self._network._recv_on_stream(self.stream_id, deadline)

    def recv_values(self, timeout: Optional[float] = None) -> Tuple[Any, ...]:
        """Like :meth:`recv` but returns the packet's values directly."""
        return self.recv(timeout).unpack()

    def try_recv(self) -> Optional[Packet]:
        """Non-blocking receive: the next packet, or ``None``."""
        return self._network._try_recv_on_stream(self.stream_id)

    # -- collectives ---------------------------------------------------------

    def allreduce(self, timeout: Optional[float] = None) -> Tuple[Any, ...]:
        """Receive the next reduce-to-all result at the front-end.

        Valid only on streams created with a reduce-to-all pattern
        (``WAVE_REDUCE_TO_ALL`` or ``WAVE_DUAL_ROOT``): every back-end
        contribution wave is reduced up the tree, and the result is
        both delivered here and broadcast back down the same stream to
        every back-end — the MPI ``Allreduce`` shape mapped onto the
        overlay (Träff's pipelined reduce-to-all).  Returns the reduced
        packet's values; raises ``TimeoutError`` after *timeout*
        seconds and ``StreamClosed`` on a plain-reduction stream.
        """
        if self.pattern not in (WAVE_REDUCE_TO_ALL, WAVE_DUAL_ROOT):
            raise StreamClosed(
                f"stream {self.stream_id} is not a reduce-to-all stream "
                f"(pattern={self.pattern})"
            )
        return self.recv_values(timeout)

    def scan(self, timeout: Optional[float] = None) -> Tuple[Any, ...]:
        """Receive the next prefix-scan result as a flat array.

        Convenience receive for ``TFILTER_SCAN`` streams: strips the
        filter's internal already-scanned flag and returns the running
        per-rank prefix values in back-end rank order (the tree
        formulation of ``MPI_Scan``).  On non-scan streams it simply
        returns the packet's values unchanged.
        """
        values = self.recv_values(timeout)
        if len(values) == 2 and values[0] == 1 and isinstance(values[1], tuple):
            return values[1]
        return values

    # -- delivery sinks ------------------------------------------------------

    def set_sink(self, sink) -> None:
        """Deliver this stream's results to *sink* instead of queuing.

        *sink* is called with each fully reassembled upstream
        :class:`Packet`, synchronously on the pumping thread.  While a
        sink is installed :meth:`recv`/:meth:`try_recv` see nothing;
        already-queued packets are flushed through the sink on
        installation.  The serving gateway uses this to demultiplex a
        shared stream across many client sessions.
        """
        self._check_open()
        self._network.set_stream_sink(self.stream_id, sink)

    def clear_sink(self) -> None:
        """Remove the delivery sink; results queue for ``recv`` again."""
        self._network.clear_stream_sink(self.stream_id)

    def set_wave_hooks(self, on_wave_complete=None, on_membership_change=None):
        """Install front-end stream-manager hooks for this stream.

        ``on_wave_complete(stream_id, epoch)`` fires each time the
        root's synchronization filter releases a wave;
        ``on_membership_change(stream_id, epoch)`` fires on every
        membership-epoch bump.  Both run synchronously on the pumping
        thread.  Pass ``None`` to leave a hook unchanged; use
        :meth:`clear_wave_hooks` to remove them.
        """
        # stream_state() materializes bulk-created (lazy) streams so
        # hooks can install before the first data packet arrives.
        manager = self._network._core.stream_state(self.stream_id)
        if manager is None:
            raise StreamClosed(
                f"stream {self.stream_id} has no front-end manager"
            )
        if on_wave_complete is not None:
            manager.on_wave_complete = on_wave_complete
        if on_membership_change is not None:
            manager.on_membership_change = on_membership_change

    def clear_wave_hooks(self) -> None:
        """Remove any stream-manager hooks installed by :meth:`set_wave_hooks`."""
        # Lazy (not-yet-materialized) streams cannot have hooks —
        # installing one materializes — so .get() suffices here.
        manager = self._network._core.streams.get(self.stream_id)
        if manager is not None:
            manager.on_wave_complete = None
            manager.on_membership_change = None

    @property
    def membership_epoch(self) -> int:
        """The front-end's wave-membership epoch for this stream.

        Starts at 0 and bumps on every membership change at the root
        (a child link died, an orphan was adopted); lets a tool
        correlate an aggregate with the rank set that produced it.
        """
        manager = self._network._core.streams.get(self.stream_id)
        return manager.membership_epoch if manager is not None else 0

    # -- lifecycle ------------------------------------------------------------

    def close(self) -> None:
        """Tear the stream down across the network (idempotent)."""
        if not self.closed:
            self.closed = True
            self._network._close_stream(self.stream_id)

    def _check_open(self) -> None:
        if self.closed:
            raise StreamClosed(f"stream {self.stream_id} is closed")

    def __enter__(self) -> "Stream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self.closed else "open"
        return (
            f"Stream(id={self.stream_id}, endpoints={len(self.communicator)}, "
            f"{state})"
        )
