"""The front-end Network object and tree instantiation (paper §2.2, §2.5).

``Network`` is the tool front-end's entry point, mirroring Figure 2's
``front_end_main``::

    net = Network(config_file)                     # or a TopologySpec
    comm = net.get_broadcast_communicator()
    stream = net.new_stream(comm, transform=TFILTER_MAX, ...)
    stream.send("%d", FLOAT_MAX_INIT)
    (result,) = stream.recv_values()

Instantiation builds the whole process tree from the topology: one
:class:`~repro.core.commnode.CommNode` thread per internal slot, one
:class:`~repro.core.backend.BackEnd` per leaf slot, channels along the
tree edges.  Back-end ranks are the leaves' left-to-right positions.

Two instantiation modes (paper §2.5):

* **Mode 1** (``auto_backends=True``, default): MRNet "creates the
  internal and back-end processes" — every back-end object is built
  and connected immediately; reach them via :attr:`Network.backends`.
* **Mode 2** (``auto_backends=False``): only the internal tree is
  created; a process-management system starts the tool back-ends,
  modelled by calling :meth:`Network.attach_backend` later with "the
  information needed to connect to the MRNet internal process tree"
  already wired into the reserved leaf slot.

The front-end is passive: API calls pump its :class:`NodeCore`.  All
front-end methods must be called from one thread.
"""

from __future__ import annotations

import json
import os
import queue
import threading
import time
from collections import deque
from pathlib import Path
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

from ..filters.registry import (
    SFILTER_WAITFORALL,
    TFILTER_NULL,
    FilterRegistry,
    default_registry,
)
from ..obs.metrics import prometheus_text
from ..obs.snapshot import STATS_SCHEMA, loads_snapshot
from ..obs.tracing import TraceRecorder, to_chrome_trace
from ..topology.parser import parse_config, parse_config_file
from ..topology.spec import TopologyNode, TopologySpec
from ..transport.channel import Channel, ChannelEnd, Inbox
from .backend import BackEnd
from .commnode import CommNode, NodeCore
from .communicator import Communicator
from .failure import (
    DEGRADE,
    FAIL_FAST,
    POLICIES,
    REPAIR,
    HeartbeatConfig,
    RanksChanged,
    RecoveryCoordinator,
)
from .chunking import ChunkReassembler
from .packet import Packet
from .protocol import (
    FIRST_STREAM_ID,
    TAG_CHUNK,
    WAVE_DUAL_ROOT,
    WAVE_PATTERNS,
    WAVE_REDUCE,
    WAVE_REDUCE_TO_ALL,
    make_close_stream,
    make_new_stream,
    make_new_streams,
    make_shutdown,
    make_stats_request,
    parse_addr_report,
    parse_leave,
    parse_ranks_changed,
    parse_stats_reply,
)
from .stream import Stream

__all__ = ["Network", "NetworkError", "NetworkDownError"]


class NetworkError(RuntimeError):
    """Raised for network life-cycle errors."""


class NetworkDownError(NetworkError):
    """The network is unusable: shut down, or poisoned under
    ``fail_fast`` by an observed failure.

    ``cause`` carries a description of the *first* root-cause failure
    (e.g. which link died), so a tool's error report can name the
    culprit rather than the symptom.
    """

    def __init__(self, message: str, cause: Optional[str] = None):
        if cause:
            message = f"{message} (first failure: {cause})"
        super().__init__(message)
        self.cause = cause


class _FrontEndCore(NodeCore):
    """The root NodeCore: upstream outputs land in per-stream queues."""

    def __init__(self, registry: FilterRegistry, expected_ranks: int, clock):
        super().__init__("front-end", registry, expected_ranks, None, clock)
        self.obs_rank = 0
        self.stream_queues: Dict[int, Deque[Packet]] = {}
        self.default_queue: Deque[Packet] = deque()
        # Optional per-stream delivery sinks: when a callable is
        # registered for a stream, reassembled upstream packets are
        # handed to it instead of the delivery queue.  The serving
        # gateway (:mod:`repro.gateway`) uses this to demultiplex
        # shared-stream results to client sessions without a second
        # copy through the queue.
        self.delivery_sinks: Dict[int, Callable[[Packet], None]] = {}
        # Fault-tolerance bookkeeping surfaced through the Network API:
        # RANKS_CHANGED notifications (see Network.recovery_events) and
        # the first observed failure (fail_fast poisoning).
        self.recovery_events: List[RanksChanged] = []
        self.first_failure: Optional[str] = None
        # Ranks that announced a voluntary TAG_LEAVE: their lost
        # events are expected departures, not failures.
        self._left_ranks: set = set()
        # In-flight STATS_SNAPSHOT gathers: request id -> {node: metrics}.
        self.stats_replies: Dict[int, Dict[str, dict]] = {}
        # Recursive instantiation: internal nodes announce their
        # listener addresses up the tree (label -> (host, port)).
        self.addr_reports: Dict[str, Tuple[str, int]] = {}
        # Per-(stream, origin) fragment reassembly for local delivery:
        # chunked results are rebuilt into whole packets before a tool
        # ever sees them, keyed by origin because fragments relayed
        # from distinct back-ends may interleave at the root.
        self._delivery_reassemblers: Dict[Tuple[int, int], ChunkReassembler] = {}

    def _note_addr_report(self, packet: Packet) -> None:
        label, host, port = parse_addr_report(packet)
        self.addr_reports[label] = (host, port)

    def deliver_local(self, packet: Packet) -> None:
        """Root upstream sink: route to the stream's delivery queue.

        Reduce-to-all streams turn every arriving result around here —
        broadcast back down the same stream, fragment by fragment, so
        the down-multicast pipelines just like the up-reduction did.
        Fragments are also reassembled into whole packets for the
        tool-facing delivery queue.
        """
        manager = self.streams.get(packet.stream_id)
        if manager is not None and manager.wave_pattern in (
            WAVE_REDUCE_TO_ALL,
            WAVE_DUAL_ROOT,
        ):
            self._handle_data_down(packet)
        if packet.tag == TAG_CHUNK:
            key = (packet.stream_id, packet.origin_rank)
            ra = self._delivery_reassemblers.get(key)
            if ra is None:
                ra = self._delivery_reassemblers[key] = ChunkReassembler()
            whole = ra.add(packet)
            if whole is None:
                return
            packet = whole
        sink = self.delivery_sinks.get(packet.stream_id)
        if sink is not None:
            sink(packet.materialize())
            return
        self.stream_queues.get(packet.stream_id, self.default_queue).append(
            packet.materialize()
        )

    def _handle_leave(self, link_id: int, packet: Packet) -> None:
        # Record the voluntary departure before any lost event for
        # this rank (the handler's own, or a descendant's riding the
        # same link) is processed.
        self._left_ranks.add(parse_leave(packet))
        super()._handle_leave(link_id, packet)

    def _note_ranks_changed(self, packet: Packet) -> None:
        stream_id, epoch, lost, gained = parse_ranks_changed(packet)
        self.recovery_events.append(RanksChanged(stream_id, epoch, lost, gained))
        # A rank that rejoins sheds its "left" marker: a later loss of
        # the reused rank is a failure again.
        self._left_ranks.difference_update(gained)
        failed = [r for r in lost if r not in self._left_ranks]
        if failed:
            # Deep failures reach the root only as membership loss
            # (their EOF happened hops away); under fail_fast this is
            # the poisoning signal.  A voluntary TAG_LEAVE always
            # precedes its own lost event, so clean departures never
            # land here.
            self._note_failure(f"ranks {failed} lost from stream {stream_id}")
        # Membership changes fire both directions: besides surfacing
        # the event to the tool, flood it back down so surviving
        # back-ends observe joins/leaves/failures too (they record
        # them in ``BackEnd.membership_events``).
        self.handle_control_down(packet)

    def _note_stats_reply(self, packet: Packet) -> None:
        request_id, payload = parse_stats_reply(packet)
        doc = loads_snapshot(payload)
        if doc is None:
            return
        bucket = self.stats_replies.get(request_id)
        if bucket is not None:
            bucket[str(doc["node"])] = doc["metrics"]

    def _note_failure(self, description: str) -> None:
        if self.first_failure is None:
            self.first_failure = description

    def _handle_link_closed(self, link_id: int) -> None:
        if link_id not in self._announced_leaving:
            # A voluntary leave's EOF is expected, not a failure — it
            # must not poison a fail_fast network.
            self._note_failure(f"link {link_id} closed at front-end")
        super()._handle_link_closed(link_id)


def _read_listening_line(proc, timeout: float, drains=None) -> Optional[str]:
    """Read a child's ``LISTENING <port>`` announcement with a deadline.

    A child that dies before announcing (bad import, port exhaustion)
    must not hang instantiation on a pipe read forever — ``None``
    comes back on timeout, EOF, or child death, and the caller raises
    with the captured stderr.  Reads are single bytes so nothing past
    the announcement line is consumed (the selector drain owns the
    pipe afterwards).  ``drains`` is polled while waiting so a child
    chatty on stderr cannot wedge against a full pipe mid-bootstrap.
    """
    import select

    fd = proc.stdout.fileno()
    deadline = time.monotonic() + timeout
    buf = bytearray()
    while True:
        remaining = deadline - time.monotonic()
        if remaining <= 0:
            return None
        try:
            ready, _, _ = select.select([fd], [], [], min(remaining, 0.1))
        except (OSError, ValueError):
            return None
        if drains is not None:
            drains.poll()
        if not ready:
            if proc.poll() is not None:
                return None
            continue
        chunk = os.read(fd, 1)
        if not chunk:
            return None
        if chunk == b"\n":
            return buf.decode("ascii", "replace").strip()
        buf += chunk


class _PipeDrains:
    """Selector-registered non-blocking drains for child process pipes.

    Replaces the old thread-per-pipe drain: every registered child
    stdout/stderr pipe is set non-blocking and emptied from the
    front-end's pump (``poll``), retaining a bounded line tail for
    start-up diagnostics.  Without draining, a child that logs after
    bootstrap eventually fills the pipe buffer and blocks inside its
    event loop; with this, no thread is spent on it — a network with
    N child processes costs zero drain threads instead of up to 2N.
    """

    def __init__(self):
        import selectors

        self._selector = selectors.DefaultSelector()
        self._n = 0

    def __bool__(self) -> bool:
        return self._n > 0

    def add(self, stream, tail: Deque[str], name: str) -> None:
        """Register one child pipe; *tail* receives its trailing lines."""
        os.set_blocking(stream.fileno(), False)
        self._selector.register(stream, 1, (stream, tail, bytearray(), name))
        self._n += 1

    def poll(self) -> None:
        """Drain every readable registered pipe (non-blocking)."""
        if not self._n:
            return
        try:
            events = self._selector.select(0)
        except OSError:
            return
        for key, _ in events:
            stream, tail, buf, _name = key.data
            eof = False
            while True:
                try:
                    chunk = os.read(stream.fileno(), 65536)
                except (BlockingIOError, InterruptedError):
                    break
                except (OSError, ValueError):
                    eof = True
                    break
                if not chunk:
                    eof = True
                    break
                buf += chunk
            self._take_lines(buf, tail)
            if eof:
                if buf:
                    tail.append(bytes(buf).decode("utf-8", "replace").rstrip())
                    del buf[:]
                self._drop(stream)

    @staticmethod
    def _take_lines(buf: bytearray, tail: Deque[str]) -> None:
        while True:
            i = buf.find(b"\n")
            if i < 0:
                return
            line = bytes(buf[:i])
            del buf[: i + 1]
            tail.append(line.decode("utf-8", "replace").rstrip())

    def _drop(self, stream) -> None:
        try:
            self._selector.unregister(stream)
            self._n -= 1
        except (KeyError, ValueError, OSError):
            pass
        try:
            stream.close()
        except Exception:
            pass

    def close(self) -> None:
        """Final drain, then release every pipe and the selector."""
        self.poll()
        for key in list(self._selector.get_map().values()):
            self._drop(key.data[0])
        self._selector.close()


class _LeafSlot:
    """A reserved attachment point for one back-end (mode 2 support).

    With in-process transports the channel to the parent is pre-wired
    (``parent_end``); with the process transport only the parent's TCP
    address is known and the connection is made at attach time.
    """

    def __init__(
        self,
        rank: int,
        label: str,
        parent_end: Optional[ChannelEnd] = None,
        inbox: Optional[Inbox] = None,
        parent_addr: Optional[tuple] = None,
        shm: bool = False,
    ):
        self.rank = rank
        self.label = label
        self.parent_end = parent_end
        self.inbox = inbox
        self.parent_addr = parent_addr
        self.shm = shm  # offer the shared-memory upgrade at attach
        self.backend: Optional[BackEnd] = None
        self.topo_key: Optional[tuple] = None  # set for thread-hosted nets
        self.claimed = False  # attach_backend in flight (thread safety)

    def connect(self) -> tuple:
        """Materialize (parent_end, inbox) for this slot.

        TCP attachment retries with capped exponential backoff: one
        long blocking connect would stall the whole instantiation on a
        parent that is still coming up, and a parent that never comes
        up surfaces as an
        :class:`~repro.core.failure.InstantiationError` naming the
        unreachable address instead of a bare socket timeout.
        """
        if self.parent_end is not None:
            return self.parent_end, self.inbox
        from ..transport.tcp import tcp_connect_retry

        self.inbox = Inbox()
        self.parent_end = tcp_connect_retry(
            self.parent_addr, self.inbox, attempts=6, timeout=5.0,
            shm=self.shm,
        )
        return self.parent_end, self.inbox


class Network:
    """A live MRNet network instantiation rooted at this front-end."""

    PUMP_QUANTUM = 0.005

    def __init__(
        self,
        topology: TopologySpec | str | Path,
        registry: Optional[FilterRegistry] = None,
        auto_backends: bool = True,
        startup_timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
        transport: str = "local",
        filter_specs: Optional[List[tuple]] = None,
        io_mode: str = "eventloop",
        policy: str = DEGRADE,
        heartbeat_interval: float = 0.0,
        heartbeat_miss_threshold: int = 3,
        checkpoint_interval: float = 0.0,
        trace: bool = False,
        instantiation: str = "recursive",
        shm: str = "auto",
        spawn: str = "fork",
        colocate: bool = False,
        filter_workers: int = 0,
    ):
        """Instantiate the network.

        ``transport`` selects how tree edges move bytes and where
        internal processes live:

        * ``"local"`` — comm-node threads, in-process mailboxes (default);
        * ``"tcp"`` — comm-node threads, framed loopback sockets;
        * ``"process"`` — each internal process is a separate
          ``mrnet_commnode`` OS process (the paper's architecture),
          connected over TCP.  Custom filters must then be supplied as
          ``filter_specs=[(path, func_name[, fmt]), ...]`` so every
          process loads them in the same order (the shared-object
          shipping model of §2.4); they are also loaded into this
          front-end's registry, ids assigned in list order.

        ``io_mode`` is ``"eventloop"``: one selector loop per comm
        node — a TCP comm node owns all its sockets with a single
        thread.  The front-end and back-ends are passive.  (The legacy
        ``"threads"`` inbox-polling driver, deprecated in PR 7, has
        been removed; passing it raises ``NetworkError``.)

        ``policy`` selects what a process failure means (see
        :mod:`repro.core.failure`): ``"fail_fast"`` poisons the
        network on the first failure, ``"degrade"`` (default) shrinks
        the tree and reconfigures in-flight waves over the survivors,
        ``"repair"`` additionally re-attaches orphans to their
        grandparent.  Repair covers every transport: thread-hosted
        trees (including ``colocate=True``) heal through the
        in-process recovery coordinator, while ``transport="process"``
        internal nodes receive their ancestor addresses at spawn time
        and re-dial the nearest live one on parent death.
        ``heartbeat_interval`` > 0 enables liveness probes between
        internal processes with the given period;
        ``heartbeat_miss_threshold`` intervals of total silence
        declare a peer dead.  ``checkpoint_interval`` > 0 makes every
        internal node periodically deposit per-stream filter-state
        checkpoints with its parent (see ``docs/fault_tolerance.md``),
        so an adopter can resume a dead node's partial reductions.

        ``trace=True`` attaches a Figure 3 span recorder to every
        thread-hosted process before the tree starts (equivalent to
        calling :meth:`start_trace` immediately); export with
        :meth:`trace_chrome_json`.

        The remaining parameters shape *process-transport* start-up
        (paper §2.5, Figure 5) and are ignored by thread-hosted
        transports:

        * ``instantiation="recursive"`` (default) hands each direct
          child of the front-end its whole subtree spec; every
          internal process then creates its own children, so the tree
          builds in O(depth) spawn rounds and back-end attach points
          arrive via ``TAG_ADDR_REPORT`` control packets.
          ``"sequential"`` restores the one-process-at-a-time
          front-end spawn loop (mode 1's serial strawman — the
          paper's Figure 7a baseline).
        * ``shm="auto"`` (default) upgrades links whose two endpoints
          share a *topology host* to the shared-memory ring transport
          (:mod:`repro.transport.shm`); with the default generators
          every process gets its own synthetic host, so nothing
          upgrades unless the topology expresses co-location.
          ``"off"`` keeps every link on TCP.  Negotiation failure
          always falls back to TCP transparently.
        * ``spawn="fork"`` (default) lets recursive instantiation
          ``os.fork()`` grandchildren from the already-imported
          interpreter; ``"popen"`` execs each one as a fresh
          ``mrnet_commnode`` with its subtree spec on the command
          line.

        ``colocate=True`` hosts every internal process of a
        ``transport="local"`` tree on ONE shared selector loop (a
        single ``colocated-host`` thread) instead of one thread per
        comm node; comm-to-comm edges become in-process
        :class:`~repro.transport.inproc.InprocLink` hand-offs.  For
        ``transport="process"`` it instead packs same-host subtree
        members into one ``mrnet_commnode`` process per topology host
        (recursive instantiation only).  ``filter_workers`` > 0 adds
        that many ``filter-worker`` threads to the shared loop so
        large synchronized-wave transformations run off-loop (see
        :class:`~repro.transport.workers.FilterWorkerPool`).
        """
        if transport not in ("local", "tcp", "process"):
            raise NetworkError(f"unknown transport {transport!r}")
        if trace and transport == "process":
            raise NetworkError(
                "trace=True requires a thread-hosted transport ('local' or "
                "'tcp'): process-transport span rings live in other "
                "address spaces"
            )
        if io_mode != "eventloop":
            raise NetworkError(
                f"unknown io_mode {io_mode!r}: the legacy 'threads' driver "
                "was removed one release after its PR-7 deprecation"
            )
        if policy not in POLICIES:
            raise NetworkError(f"unknown failure policy {policy!r}")
        if instantiation not in ("recursive", "sequential"):
            raise NetworkError(f"unknown instantiation {instantiation!r}")
        if shm not in ("auto", "off"):
            raise NetworkError(f"unknown shm mode {shm!r}")
        if spawn not in ("fork", "popen"):
            raise NetworkError(f"unknown spawn mode {spawn!r}")
        if colocate:
            if transport == "tcp":
                raise NetworkError(
                    "colocate=True requires transport 'local' or 'process': "
                    "thread-hosted TCP nodes already share the front-end "
                    "address space via channels"
                )
            if transport == "process" and instantiation != "recursive":
                raise NetworkError(
                    "colocate=True with transport='process' requires "
                    "instantiation='recursive' (subtree specs carry the "
                    "co-location grouping)"
                )
        if filter_workers < 0:
            raise NetworkError("filter_workers must be >= 0")
        self.colocate = colocate
        self.filter_workers = filter_workers
        self.transport = transport
        self.io_mode = io_mode
        self.policy = policy
        self.instantiation = instantiation
        self.shm = shm
        self.spawn = spawn
        self._startup_timeout = startup_timeout
        self.heartbeat = HeartbeatConfig(
            interval=heartbeat_interval, miss_threshold=heartbeat_miss_threshold
        )
        if checkpoint_interval < 0:
            raise NetworkError("checkpoint_interval must be >= 0")
        self.checkpoint_interval = checkpoint_interval
        self.topology = self._resolve_topology(topology)
        self.registry = registry if registry is not None else default_registry()
        self.filter_specs = [tuple(s) for s in (filter_specs or [])]
        self.filter_ids: List[int] = []
        for spec in self.filter_specs:
            path, func = spec[0], spec[1]
            fmt = spec[2] if len(spec) > 2 else None
            self.filter_ids.append(
                self.registry.load_filter_func(path, func, fmt)
            )
        self._clock = clock
        leaves = self.topology.leaves()
        self._core = _FrontEndCore(self.registry, len(leaves), clock)
        self._commnodes: List[CommNode] = []
        self._procs: List = []  # subprocess.Popen, process transport only
        self._host = None  # shared NodeHost, colocate=True local transport
        self._drains = _PipeDrains()  # child-pipe tails, process transport
        self._listener = None
        self._slots: Dict[int, _LeafSlot] = {}
        self._next_stream_id = FIRST_STREAM_ID
        self._streams: Dict[int, Stream] = {}
        self._down = False
        # Process-transport repair: orphans whose nearest live
        # ancestor is the front-end re-dial our listener; the pump
        # then polls it for late accepts (set after startup so the
        # bootstrap accepts stay blocking and counted).
        self._accept_repairs = transport == "process" and policy == REPAIR
        # attach_backend claim serialization (mode-2 callers may race
        # from several threads); the pump itself stays single-threaded.
        self._attach_lock = threading.Lock()
        self._home_thread = threading.get_ident()
        self._tracers: List[TraceRecorder] = []
        self._stats_seq = 0
        # Every transport gets a per-network recovery coordinator:
        # stats aggregation always, adoption brokering under the
        # repair policy, and parent selection for elastic joins.  The
        # process transport's internal nodes live in other address
        # spaces, so they are registered by listener address
        # (``register_remote``) and repaired by re-dialing; back-ends
        # always live in this process either way.
        self._recovery: Optional[RecoveryCoordinator] = RecoveryCoordinator(
            transport=transport, clock=clock
        )
        self._recovery.register_frontend(self.topology.root.key, self._core)
        # The front-end never emits probes itself (it is pumped only by
        # API calls, so probe cadence could not be guaranteed); it still
        # consumes probes from children and reacts to EOFs.
        self._core.configure_failure(
            policy=policy, recovery=self._recovery, topo_key=self.topology.root.key
        )
        try:
            if transport == "process":
                if instantiation == "recursive":
                    self._build_tree_recursive(leaves)
                else:
                    self._build_tree_process(leaves)
            else:
                self._build_tree(leaves)
            # Observability identities: the front-end is rank 0, comm
            # nodes take 1..N in construction order (process transport:
            # spawn order, passed on the command line).
            self._core.obs_rank = 0
            for i, node in enumerate(self._commnodes, start=1):
                node.core.obs_rank = i
            if trace:
                self.start_trace()
            for node in self._commnodes:
                node.start()
            if auto_backends:
                if (
                    transport == "process"
                    and instantiation == "recursive"
                    and len(self._slots) > 1
                ):
                    self._attach_all_backends()
                else:
                    for rank in sorted(self._slots):
                        self.attach_backend(rank)
                self.wait_for_ready(startup_timeout)
        except BaseException:
            # Failed startup must not leak threads/processes/sockets —
            # and a later shutdown() call on the half-built network
            # must be a safe no-op.
            try:
                self.shutdown(join_timeout=1.0)
            except Exception:
                pass
            raise

    # -- construction -----------------------------------------------------

    @staticmethod
    def _resolve_topology(topology) -> TopologySpec:
        if isinstance(topology, TopologySpec):
            return topology
        text = str(topology)
        if "=>" in text:
            return parse_config(text)
        return parse_config_file(text)

    def _build_tree(self, leaves: List[TopologyNode]) -> None:
        rank_of = {leaf.key: i for i, leaf in enumerate(leaves)}
        # Pre-create an inbox per process so channels can be wired
        # before the cores that own them exist.
        inboxes: Dict[Tuple[str, int], Inbox] = {self.topology.root.key: self._core.inbox}
        for node in self.topology.nodes():
            if node is not self.topology.root:
                inboxes[node.key] = Inbox()

        # With the event loop, comm-node ends of TCP edges are raw
        # sockets owned by the node's selector — only the passive
        # processes (front-end, back-ends) keep reader-thread ends.
        selector_tcp = self.transport == "tcp"
        cores: Dict[Tuple[str, int], NodeCore] = {self.topology.root.key: self._core}
        comms: Dict[Tuple[str, int], CommNode] = {}
        if self.colocate:
            comms = self._build_tree_colocated(rank_of, inboxes, cores)
            self._wire_fault_tolerance(comms, rank_of)
            return
        for node in self.topology.nodes():
            for child in node.children:
                subtree_leaves = sum(
                    1 for n in _iter_subtree(child) if n.is_leaf
                )
                if selector_tcp:
                    import socket as socket_mod

                    from ..transport.tcp import TcpChannelEnd, _alloc_link_id

                    sock_parent, sock_child = socket_mod.socketpair()
                    # Parent attach: the front-end stays inbox-driven
                    # (reader thread); a comm-node parent registers the
                    # raw socket with its own event loop.
                    parent_comm = comms.get(node.key)
                    if parent_comm is None:
                        cores[node.key].add_child(
                            TcpChannelEnd(
                                sock_parent, _alloc_link_id(), inboxes[node.key]
                            )
                        )
                    else:
                        parent_comm.add_child_socket(sock_parent)
                    if child.is_leaf:
                        rank = rank_of[child.key]
                        child_side = TcpChannelEnd(
                            sock_child, _alloc_link_id(), inboxes[child.key]
                        )
                        self._slots[rank] = _LeafSlot(
                            rank, child.label, child_side, inboxes[child.key]
                        )
                    else:
                        comm = CommNode(
                            child.label,
                            self.registry,
                            subtree_leaves,
                            parent_socket=sock_child,
                            clock=self._clock,
                            inbox=inboxes[child.key],
                        )
                        cores[child.key] = comm.core
                        comms[child.key] = comm
                        self._commnodes.append(comm)
                    continue
                if self.transport == "tcp":
                    from ..transport.tcp import tcp_pair

                    # A tcp end *receives* into the inbox it is built
                    # with: first end is the parent's.
                    parent_side, child_side = tcp_pair(
                        inboxes[node.key], inboxes[child.key]
                    )
                else:
                    channel = Channel(inboxes[node.key], inboxes[child.key])
                    # end_a sends toward the child; it is the parent's end.
                    parent_side, child_side = channel.end_a, channel.end_b
                owner = cores[node.key]
                owner.add_child(parent_side)
                if child.is_leaf:
                    rank = rank_of[child.key]
                    self._slots[rank] = _LeafSlot(
                        rank, child.label, child_side, inboxes[child.key]
                    )
                else:
                    comm = CommNode(
                        child.label,
                        self.registry,
                        subtree_leaves,
                        parent=child_side,
                        clock=self._clock,
                        inbox=inboxes[child.key],
                    )
                    cores[child.key] = comm.core
                    comms[child.key] = comm
                    self._commnodes.append(comm)

        self._wire_fault_tolerance(comms, rank_of)

    def _build_tree_colocated(
        self,
        rank_of: Dict[Tuple[str, int], int],
        inboxes: Dict[Tuple[str, int], Inbox],
        cores: Dict[Tuple[str, int], NodeCore],
    ) -> Dict[Tuple[str, int], "ColocatedCommNode"]:
        """Host every internal process on ONE shared selector loop.

        One ``NodeHost`` thread drives all comm-node cores; edges
        touching the passive front-end or back-ends stay in-process
        channels (their inboxes are drained by the shared loop /
        pumped by the attach protocol as usual), while comm-to-comm
        edges become :class:`~repro.transport.inproc.InprocLink`
        pairs — a send is a deque append, delivery happens on the
        next loop iteration, and the steady-state thread census for
        the whole tree is 1 (+ ``filter_workers``).
        """
        from .commnode import ColocatedCommNode, NodeHost

        host = self._host = NodeHost(
            clock=self._clock, workers=self.filter_workers
        )
        loop = host.loop
        comms: Dict[Tuple[str, int], ColocatedCommNode] = {}
        for node in self.topology.nodes():
            for child in node.children:
                parent_core = cores[node.key]
                if child.is_leaf:
                    channel = Channel(inboxes[node.key], inboxes[child.key])
                    parent_core.add_child(channel.end_a)
                    rank = rank_of[child.key]
                    self._slots[rank] = _LeafSlot(
                        rank, child.label, channel.end_b, inboxes[child.key]
                    )
                    continue
                subtree_leaves = sum(
                    1 for n in _iter_subtree(child) if n.is_leaf
                )
                if node is self.topology.root:
                    # The front-end is pumped by API calls, not the
                    # shared loop — keep its edges on inbox channels.
                    channel = Channel(inboxes[node.key], inboxes[child.key])
                    parent_side, child_side = channel.end_a, channel.end_b
                else:
                    parent_side, child_side = loop.add_inproc_pair()
                parent_core.add_child(parent_side)
                core = NodeCore(
                    child.label,
                    self.registry,
                    subtree_leaves,
                    parent=child_side,
                    clock=self._clock,
                    inbox=inboxes[child.key],
                )
                if getattr(parent_side, "_inproc", False):
                    parent_side._core = parent_core
                    child_side._core = core
                cores[child.key] = core
                host.add_node(core)
                comm = ColocatedCommNode(host, core)
                comms[child.key] = comm
                self._commnodes.append(comm)
        return comms

    def _wire_fault_tolerance(
        self,
        comms: Dict[Tuple[str, int], CommNode],
        rank_of: Dict[Tuple[str, int], int],
    ) -> None:
        # Fault-tolerance wiring: register every process slot with the
        # recovery coordinator and push the network's policy/heartbeat
        # configuration into each comm node.  Orphans repair through a
        # closure onto the coordinator (their grandparent lookup and
        # edge construction happen there).
        if self._recovery is not None:
            for node in self.topology.nodes():
                for child in node.children:
                    if child.is_leaf:
                        slot = self._slots[rank_of[child.key]]
                        slot.topo_key = child.key
                        self._recovery.register_backend(child.key, node.key, slot)
                    else:
                        comm = comms[child.key]
                        repair_fn = None
                        if self.policy == REPAIR:
                            repair_fn = self._make_repair_fn(
                                child.key, comm.inbox
                            )
                        comm.core.configure_failure(
                            policy=self.policy,
                            heartbeat=self.heartbeat,
                            recovery=self._recovery,
                            topo_key=child.key,
                            repair_fn=repair_fn,
                            checkpoint_interval=self.checkpoint_interval,
                        )
                        self._recovery.register_commnode(child.key, node.key, comm)

    def _make_repair_fn(self, key: tuple, inbox: Inbox):
        """An orphan's path back into the tree: adopt via coordinator."""
        recovery = self._recovery

        def repair():
            return recovery.adopt(key, inbox)

        return repair

    def _build_tree_process(self, leaves: List[TopologyNode]) -> None:
        """Launch internal processes as real ``mrnet_commnode`` programs.

        Spawn order is breadth-first so every child knows its parent's
        listener address on the command line; each new process prints
        ``LISTENING <port>`` which we read before spawning its own
        children.  Back-end slots record their parent's address and
        connect at attach time.
        """
        import subprocess
        import sys

        from ..transport.tcp import TcpListener

        rank_of = {leaf.key: i for i, leaf in enumerate(leaves)}
        self._listener = TcpListener(self._core.inbox)
        addr_of = {self.topology.root.key: self._listener.address}
        # Proper-ancestor address chains (root-first, excluding the
        # node's own parent): under the repair policy each spawned
        # commnode re-dials the nearest live entry when its parent
        # dies, so orphan adoption needs no coordinator round-trip.
        anc_of: Dict[tuple, tuple] = {self.topology.root.key: ()}

        filter_args: List[str] = []
        for spec in self.filter_specs:
            text = f"{spec[0]}:{spec[1]}"
            if len(spec) > 2 and spec[2]:
                text += f":{spec[2]}"
            filter_args += ["--filter", text]

        queue_: Deque[TopologyNode] = deque([self.topology.root])
        while queue_:
            node = queue_.popleft()
            for child in node.children:
                if child.is_leaf:
                    rank = rank_of[child.key]
                    slot = self._slots[rank] = _LeafSlot(
                        rank, child.label, parent_addr=addr_of[node.key]
                    )
                    slot.topo_key = child.key
                    if self._recovery is not None:
                        self._recovery.register_backend(
                            child.key, node.key, slot
                        )
                    continue
                subtree_leaves = sum(
                    1 for n in _iter_subtree(child) if n.is_leaf
                )
                host, port = addr_of[node.key]
                cmd = [
                    sys.executable,
                    "-m",
                    "repro.mrnet_commnode",
                    "--parent",
                    f"{host}:{port}",
                    "--children",
                    str(len(child.children)),
                    "--expected-ranks",
                    str(subtree_leaves),
                    "--name",
                    child.label,
                    "--rank",
                    str(len(self._procs) + 1),
                ]
                if self.heartbeat.enabled:
                    cmd += [
                        "--heartbeat-interval",
                        str(self.heartbeat.interval),
                        "--heartbeat-miss",
                        str(self.heartbeat.miss_threshold),
                    ]
                if self.checkpoint_interval > 0:
                    cmd += [
                        "--checkpoint-interval",
                        str(self.checkpoint_interval),
                    ]
                if self.policy == REPAIR:
                    cmd += ["--repair"]
                    if anc_of[node.key]:
                        cmd += [
                            "--ancestors",
                            ",".join(
                                f"{h}:{p}" for h, p in anc_of[node.key]
                            ),
                        ]
                cmd += filter_args
                proc = subprocess.Popen(
                    cmd,
                    stdout=subprocess.PIPE,
                    stderr=subprocess.PIPE,
                    bufsize=0,
                )
                proc.label = child.label
                proc.stderr_tail = deque(maxlen=20)
                self._drains.add(
                    proc.stderr, proc.stderr_tail, f"stderr-{child.label}"
                )
                self._procs.append(proc)
                line = _read_listening_line(
                    proc, timeout=30.0, drains=self._drains
                )
                if line is None or not line.startswith("LISTENING "):
                    proc.kill()
                    try:
                        proc.wait(timeout=2.0)
                    except Exception:
                        pass
                    time.sleep(0.05)  # let the stderr pipe fill in
                    raise NetworkError(
                        f"mrnet_commnode {child.label} failed to start: "
                        f"{line!r} ({self._proc_diagnostics()})"
                    )
                # Bootstrap chatter after the announcement must keep
                # flowing somewhere or the child eventually blocks on
                # a full pipe; nobody reads it, so discard via a
                # bounded drain.
                self._drains.add(
                    proc.stdout, deque(maxlen=5), f"stdout-{child.label}"
                )
                addr_of[child.key] = ("127.0.0.1", int(line.split()[1]))
                anc_of[child.key] = anc_of[node.key] + (addr_of[node.key],)
                if self._recovery is not None:
                    self._recovery.register_remote(
                        child.key, node.key, addr_of[child.key], proc=proc
                    )
                queue_.append(child)

        # Accept the root's direct children (internal processes connect
        # immediately; leaf back-ends connect at attach time and are
        # accepted lazily by _pump... no: the front-end must accept all
        # of its own connections up front, so count them here).
        internal_children = sum(
            1 for c in self.topology.root.children if not c.is_leaf
        )
        for _ in range(internal_children):
            self._core.add_child(self._listener.accept(timeout=30))

    def _build_tree_recursive(self, leaves: List[TopologyNode]) -> None:
        """Parallel recursive instantiation (paper §2.5, Figure 5).

        The front-end launches only the root's direct internal
        children, handing each its *entire subtree* as a JSON spec on
        the command line; every internal process then creates its own
        children concurrently (``mrnet_commnode --subtree``), so the
        tree builds in O(depth) sequential spawn rounds instead of the
        sequential builder's O(internal nodes).

        The front-end cannot read grandchildren's listener ports from
        their stdout (they are other processes' children), so every
        internal node announces ``label host port`` up the data plane
        via ``TAG_ADDR_REPORT``; instantiation completes when all
        announcements arrived, and back-end slots aim at their
        parent's announced address.
        """
        import subprocess
        import sys

        from ..mrnet_commnode import RecursiveOpts, subtree_spec
        from ..transport.tcp import TcpListener

        rank_of = {leaf.key: i for i, leaf in enumerate(leaves)}
        self._listener = TcpListener(self._core.inbox)
        root = self.topology.root

        # Breadth-first observability ranks: identical numbering to
        # the sequential builder's spawn order, so process identities
        # are stable across instantiation modes.
        obs_rank: Dict[tuple, int] = {}
        expected_labels = set()
        bfs: Deque[TopologyNode] = deque([root])
        while bfs:
            node = bfs.popleft()
            for child in node.children:
                if not child.is_leaf:
                    obs_rank[child.key] = len(obs_rank) + 1
                    expected_labels.add(child.label)
                    bfs.append(child)

        opts = RecursiveOpts(
            filter_specs=self.filter_specs,
            heartbeat=self.heartbeat,
            shm=self.shm,
            spawn=self.spawn,
            colocate=self.colocate,
            workers=self.filter_workers,
            repair=self.policy == REPAIR,
            checkpoint_interval=self.checkpoint_interval,
        )
        direct_internal = [c for c in root.children if not c.is_leaf]
        for child in direct_internal:
            cmd = [
                sys.executable,
                "-m",
                "repro.mrnet_commnode",
                "--parent",
                f"127.0.0.1:{self._listener.address[1]}",
                "--parent-host",
                root.host,
                "--subtree",
                json.dumps(
                    subtree_spec(child, obs_rank), separators=(",", ":")
                ),
            ] + opts.command_line()
            proc = subprocess.Popen(
                cmd,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.PIPE,
                bufsize=0,
            )
            proc.label = child.label
            proc.stderr_tail = deque(maxlen=20)
            self._drains.add(
                proc.stderr, proc.stderr_tail, f"stderr-{child.label}"
            )
            self._procs.append(proc)

        # Accept the root's direct internal children as they dial in.
        for _ in direct_internal:
            try:
                end = self._listener.accept(timeout=self._startup_timeout)
            except Exception as exc:
                raise NetworkError(
                    f"recursive instantiation: a root child never "
                    f"connected ({exc}; {self._proc_diagnostics()})"
                ) from None
            self._core.add_child(end)

        # Pump until every internal node announced its listener.
        deadline = time.monotonic() + self._startup_timeout
        while not expected_labels <= self._core.addr_reports.keys():
            dead = [p for p in self._procs if p.poll() is not None]
            if dead:
                raise NetworkError(
                    "recursive instantiation: child process died before "
                    f"the tree was up ({self._proc_diagnostics()})"
                )
            if time.monotonic() > deadline:
                missing = sorted(
                    expected_labels - self._core.addr_reports.keys()
                )
                raise NetworkError(
                    f"recursive instantiation timed out: no address "
                    f"report from {missing} ({self._proc_diagnostics()})"
                )
            self._pump(self._pump_quantum())

        # Every internal node that announced an address joins the
        # coordinator's member registry (a Popen handle exists only
        # for direct children; deeper nodes are other processes'
        # children), so orphaned back-ends can walk to a live ancestor
        # and elastic joins can pick an out-of-process parent.
        if self._recovery is not None:
            proc_of = {p.label: p for p in self._procs}
            bfs = deque([root])
            while bfs:
                node = bfs.popleft()
                for child in node.children:
                    if child.is_leaf:
                        continue
                    addr = self._core.addr_reports.get(child.label)
                    if addr is not None:
                        self._recovery.register_remote(
                            child.key, node.key, addr,
                            proc=proc_of.get(child.label),
                        )
                    bfs.append(child)

        # Back-end slots aim at their parent's announced address; links
        # whose endpoints share a topology host are marked for the
        # shared-memory upgrade at attach time.
        for leaf in leaves:
            parent = self.topology.parent_of(leaf)
            if parent is root:
                addr = self._listener.address
            else:
                addr = self._core.addr_reports[parent.label]
            slot = self._slots[rank_of[leaf.key]] = _LeafSlot(
                rank_of[leaf.key],
                leaf.label,
                parent_addr=addr,
                shm=(self.shm == "auto" and leaf.host == parent.host),
            )
            slot.topo_key = leaf.key
            self._recovery.register_backend(leaf.key, parent.key, slot)

    def _proc_diagnostics(self) -> str:
        """One line of post-mortem per spawned child process."""
        self._drains.poll()  # pull in any last words before reporting
        parts = []
        for proc in self._procs:
            label = getattr(proc, "label", "?")
            code = proc.poll()
            state = "alive" if code is None else f"exit={code}"
            tail = list(getattr(proc, "stderr_tail", ()))
            if tail:
                state += " | " + " / ".join(tail[-3:])
            parts.append(f"{label}: {state}")
        return "; ".join(parts) if parts else "no children spawned"

    def _connect_accept_root_leaf(self, slot: _LeafSlot) -> tuple:
        """Connect a front-end-parented back-end, accepting in parallel.

        The accept must overlap the connect: a shared-memory offer
        blocks the connector until the acceptor answers, so a serial
        connect-then-accept would deadlock.  The accepted end is
        admitted immediately on the front-end's home thread, otherwise
        parked for the next pump (NodeCore admission is
        single-threaded).
        """
        box: Dict[str, object] = {}

        def do_accept():
            try:
                box["end"] = self._listener.accept(timeout=30)
            except Exception as exc:
                box["err"] = exc

        acceptor = threading.Thread(
            target=do_accept, name=f"accept-rank{slot.rank}", daemon=True
        )
        acceptor.start()
        try:
            parent_end, inbox = slot.connect()
        finally:
            acceptor.join(timeout=35.0)
        end = box.get("end")
        if end is None:
            raise NetworkError(
                f"front-end accept for back-end rank {slot.rank} failed: "
                f"{box.get('err')!r}"
            )
        if threading.get_ident() == self._home_thread:
            self._core.add_child(end)
        else:
            self._core.offer_child(end, adopted=False)
        return parent_end, inbox

    # -- back-end management ------------------------------------------------

    def attach_backend(self, rank: Optional[int] = None) -> BackEnd:
        """Create and connect a back-end (mode 2 API + elastic joins).

        With *rank* naming a reserved leaf slot, this is the classic
        mode-2 attach: the back-end connects through the slot wired at
        instantiation.  With ``rank=None`` (or a rank the topology
        never reserved) the back-end *joins the running network*
        elastically: the recovery coordinator picks a parent (the live
        comm node with the fewest children, or the front-end), a fresh
        edge is manufactured, and the back-end announces itself with a
        ``TAG_JOIN`` control packet that doubles as its §2.5 endpoint
        report — every ancestor splices the new rank into routing and
        into the currently open streams at a wave-epoch boundary, and
        ``RanksChanged`` events fire both up (to the tool) and down
        (to the surviving back-ends).

        Thread-safe: concurrent callers attaching *different* ranks
        proceed in parallel (each slot is claimed under a lock), which
        is how a process-management system would bring up many tool
        back-ends at once.  Attaching the same rank twice raises.
        """
        if rank is None or rank not in self._slots:
            return self._attach_joining(rank)
        slot = self._slots[rank]
        with self._attach_lock:
            if slot.backend is not None or slot.claimed:
                raise NetworkError(f"back-end rank {rank} already attached")
            slot.claimed = True
        try:
            root_leaf = (
                self.transport == "process"
                and self._listener is not None
                and slot.parent_addr == self._listener.address
            )
            if root_leaf:
                # A back-end parented directly by the front-end:
                # complete the TCP accept on our own listener while
                # the connect is in flight.
                parent_end, inbox = self._connect_accept_root_leaf(slot)
            else:
                parent_end, inbox = slot.connect()
            backend = BackEnd(rank, slot.label, parent_end, inbox)
            if (
                self.policy == REPAIR
                and self._recovery is not None
                and slot.topo_key is not None
            ):
                backend.repair_fn = self._make_repair_fn(slot.topo_key, inbox)
            backend.connect()
        except BaseException:
            with self._attach_lock:
                slot.claimed = False
            raise
        slot.backend = backend
        return backend

    def _attach_joining(
        self, rank: Optional[int], exclude: tuple = ()
    ) -> BackEnd:
        """Join a brand-new back-end rank to the *running* network.

        See :meth:`attach_backend`; this is the elastic-membership
        path for ranks the topology never reserved.  *exclude* lists
        coordinator member keys that must not be chosen as the parent
        (used by :meth:`rebalance` to move a back-end *off* a node).
        """
        self._check_up()
        if not self._core.ready:
            raise NetworkError(
                f"cannot join rank {rank}: network is not ready yet "
                "(elastic joins extend a running network)"
            )
        with self._attach_lock:
            if rank is None:
                used = set(self._slots) | set(self._core.reported_ranks)
                rank = max(used, default=-1) + 1
            elif rank in self._slots or rank in self._core.reported_ranks:
                raise NetworkError(f"back-end rank {rank} already attached")
            slot = _LeafSlot(rank, f"joined:{rank}")
            slot.claimed = True
            self._slots[rank] = slot
        try:
            parent_end, inbox, parent_key = self._make_join_parent(
                slot, exclude=exclude
            )
            backend = BackEnd(rank, slot.label, parent_end, inbox)
            stream_ids = sorted(self._streams)
            for sid in stream_ids:
                # Pre-seed the stream handles the join enters: the
                # joiner missed the NEW_STREAM broadcast, but this
                # front-end knows every open stream's parameters.
                backend.register_stream(
                    sid, chunk_bytes=self._streams[sid].chunk_bytes or 0
                )
            topo_key = ("joined", rank)
            slot.topo_key = topo_key
            if self._recovery is not None:
                self._recovery.register_backend(topo_key, parent_key, slot)
                if self.policy == REPAIR:
                    backend.repair_fn = self._make_repair_fn(topo_key, inbox)
            backend.join(stream_ids)
        except BaseException:
            with self._attach_lock:
                self._slots.pop(rank, None)
            raise
        slot.backend = backend
        slot.parent_end = parent_end
        slot.inbox = inbox
        return backend

    def _make_join_parent(self, slot: _LeafSlot, exclude: tuple = ()) -> tuple:
        """Manufacture a joining back-end's uplink; returns
        ``(parent_end, inbox, parent_topo_key)``.

        Thread-hosted transports always go through the coordinator
        (in-process or socketpair edge to the least-loaded live comm
        node).  The process transport dials a live ``mrnet_commnode``
        listener under the repair policy (they keep accepting); in any
        other case — or when that dial fails — it falls back to the
        front-end's own listener.
        """
        recovery = self._recovery
        dialable = self.transport != "process" or self.policy == REPAIR
        if recovery is not None and dialable:
            member = recovery.choose_adopter(exclude=exclude)
            if member is not None:
                inbox = Inbox()
                end = recovery.make_join_edge(member, inbox)
                if end is not None:
                    return end, inbox, member.key
        if self.transport == "process" and self._listener is not None:
            slot.parent_addr = self._listener.address
            end, inbox = self._connect_accept_root_leaf(slot)
            return end, inbox, self.topology.root.key
        raise NetworkError(
            f"no live parent available for joining rank {slot.rank}"
        )

    def _attach_all_backends(self) -> None:
        """Mode-1 attach, concurrently (paper §2.5, Figure 5).

        Every leaf's TCP connect — and optional shared-memory upgrade
        handshake — runs in its own worker; the serial loop pays one
        connection round-trip per back-end, which dominates start-up
        once the internal tree builds in O(depth).
        """
        from concurrent.futures import ThreadPoolExecutor

        ranks = sorted(self._slots)
        with ThreadPoolExecutor(
            max_workers=min(32, len(ranks)), thread_name_prefix="attach"
        ) as pool:
            futures = [(r, pool.submit(self.attach_backend, r)) for r in ranks]
            for _rank, fut in futures:
                fut.result()

    def rebalance(
        self,
        max_moves: int = 1,
        load_fn: Optional[Callable[[NodeCore], float]] = None,
        settle_timeout: float = 10.0,
    ) -> List[dict]:
        """Re-home back-ends off hot internal nodes (ROADMAP item 2).

        Sensor → actuator pass over the running tree: per-node load is
        read from the in-process metrics registries (default:
        ``packets_up``, the data packets a comm node has received from
        its children), and the most-loaded comm node with at least one
        directly attached back-end is *evacuated* one back-end at a
        time using the elastic-membership machinery — the back-end
        announces a graceful ``TAG_LEAVE``, and the same rank rejoins
        under the least-loaded parent, with the hot node excluded from
        adopter choice.  Open streams follow automatically: the leave
        retires the rank at a wave-epoch boundary and the join splices
        it back in, so waves never stall mid-move.

        Stops early when the tree is already balanced (the hottest
        candidate is no hotter than the best alternative parent).
        Returns one record per move: ``{"rank", "from", "to",
        "backend"}`` — callers must use the returned (new)
        :class:`BackEnd` objects; the old handles are detached.

        *load_fn* overrides the sensor (a callable on a
        :class:`NodeCore` returning a number).  Requires a
        thread-hosted transport (the process transport would need
        remote actuation of ``leave()``).
        """
        self._check_up()
        if self.transport == "process":
            raise NetworkError(
                "rebalance() requires a thread-hosted transport: process-"
                "transport back-end leave/rejoin is driven by the tool"
            )
        if self._recovery is None:
            raise NetworkError("rebalance() requires the recovery coordinator")
        if load_fn is None:
            def load_fn(core):
                return core.metrics.counter("packets_up").value
        recovery = self._recovery
        moves: List[dict] = []
        for _ in range(max_moves):
            loads: Dict[tuple, float] = {}
            for member in recovery.members("commnode"):
                core = member.core
                if core is None or core.crashed or core.shutting_down:
                    continue
                loads[member.key] = load_fn(core)
            if not loads:
                break
            # Movable back-ends grouped under their current parents.
            children: Dict[tuple, List] = {}
            for member in recovery.members("backend"):
                slot = member.slot
                backend = getattr(slot, "backend", None)
                if backend is None or backend.shut_down or backend.left:
                    continue
                children.setdefault(member.parent_key, []).append(member)
            candidates = [k for k in loads if children.get(k)]
            if not candidates:
                break
            hot_key = max(candidates, key=lambda k: loads[k])
            coolest = min(
                (loads[k] for k in loads if k != hot_key), default=0.0
            )
            if loads[hot_key] <= coolest:
                break  # already balanced
            victim = min(children[hot_key], key=lambda m: m.slot.rank)
            rank = victim.slot.rank
            victim.slot.backend.leave()
            deadline = self._clock() + settle_timeout
            while rank in self._core.reported_ranks:
                if self._clock() > deadline:
                    raise NetworkError(
                        f"rebalance: rank {rank} leave did not settle "
                        f"within {settle_timeout}s"
                    )
                self._pump(self._pump_quantum())
            with self._attach_lock:
                self._slots.pop(rank, None)
            recovery.unregister(victim.key)
            backend = self._attach_joining(rank, exclude=(hot_key,))
            new_member = recovery.member(("joined", rank))
            moves.append(
                {
                    "rank": rank,
                    "from": hot_key,
                    "to": new_member.parent_key if new_member else None,
                    "backend": backend,
                }
            )
        return moves

    @property
    def backends(self) -> Dict[int, BackEnd]:
        """Attached back-ends by rank (complete in mode 1)."""
        return {
            rank: slot.backend
            for rank, slot in self._slots.items()
            if slot.backend is not None
        }

    def wait_for_ready(self, timeout: float = 30.0) -> None:
        """Pump until every back-end's endpoint report arrived (§2.5)."""
        deadline = self._clock() + timeout
        while not self._core.ready:
            if self._clock() > deadline:
                raise NetworkError(
                    f"network start-up timed out: "
                    f"{len(self._core.reported_ranks)}/"
                    f"{self._core.expected_ranks} back-ends reported"
                )
            self._pump(self._pump_quantum())

    @property
    def ready(self) -> bool:
        """True once every expected back-end has reported in."""
        return self._core.ready

    @property
    def endpoints(self) -> frozenset:
        """Ranks of all reported back-ends."""
        return frozenset(self._core.reported_ranks)

    @property
    def num_internal_nodes(self) -> int:
        """Comm nodes between the front-end and the leaves."""
        return len(self._commnodes)

    # -- communicators & streams ----------------------------------------------

    def get_broadcast_communicator(self) -> Communicator:
        """A communicator over every available end-point (Figure 2)."""
        self._check_up()
        if not self._core.ready:
            raise NetworkError("network is not ready yet")
        return Communicator(self, self._core.reported_ranks)

    def new_communicator(self, ranks: Iterable[int]) -> Communicator:
        """A communicator over an arbitrary subset of end-points."""
        self._check_up()
        return Communicator(self, ranks)

    def new_stream(
        self,
        communicator: Communicator,
        transform: int = TFILTER_NULL,
        sync: int = SFILTER_WAITFORALL,
        sync_timeout: float = 0.0,
        down_transform: int = 0,
        chunk_bytes: Optional[int] = None,
        pattern: int = WAVE_REDUCE,
    ) -> Stream:
        """Create a stream over *communicator* with the given filters.

        ``transform``/``sync`` are filter ids from this network's
        registry (built-ins or ``load_filter_func`` results).

        ``chunk_bytes`` enables pipelined waves: array payloads larger
        than this many bytes travel as chunk fragments, and chunkwise
        reductions (min/max/sum/avg under Wait-For-All) run
        incrementally per fragment at every hop.  ``None`` (default)
        preserves whole-wave behaviour byte-exactly.  ``pattern``
        selects the wave pattern: ``WAVE_REDUCE`` (classic reduction),
        ``WAVE_REDUCE_TO_ALL`` (result also broadcast back down to all
        back-ends; see :meth:`Stream.allreduce`), or ``WAVE_DUAL_ROOT``
        (reduce-to-all with the alternating dual-root down schedule).
        """
        self._check_up()
        if communicator.network is not self:
            raise NetworkError("communicator belongs to a different network")
        if not self.registry.is_transform(transform):
            raise NetworkError(f"unknown transformation filter id {transform}")
        if not self.registry.is_sync(sync):
            raise NetworkError(f"unknown synchronization filter id {sync}")
        if down_transform and not self.registry.is_transform(down_transform):
            raise NetworkError(f"unknown downstream filter id {down_transform}")
        if chunk_bytes is not None and chunk_bytes <= 0:
            raise NetworkError("chunk_bytes must be positive (or None)")
        if pattern not in WAVE_PATTERNS:
            raise NetworkError(f"unknown wave pattern {pattern}")
        stream_id = self._next_stream_id
        self._next_stream_id += 1
        self._core.stream_queues[stream_id] = deque()
        packet = make_new_stream(
            stream_id,
            sorted(communicator.ranks),
            sync,
            transform,
            sync_timeout,
            down_transform,
            chunk_bytes=chunk_bytes or 0,
            wave_pattern=pattern,
        )
        self._core.handle_control_down(packet)
        self._core.flush()
        stream = Stream(
            self, stream_id, communicator, chunk_bytes=chunk_bytes, pattern=pattern
        )
        self._streams[stream_id] = stream
        return stream

    def new_streams(
        self,
        specs: Iterable[tuple],
    ) -> List[Stream]:
        """Create many streams with ONE downstream control wave.

        *specs* is an iterable of ``(communicator, kwargs)`` pairs —
        each ``kwargs`` dict accepts exactly the keyword arguments of
        :meth:`new_stream` (``transform``, ``sync``, ``sync_timeout``,
        ``down_transform``, ``chunk_bytes``, ``pattern``) — or bare
        ``communicator`` objects for all-default streams.

        This is the many-stream fast path (ROADMAP item 2): instead of
        one ``TAG_NEW_STREAM`` control packet per stream, the batch is
        announced in a single ``TAG_NEW_STREAMS`` packet whose
        endpoint sets are deduplicated into interned
        :class:`~repro.core.routing.CommGroup` references.  Each comm
        node registers lightweight stream *specs* and materializes the
        full :class:`StreamManager` lazily on the first data packet,
        so creating 5000 streams over one communicator costs one
        control wave plus O(1) bookkeeping per stream per node.
        """
        pairs: List[tuple] = []
        for spec in specs:
            if isinstance(spec, Communicator):
                comm, kwargs = spec, {}
            else:
                comm, kwargs = spec
            pairs.append((comm, dict(kwargs or {})))
        self._check_up()
        parsed: List[tuple] = []
        for comm, kwargs in pairs:
            if comm.network is not self:
                raise NetworkError("communicator belongs to a different network")
            unknown = set(kwargs) - {
                "transform", "sync", "sync_timeout",
                "down_transform", "chunk_bytes", "pattern",
            }
            if unknown:
                raise NetworkError(
                    f"unknown stream option(s) {sorted(unknown)}"
                )
            transform = kwargs.get("transform", TFILTER_NULL)
            sync = kwargs.get("sync", SFILTER_WAITFORALL)
            sync_timeout = kwargs.get("sync_timeout", 0.0)
            down_transform = kwargs.get("down_transform", 0)
            chunk_bytes = kwargs.get("chunk_bytes")
            pattern = kwargs.get("pattern", WAVE_REDUCE)
            if not self.registry.is_transform(transform):
                raise NetworkError(f"unknown transformation filter id {transform}")
            if not self.registry.is_sync(sync):
                raise NetworkError(f"unknown synchronization filter id {sync}")
            if down_transform and not self.registry.is_transform(down_transform):
                raise NetworkError(f"unknown downstream filter id {down_transform}")
            if chunk_bytes is not None and chunk_bytes <= 0:
                raise NetworkError("chunk_bytes must be positive (or None)")
            if pattern not in WAVE_PATTERNS:
                raise NetworkError(f"unknown wave pattern {pattern}")
            parsed.append(
                (comm, transform, sync, sync_timeout, down_transform,
                 chunk_bytes, pattern)
            )
        # Deduplicate endpoint sets: wire specs reference groups by
        # index, mirroring the CommGroup interning every node performs.
        group_index: Dict[frozenset, int] = {}
        groups: List[tuple] = []
        wire_specs: List[tuple] = []
        streams: List[Stream] = []
        for comm, transform, sync, sync_timeout, down, chunk, pattern in parsed:
            key = frozenset(comm.ranks)
            gidx = group_index.get(key)
            if gidx is None:
                gidx = group_index[key] = len(groups)
                groups.append(tuple(sorted(key)))
            stream_id = self._next_stream_id
            self._next_stream_id += 1
            self._core.stream_queues[stream_id] = deque()
            wire_specs.append(
                (stream_id, gidx, sync, transform, sync_timeout,
                 down, chunk or 0, pattern)
            )
            stream = Stream(
                self, stream_id, comm, chunk_bytes=chunk, pattern=pattern
            )
            self._streams[stream_id] = stream
            streams.append(stream)
        if wire_specs:
            packet = make_new_streams(groups, wire_specs)
            self._core.handle_control_down(packet)
            self._core.flush()
        return streams

    def load_filter_func(self, module_path: str, func_name: str, fmt=None) -> int:
        """Register a custom filter network-wide (paper's load_filterFunc)."""
        return self.registry.load_filter_func(module_path, func_name, fmt)

    # -- stream plumbing (called by Stream) -------------------------------

    def _send_downstream(self, packet: Packet) -> None:
        self._check_up()
        self._core._handle_data_down(packet)
        self._core.flush()

    def _recv_on_stream(self, stream_id: int, deadline: Optional[float]) -> Packet:
        q = self._core.stream_queues.get(stream_id)
        if q is None:
            raise NetworkError(f"stream {stream_id} has no delivery queue")
        while True:
            if q:
                return q.popleft()
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(f"recv on stream {stream_id} timed out")
            remaining = None if deadline is None else deadline - time.monotonic()
            self._pump(self._pump_quantum(remaining))

    def _try_recv_on_stream(self, stream_id: int) -> Optional[Packet]:
        self._pump(0.0)
        q = self._core.stream_queues.get(stream_id)
        if q:
            return q.popleft()
        return None

    def recv(self, timeout: Optional[float] = None) -> Tuple[Packet, Stream]:
        """Stream-anonymous front-end receive: next packet on any stream."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            for stream_id, q in self._core.stream_queues.items():
                if q:
                    return q.popleft(), self._streams[stream_id]
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError("front-end recv timed out")
            remaining = None if deadline is None else deadline - time.monotonic()
            self._pump(self._pump_quantum(remaining))

    # -- observability -----------------------------------------------------

    @staticmethod
    def _flatten_snapshot(snapshot: dict) -> Dict[str, object]:
        """One process's typed snapshot as a flat series dict.

        Counters and gauges become ``series-key -> number`` entries
        (the historical ``stats()`` value shape); histograms, which
        have structure, are grouped under a single ``"histograms"``
        key.  See ``docs/observability.md`` for the full schema.
        """
        flat: Dict[str, object] = dict(snapshot.get("counters", {}))
        flat.update(snapshot.get("gauges", {}))
        histograms = snapshot.get("histograms", {})
        if histograms:
            flat["histograms"] = dict(histograms)
        return flat

    def _expected_stats_repliers(self) -> int:
        """Internal processes a STATS_SNAPSHOT gather should hear from.

        Crashed, shutting-down and wedged nodes are excluded — the two
        former cannot answer, and a wedged node drops input by
        definition, so waiting for it would always cost the full
        gather timeout.
        """
        if self.transport == "process":
            if self.instantiation == "recursive":
                # Grandchildren are other processes' children — no
                # Popen handle to poll — but every internal node that
                # came up announced an address, so that census is the
                # replier set.
                return len(self._core.addr_reports)
            return sum(1 for proc in self._procs if proc.poll() is None)
        expected = 0
        for node in self._commnodes:
            core = node.core
            if core.crashed or core.shutting_down or core.wedged:
                continue
            if not node.is_alive():
                continue
            expected += 1
        return expected

    def _gather_snapshots(self, timeout: float, meta: dict) -> Dict[str, dict]:
        """Broadcast a STATS_SNAPSHOT request and pump until all
        expected replies arrive (or *timeout* elapses).

        Returns ``node-identity -> metrics snapshot`` for every reply
        received; *meta* is updated in place with gather accounting.
        """
        self._stats_seq += 1
        request_id = self._stats_seq
        expected = self._expected_stats_repliers()
        meta.update(gathered=True, expected=expected, request_id=request_id)
        replies = self._core.stats_replies.setdefault(request_id, {})
        try:
            self._core.handle_control_down(make_stats_request(request_id))
            self._core.flush()
            deadline = self._clock() + timeout
            while len(replies) < expected:
                remaining = deadline - self._clock()
                if remaining <= 0:
                    break
                self._pump(min(self._pump_quantum(remaining), remaining))
        finally:
            self._core.stats_replies.pop(request_id, None)
        meta["replies"] = len(replies)
        return replies

    def _collect_snapshots(
        self, gather: bool, timeout: float
    ) -> Tuple[Dict[str, dict], dict]:
        """Per-process typed snapshots plus gather metadata.

        The front-end is always read locally.  Internal nodes are
        gathered over the wire via ``STATS_SNAPSHOT`` when *gather* is
        true and the network is up; thread-hosted nodes that did not
        reply (or when not gathering) are read from their in-process
        registries, except crashed ones — a dead node's counters are
        deliberately absent, exactly as they would be with real
        separate processes.
        """
        meta = {
            "schema": STATS_SCHEMA,
            "transport": self.transport,
            "policy": self.policy,
            "gathered": False,
            "expected": 0,
            "replies": 0,
        }
        snapshots: Dict[str, dict] = {
            self._core.obs_identity: self._core.metrics_snapshot()
        }
        if gather and not self._down:
            try:
                snapshots.update(self._gather_snapshots(timeout, meta))
            except Exception:
                pass  # degraded tree mid-repair: fall back to local reads
        for node in self._commnodes:
            core = node.core
            if core.obs_identity in snapshots or core.crashed:
                continue
            snapshots[core.obs_identity] = core.metrics_snapshot()
        return snapshots, meta

    def stats(self, gather: bool = True, timeout: float = 0.5) -> Dict[str, dict]:
        """Per-process metric series, gathered through the tree.

        With ``gather=True`` (default) the front-end broadcasts a
        ``STATS_SNAPSHOT`` request down the control stream; every live
        internal node replies with its serialized registry, relayed up
        through the same links and packet buffers that carry tool
        data.  Thread-hosted nodes that cannot answer over the wire
        are read locally; crashed nodes are absent.  ``gather=False``
        skips the wire round-trip entirely (thread-hosted registries
        are read in-process; process-transport internals then do not
        appear).

        Returns one entry per process keyed ``"rank:hostname"``
        (``"0:front-end"``, then comm nodes in construction order).
        Each value maps counter and gauge series keys — plain names,
        or ``name{label="v"}`` for labelled series such as per-stream
        wave counters — to numbers, with histogram series grouped
        under the value's ``"histograms"`` key.  Two reserved
        top-level keys: ``"recovery"`` (network-wide recovery
        counters) and ``"meta"`` (schema/gather accounting).

        The bare-label aliases deprecated in PR 4 (``"front-end"``,
        topology labels) are gone; key on ``rank:hostname``.
        """
        snapshots, meta = self._collect_snapshots(gather, timeout)
        out: Dict[str, dict] = {
            key: self._flatten_snapshot(snap) for key, snap in snapshots.items()
        }
        if self._recovery is not None:
            # Network-wide recovery counters (nodes_failed,
            # orphans_adopted, waves_reconfigured, heartbeats_missed)
            # under a reserved pseudo-process key.
            out["recovery"] = self._recovery.snapshot()
        out["meta"] = meta
        return out

    def stats_json(self, gather: bool = True, timeout: float = 0.5) -> str:
        """The full typed snapshot set as one JSON document.

        Unlike :meth:`stats` this keeps the registry shape —
        ``{"meta": {...}, "processes": {identity: {"counters": ...,
        "gauges": ..., "histograms": ...}}, "recovery": {...}}`` — and
        carries no deprecated aliases.
        """
        snapshots, meta = self._collect_snapshots(gather, timeout)
        doc = {"meta": meta, "processes": snapshots}
        if self._recovery is not None:
            doc["recovery"] = self._recovery.snapshot()
        return json.dumps(doc)

    def stats_prometheus(self, gather: bool = True, timeout: float = 0.5) -> str:
        """Every process's metrics as Prometheus exposition text.

        Series gain a ``process`` label carrying the ``rank:hostname``
        identity; recovery counters appear under process
        ``"recovery"``.  Histograms are exported cumulatively with the
        standard ``_bucket``/``_sum``/``_count`` series.
        """
        snapshots, meta = self._collect_snapshots(gather, timeout)
        processes: Dict[str, dict] = dict(snapshots)
        if self._recovery is not None:
            processes["recovery"] = {"counters": self._recovery.snapshot()}
        return prometheus_text(processes)

    def start_trace(self, maxlen: int = 100_000) -> None:
        """Attach a Figure 3 span recorder to every thread-hosted process.

        Each recorder shares its core's clock so all spans land on one
        time base; rings are bounded at *maxlen* spans per process.
        Restarting an active trace raises — call :meth:`stop_trace`
        first.  Process transport is rejected (the span rings would
        live in other address spaces).
        """
        if self.transport == "process":
            raise NetworkError(
                "tracing requires a thread-hosted transport ('local' or 'tcp')"
            )
        if self._tracers and any(
            core.tracer is not None
            for core in [self._core] + [n.core for n in self._commnodes]
        ):
            raise NetworkError("trace already active; call stop_trace() first")
        self._tracers = []
        for core in [self._core] + [node.core for node in self._commnodes]:
            recorder = TraceRecorder(
                core.obs_identity, maxlen=maxlen, clock=core.clock
            )
            core.tracer = recorder
            self._tracers.append(recorder)

    def stop_trace(self) -> None:
        """Detach all span recorders (recorded spans stay exportable)."""
        for core in [self._core] + [node.core for node in self._commnodes]:
            core.tracer = None

    def trace_chrome_json(self) -> str:
        """The recorded trace as Chrome/Perfetto trace-event JSON.

        Same format as
        :meth:`repro.sim.trace.SimTrace.to_chrome_trace`, so a live
        run and a simulated run load side by side in one Perfetto
        session.  Raises unless :meth:`start_trace` (or
        ``Network(trace=True)``) ran first.
        """
        if not self._tracers:
            raise NetworkError("no trace recorded: call start_trace() first")
        return to_chrome_trace(self._tracers)

    def write_trace(self, path) -> Path:
        """Write :meth:`trace_chrome_json` to *path*; returns the Path."""
        target = Path(path)
        target.write_text(self.trace_chrome_json())
        return target

    def recovery_events(self) -> List[RanksChanged]:
        """Wave-membership changes observed by the front-end so far.

        Each entry records one stream's epoch bump with the ranks lost
        (a subtree died) or gained (an orphan was adopted back).  The
        list is cumulative; pending inbound traffic is drained first so
        the answer is current.
        """
        self.flush()
        return list(self._core.recovery_events)

    def unexpected_packets(self) -> List[Packet]:
        """Drain packets that arrived for unknown streams (diagnostics)."""
        out = list(self._core.default_queue)
        self._core.default_queue.clear()
        return out

    def _close_stream(self, stream_id: int) -> None:
        if self._down:
            return
        self._core.handle_control_down(make_close_stream(stream_id))
        self._core.flush()

    # -- pumping ----------------------------------------------------------

    def _pump_quantum(self, remaining: Optional[float] = None) -> float:
        """How long one blocking pump may wait.

        Sleeps up to ``PUMP_QUANTUM`` but never past the next
        TimeOut-stream deadline held at the front-end (so partial
        waves release on time, without a short fixed poll) nor past
        *remaining* (a caller's own deadline).  Any inbound delivery
        interrupts the wait regardless.
        """
        quantum = self.PUMP_QUANTUM
        deadline = self._core.next_timeout_deadline()
        if deadline is not None:
            quantum = min(quantum, max(deadline - self._clock(), 0.0))
        if remaining is not None:
            quantum = min(quantum, max(remaining, 0.0))
        return quantum

    def _poll_repair_accepts(self) -> None:
        """Admit orphans re-dialing the front-end (process + repair).

        A ``transport="process"`` orphan whose nearest live ancestor
        is the front-end reconnects to our listener; nobody blocks in
        ``accept`` after startup, so the pump polls non-blockingly.
        The orphan's endpoint report follows on the new link and
        splices it into routing and stream membership.
        """
        if self._listener is None:
            return
        if any(s.claimed and s.backend is None for s in self._slots.values()):
            # A back-end attach is mid-connect on this listener; its
            # own acceptor must win that connection, not the pump.
            return
        while True:
            try:
                end = self._listener.accept(timeout=0)
            except (OSError, ValueError, ConnectionError):
                return
            self._core.add_child(end)

    def _pump(self, timeout: float) -> bool:
        """Process inbound traffic for up to one blocking receive."""
        worked = False
        # Attach any orphan adopted by the front-end since the last
        # pump, *before* draining the inbox: its endpoint report may
        # already be queued behind the admission.
        self._core.admit_pending_children()
        if self._accept_repairs:
            self._poll_repair_accepts()
        if self._drains:
            self._drains.poll()
        if timeout > 0:
            try:
                link_id, payload = self._core.inbox.get(timeout=timeout)
                self._core.handle_payload(link_id, payload)
                worked = True
            except queue.Empty:
                pass
        while True:
            try:
                link_id, payload = self._core.inbox.get_nowait()
            except queue.Empty:
                break
            self._core.handle_payload(link_id, payload)
            worked = True
        self._core.poll_streams()
        self._core.flush()
        return worked

    def flush(self) -> None:
        """Drain pending inbound traffic without blocking."""
        self._pump(0.0)

    def pump_once(self, max_wait: float = 0.0) -> bool:
        """Run one bounded pump cycle; returns True if any work was done.

        The front-end is passive — it only makes progress while some
        caller pumps it.  Driver threads (the serving gateway's, for
        example) call this in a loop instead of blocking in a recv:
        each call waits at most *max_wait* (capped by the pump quantum
        and any pending TimeOut-stream deadline) for inbound traffic,
        then drains everything that arrived and fires stream hooks.
        """
        self._check_up()
        return self._pump(self._pump_quantum(max_wait))

    # -- delivery sinks ----------------------------------------------------

    def set_stream_sink(
        self, stream_id: int, sink: Callable[[Packet], None]
    ) -> None:
        """Route a stream's upstream results to *sink* instead of its queue.

        The sink runs synchronously on whatever thread pumps the
        network, receiving each fully reassembled :class:`Packet`.
        While a sink is installed, ``Stream.recv`` on that stream sees
        nothing — the sink owns delivery.  Packets already queued
        before installation are flushed through the sink first so no
        result is stranded.
        """
        core = self._core
        core.delivery_sinks[stream_id] = sink
        backlog = core.stream_queues.get(stream_id)
        while backlog:
            sink(backlog.popleft())

    def clear_stream_sink(self, stream_id: int) -> None:
        """Remove a stream's delivery sink; results queue normally again."""
        self._core.delivery_sinks.pop(stream_id, None)

    # -- lifecycle --------------------------------------------------------

    def _check_up(self) -> None:
        if self._down:
            raise NetworkDownError("network has been shut down")
        if self.policy == FAIL_FAST and self._core.first_failure is not None:
            raise NetworkDownError(
                "network poisoned under fail_fast policy",
                cause=self._core.first_failure,
            )

    def shutdown(self, join_timeout: float = 5.0) -> None:
        """Tear down the tree: broadcast shutdown, join internal threads.

        Idempotent and hang-proof: safe to call twice, safe after a
        failed startup (every step tolerates half-built state), and a
        comm node that ignores the SHUTDOWN broadcast — wedged, or its
        link already dead — is force-killed after ``join_timeout``
        rather than hanging the caller.
        """
        if getattr(self, "_down", False):
            return
        self._down = True
        core = getattr(self, "_core", None)
        if core is not None:
            try:
                core.handle_control_down(make_shutdown())
                core.flush()
            except Exception:
                pass  # half-built tree: some links may be dead already
        for node in getattr(self, "_commnodes", ()):
            if not node.is_alive():
                continue
            node.join(timeout=join_timeout)
            if node.is_alive():
                # The goodbye never reached it (wedged node, dead
                # link): crash it out so shutdown always terminates.
                node.kill()
                node.join(timeout=1.0)
        host = getattr(self, "_host", None)
        if host is not None:
            # Colocated tree: every core finishing ends the shared
            # loop; if the host thread never started (failed startup),
            # release its selector/wake pipe directly.
            if host.is_alive():
                host.join(timeout=join_timeout)
            host.close()
        for proc in getattr(self, "_procs", ()):
            try:
                proc.wait(timeout=join_timeout)
            except Exception:
                proc.kill()
        drains = getattr(self, "_drains", None)
        if drains is not None:
            try:
                drains.close()
            except Exception:
                pass
        if core is not None:
            # Release the front-end's own link ends: shared-memory
            # children hold kernel segments that survive until every
            # attached process closes them.
            try:
                core.close_all()
            except Exception:
                pass
        listener = getattr(self, "_listener", None)
        if listener is not None:
            try:
                listener.close()
            except Exception:
                pass
        # Wake any passive back-end that never polls again.
        for slot in getattr(self, "_slots", {}).values():
            if slot.backend is not None:
                try:
                    slot.backend.poll()
                except Exception:
                    pass

    @property
    def is_down(self) -> bool:
        """True after :meth:`shutdown` or a fail-fast teardown."""
        return self._down

    def __enter__(self) -> "Network":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def __repr__(self) -> str:
        state = "down" if self._down else ("ready" if self._core.ready else "starting")
        return (
            f"Network(backends={self._core.expected_ranks}, "
            f"internal={len(self._commnodes)}, {state})"
        )


def _iter_subtree(node: TopologyNode):
    stack = [node]
    while stack:
        n = stack.pop()
        yield n
        stack.extend(n.children)
