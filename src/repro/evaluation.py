"""Programmatic regeneration of every paper figure's data.

Each ``fig*`` function returns ``(header, rows)`` — the same series the
paper plots — computed on the calibrated Blue Pacific stand-in.  The
benchmarks under ``benchmarks/`` call these and assert the shape
criteria; ``python -m repro figures`` prints them all; library users
can feed them straight into their own plotting.

See EXPERIMENTS.md for paper-vs-measured anchors.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from .paradyn.clockskew import run_skew_experiment
from .paradyn.startup import ACTIVITIES, simulate_startup
from .sim.cluster import BLUE_PACIFIC, ClusterParams
from .sim.collectives import CollectiveSim
from .sim.frontend_load import LoadModelParams, PARADYN_LOAD, frontend_load_fraction, offered_rate
from .sim.instantiation import simulate_instantiation
from .sim.logp import (
    LogGPParams,
    broadcast_latency,
    injection_gap,
    pipelined_gap,
    pipelined_throughput,
)
from .topology import analyze, balanced_tree, balanced_tree_for, flat_topology, unbalanced_fig4

__all__ = [
    "DEFAULT_BACKEND_SWEEP",
    "DEFAULT_DAEMON_SWEEP",
    "fig7a_instantiation",
    "fig7b_roundtrip",
    "fig7c_throughput",
    "fig8a_startup",
    "fig8b_activities",
    "fig9_frontend_load",
    "fig4_topologies",
    "skew_accuracy",
    "all_figures",
]

Header = List[str]
Rows = List[Tuple]

DEFAULT_BACKEND_SWEEP = [4, 16, 64, 128, 256, 400, 512, 600]
DEFAULT_DAEMON_SWEEP = [4, 16, 64, 128, 256, 512]


def fig7a_instantiation(
    backends: Sequence[int] = DEFAULT_BACKEND_SWEEP,
    params: ClusterParams = BLUE_PACIFIC,
) -> Tuple[Header, Rows]:
    """Figure 7a: tool instantiation latency (seconds)."""
    rows = []
    for n in backends:
        rows.append(
            (
                n,
                simulate_instantiation(flat_topology(n), params).latency,
                simulate_instantiation(balanced_tree_for(4, n), params).latency,
                simulate_instantiation(balanced_tree_for(8, n), params).latency,
            )
        )
    return ["back-ends", "flat", "4-way", "8-way"], rows


def fig7b_roundtrip(
    backends: Sequence[int] = DEFAULT_BACKEND_SWEEP,
    params: ClusterParams = BLUE_PACIFIC,
) -> Tuple[Header, Rows]:
    """Figure 7b: round-trip latency of broadcast + reduction (seconds)."""
    rows = []
    for n in backends:
        rows.append(
            (
                n,
                CollectiveSim(flat_topology(n), params).roundtrip().latency,
                CollectiveSim(balanced_tree_for(4, n), params).roundtrip().latency,
                CollectiveSim(balanced_tree_for(8, n), params).roundtrip().latency,
            )
        )
    return ["back-ends", "flat", "4-way", "8-way"], rows


def fig7c_throughput(
    backends: Sequence[int] = DEFAULT_BACKEND_SWEEP,
    waves: int = 60,
    params: ClusterParams = BLUE_PACIFIC,
) -> Tuple[Header, Rows]:
    """Figure 7c: data reduction throughput (operations/second)."""
    rows = []
    for n in backends:
        rows.append(
            (
                n,
                CollectiveSim(flat_topology(n), params)
                .pipelined_reductions(waves=waves)
                .throughput,
                CollectiveSim(balanced_tree_for(4, n), params)
                .pipelined_reductions(waves=waves)
                .throughput,
                CollectiveSim(balanced_tree_for(8, n), params)
                .pipelined_reductions(waves=waves)
                .throughput,
            )
        )
    return ["back-ends", "flat", "4-way", "8-way"], rows


def fig8a_startup(
    daemons: Sequence[int] = DEFAULT_DAEMON_SWEEP,
) -> Tuple[Header, Rows]:
    """Figure 8a: Paradyn start-up latency vs daemon count (seconds)."""
    rows = []
    for d in daemons:
        rows.append(
            (
                d,
                simulate_startup(d).total,
                simulate_startup(d, balanced_tree_for(4, d)).total,
                simulate_startup(d, balanced_tree_for(8, d)).total,
                simulate_startup(d, balanced_tree_for(16, d)).total,
            )
        )
    return ["daemons", "no-MRNet", "4-way", "8-way", "16-way"], rows


def fig8b_activities(daemons: int = 512) -> Tuple[Header, Rows]:
    """Figure 8b: start-up latency by activity (seconds)."""
    flat = simulate_startup(daemons)
    tree = simulate_startup(daemons, balanced_tree_for(8, daemons))
    rows = []
    for activity in ACTIVITIES:
        mark = "*" if activity.uses_mrnet else " "
        f = flat.per_activity[activity.name]
        t = tree.per_activity[activity.name]
        rows.append((f"{mark}{activity.name}", f, t, f / max(t, 1e-9)))
    rows.append(("TOTAL", flat.total, tree.total, flat.total / tree.total))
    return ["activity", "no-MRNet (s)", "8-way (s)", "speedup"], rows


def fig9_frontend_load(
    daemons: Sequence[int] = (4, 16, 64, 128, 256),
    metrics: Sequence[int] = (1, 8, 16, 32),
    fanouts: Sequence[int] = (4, 8, 16),
    params: LoadModelParams = PARADYN_LOAD,
) -> Dict[int, Tuple[Header, Rows]]:
    """Figure 9 panels: fraction of offered load, keyed by metric count."""
    panels: Dict[int, Tuple[Header, Rows]] = {}
    header = (
        ["daemons", "flat"]
        + [f"{f}-way" for f in fanouts]
        + ["offered/s"]
    )
    for m in metrics:
        rows = []
        for d in daemons:
            row = [d, frontend_load_fraction(d, m, None, params)]
            for f in fanouts:
                row.append(
                    frontend_load_fraction(d, m, balanced_tree_for(f, d), params)
                )
            row.append(offered_rate(d, m))
            rows.append(tuple(row))
        panels[m] = (list(header), rows)
    return panels


def fig4_topologies(
    params: Optional[LogGPParams] = None,
) -> Tuple[Header, Rows]:
    """Figure 4 / §2.6: balanced vs unbalanced topology costs."""
    p = params if params is not None else LogGPParams(L=20e-6, o=10e-6, g=1e-3, G=0.0)
    rows = []
    for name, spec in (
        ("balanced-4a", balanced_tree(4, 2)),
        ("unbalanced-4b", unbalanced_fig4()),
    ):
        stats = analyze(spec)
        rows.append(
            (
                name,
                stats.num_backends,
                stats.root_fanout,
                broadcast_latency(spec, p) * 1e3,
                injection_gap(spec, p) * 1e3,
                pipelined_gap(spec, p) * 1e3,
                pipelined_throughput(spec, p),
            )
        )
    return (
        ["topology", "BEs", "root-fan", "bcast-ms", "inject-ms", "pipe-ms", "ops/s"],
        rows,
    )


def skew_accuracy(
    seeds: Sequence[int] = range(12),
    fanout: int = 4,
    depth: int = 3,
) -> Tuple[Header, Rows]:
    """§4.2.1: clock-skew error, MRNet scheme vs direct baseline."""
    rows = []
    m_means, m_stds, d_means, d_stds = [], [], [], []
    for seed in seeds:
        res = run_skew_experiment(
            balanced_tree(fanout, depth),
            local_trials=20,
            direct_trials=100,
            seed=seed,
        )
        m_mean, m_std = res.summary("mrnet")
        d_mean, d_std = res.summary("direct")
        rows.append((seed, m_mean, m_std, d_mean, d_std))
        m_means.append(m_mean)
        m_stds.append(m_std)
        d_means.append(d_mean)
        d_stds.append(d_std)
    rows.append(
        (
            "mean",
            float(np.mean(m_means)),
            float(np.mean(m_stds)),
            float(np.mean(d_means)),
            float(np.mean(d_stds)),
        )
    )
    return ["seed", "MRNet err%", "MRNet sigma", "direct err%", "direct sigma"], rows


def all_figures() -> Dict[str, Tuple[Header, Rows]]:
    """Every figure's data, keyed by figure id."""
    out: Dict[str, Tuple[Header, Rows]] = {
        "fig4": fig4_topologies(),
        "fig7a": fig7a_instantiation(),
        "fig7b": fig7b_roundtrip(),
        "fig7c": fig7c_throughput(),
        "fig8a": fig8a_startup(),
        "fig8b": fig8b_activities(),
        "skew": skew_accuracy(),
    }
    for m, panel in fig9_frontend_load().items():
        out[f"fig9-{m}metrics"] = panel
    return out
