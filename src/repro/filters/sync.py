"""Synchronization filters (paper §2.4).

Synchronization filters "organise data packets from downstream nodes
into synchronized waves of data packets".  They receive packets one at
a time and output nothing until their synchronization criterion fires.
MRNet ships three modes, all reproduced here:

* **Wait For All** — hold packets until one has arrived from *every*
  child of the node, then release one aligned wave (one packet per
  child, FIFO within a child).
* **Time Out** — release a wave when every child has contributed *or*
  a timeout elapses since the wave's first packet, whichever is first.
* **Do Not Wait** — release packets immediately as singleton waves.

Synchronization filters are type-independent: they never inspect
packet payloads.  The paper notes users may add new synchronization
modes; subclass :class:`SynchronizationFilter` and register it (see
:mod:`repro.filters.registry`).

Timeouts need a time source.  To work identically under the threaded
runtime (wall clock) and the discrete-event simulator (virtual clock),
filters take a ``clock`` callable returning the current time in
seconds; it defaults to :func:`time.monotonic`.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence

from ..core.packet import Packet

__all__ = [
    "Wave",
    "SynchronizationFilter",
    "WaitForAllFilter",
    "TimeOutFilter",
    "DoNotWaitFilter",
]

Wave = List[Packet]


class SynchronizationFilter:
    """Base class: per-child FIFO queues plus a release criterion.

    Subclasses implement :meth:`_ready_waves`, which inspects the
    queues and pops zero or more complete waves.

    Parameters
    ----------
    children:
        The identities of the node's downstream connections.  A wave
        aligns one packet from each.  The set may grow via
        :meth:`add_child` during network construction.
    clock:
        Time source used by time-based criteria.
    """

    name = "sync-base"

    def __init__(
        self,
        children: Sequence[object] = (),
        clock: Callable[[], float] = time.monotonic,
    ):
        self._queues: Dict[object, Deque[Packet]] = {c: deque() for c in children}
        self._clock = clock
        # Children adopted mid-stream (tree repair): they join the
        # *next* wave, so an in-flight wave still completes over the
        # pre-adoption membership instead of blocking on a child that
        # never saw the wave's multicast.  A joining child graduates
        # to full membership when it contributes its first packet or
        # when any wave releases, whichever happens first.
        self._joining: set = set()
        # Children that announced a graceful leave (TAG_LEAVE): their
        # queued contributions still ride, but waves stop *requiring*
        # them.  Unlike ``_joining`` the exemption is permanent — it
        # ends only when the link actually closes and is removed.
        self._leaving: set = set()

    # -- membership -------------------------------------------------------

    @property
    def children(self) -> List[object]:
        return list(self._queues)

    def add_child(self, child: object, joining: bool = False) -> None:
        """Register a new downstream connection.

        With ``joining=True`` (an orphan adopted while waves may be in
        flight) the child is exempt from wave-completeness checks
        until it first contributes or a wave releases.
        """
        if child in self._queues:
            return
        self._queues[child] = deque()
        if joining:
            self._joining.add(child)

    def remove_child(self, child: object) -> List[Packet]:
        """Drop a connection (e.g. a closed child); return its backlog."""
        backlog = self._queues.pop(child, deque())
        self._joining.discard(child)
        self._leaving.discard(child)
        return list(backlog)

    def retire_child(self, child: object) -> None:
        """Lame-duck a child that announced a graceful leave.

        The child's already-queued packets still participate in waves,
        but completeness criteria stop waiting on it — the departing
        back-end will send nothing further, and blocking every wave
        until its EOF arrives would stall the stream for the detection
        window.  The exemption persists until :meth:`remove_child`.
        """
        if child in self._queues:
            self._leaving.add(child)

    # -- data path ---------------------------------------------------------

    def push(self, child: object, packet: Packet) -> List[Wave]:
        """Offer one packet from *child*; return any waves now complete."""
        if child not in self._queues:
            raise KeyError(f"unknown child {child!r}")
        self._joining.discard(child)  # first contribution: full member
        self._queues[child].append(packet)
        return self._ready_waves()

    def poll(self) -> List[Wave]:
        """Re-evaluate time-based criteria without new input."""
        return self._ready_waves()

    def flush(self) -> List[Wave]:
        """Release everything still queued as best-effort waves.

        Used at stream shutdown so no packet is ever silently dropped.
        Packets are grouped positionally: the i-th remaining packet of
        each child forms wave i.
        """
        waves: List[Wave] = []
        while any(self._queues.values()):
            wave = [q.popleft() for q in self._queues.values() if q]
            waves.append(wave)
        self._reset_criterion()
        return waves

    @property
    def pending(self) -> int:
        """Number of packets currently held back."""
        return sum(len(q) for q in self._queues.values())

    # -- checkpointing ------------------------------------------------------

    def get_state(self) -> dict:
        """Serialize the buffered partial-wave contributions (JSON-able).

        Each child's queued packets are wire-encoded and base64'd;
        children are keyed by ``str()`` of their identity (link ids in
        practice).  Shipped in ``TAG_CHECKPOINT`` payloads so a dead
        node's partially synchronized wave is not silently lost.
        """
        from base64 import b64encode

        from ..core.batching import encode_batch

        pending = {}
        for child, q in self._queues.items():
            if q:
                pending[str(child)] = b64encode(encode_batch(q)).decode("ascii")
        return {"sync": self.name, "pending": pending}

    def set_state(self, snapshot: dict) -> None:
        """Re-queue contributions from a :meth:`get_state` snapshot.

        Children are matched by ``str()`` of their identity; entries
        for children this filter does not know are ignored (the dead
        node's links do not exist at the adopter).
        """
        from base64 import b64decode

        from ..core.batching import decode_batch

        by_name = {str(child): child for child in self._queues}
        for key, blob in snapshot.get("pending", {}).items():
            child = by_name.get(key)
            if child is None:
                continue
            for packet in decode_batch(b64decode(blob), lazy=False):
                self._queues[child].append(packet)

    def next_deadline(self) -> Optional[float]:
        """Clock time at which :meth:`poll` could release a wave.

        ``None`` for criteria with no time component.  Event loops use
        this to sleep exactly until the earliest release instead of
        polling on a fixed short interval.
        """
        return None

    # -- criterion ----------------------------------------------------------

    def _ready_waves(self) -> List[Wave]:
        raise NotImplementedError

    def _reset_criterion(self) -> None:
        """Hook for subclasses holding extra criterion state."""

    def _pop_full_wave(self) -> Optional[Wave]:
        """Pop one packet per contributing child once every *full*
        member's queue is non-empty (joining children never block; any
        queued packet of theirs still rides along)."""
        if not self._queues:
            return None
        required = [
            q
            for c, q in self._queues.items()
            if c not in self._joining and c not in self._leaving
        ]
        if not required or not all(required):
            return None
        wave = [q.popleft() for q in self._queues.values() if q]
        # A released wave ends the joining grace period: from the next
        # wave on, adopted children are full members.
        self._joining.clear()
        return wave


class WaitForAllFilter(SynchronizationFilter):
    """Release a wave only when every child has contributed a packet."""

    name = "sync-wait-for-all"

    def _ready_waves(self) -> List[Wave]:
        waves: List[Wave] = []
        while True:
            wave = self._pop_full_wave()
            if wave is None:
                return waves
            waves.append(wave)


class TimeOutFilter(SynchronizationFilter):
    """Release a full wave, or a partial one after *timeout* seconds.

    "wait a specified time or until a packet has arrived from every
    child (whichever occurs first)".  The timer starts when the first
    packet of a prospective wave arrives and resets after each release.
    """

    name = "sync-timeout"

    def __init__(
        self,
        children: Sequence[object] = (),
        timeout: float = 0.1,
        clock: Callable[[], float] = time.monotonic,
    ):
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        super().__init__(children, clock)
        self.timeout = timeout
        self._wave_started: Optional[float] = None

    def push(self, child: object, packet: Packet) -> List[Wave]:
        if self._wave_started is None and self.pending == 0:
            self._wave_started = self._clock()
        return super().push(child, packet)

    def _reset_criterion(self) -> None:
        self._wave_started = None

    def next_deadline(self) -> Optional[float]:
        if self._wave_started is None or not self.pending:
            return None
        return self._wave_started + self.timeout

    def _ready_waves(self) -> List[Wave]:
        waves: List[Wave] = []
        while True:
            wave = self._pop_full_wave()
            if wave is None:
                break
            waves.append(wave)
        if waves:
            # Completed waves consume the timer; restart it if packets
            # toward the next wave are already queued.
            self._wave_started = self._clock() if self.pending else None
        if (
            self._wave_started is not None
            and self.pending
            and self._clock() - self._wave_started >= self.timeout
        ):
            partial = [q.popleft() for q in self._queues.values() if q]
            waves.append(partial)
            self._joining.clear()
            self._wave_started = self._clock() if self.pending else None
        return waves


class DoNotWaitFilter(SynchronizationFilter):
    """Pass every packet through immediately as a singleton wave."""

    name = "sync-do-not-wait"

    def push(self, child: object, packet: Packet) -> List[Wave]:
        # Nothing is ever held back, so skip the queue round-trip (an
        # append + pop + full scan of every child queue per packet —
        # measurable on the relay hot path).
        if child not in self._queues:
            raise KeyError(f"unknown child {child!r}")
        return [[packet]]

    def _ready_waves(self) -> List[Wave]:
        waves: List[Wave] = []
        for q in self._queues.values():
            while q:
                waves.append([q.popleft()])
        return waves
