"""Dynamic filter loading (the paper's ``dlopen``/``dlsym`` path).

MRNet loads user filter functions from shared-object files "using the
operating system's API for managing shared objects (e.g., dlopen and
dlsym on UNIX systems)" (§2.4).  The Python equivalent is importing a
module from an arbitrary file path with :mod:`importlib` and fetching
the named function from it.

Loaded modules are cached by absolute path so that repeated
``load_filter_func`` calls (front-end plus every internal process in
real MRNet) execute the module once, as ``dlopen`` would.
"""

from __future__ import annotations

import importlib
import importlib.util
import sys
from pathlib import Path
from types import ModuleType
from typing import Callable, Dict

from .base import FilterError

__all__ = ["load_module", "load_function"]

_module_cache: Dict[str, ModuleType] = {}


def _dotted_name_for(path: Path) -> str | None:
    """Dotted module name when *path* sits inside a package tree.

    Files that belong to an importable package (every ancestor up to
    the package root has ``__init__.py``) must be imported by name so
    their relative imports work — e.g. passing
    ``repro/paradyn/eqclass.py`` as a filter "shared object" resolves
    to ``repro.paradyn.eqclass``.
    """
    parts = [path.stem]
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    if len(parts) == 1:
        return None
    return ".".join(reversed(parts))


def load_module(module_path: str | Path) -> ModuleType:
    """Import a Python file as a module, caching by absolute path."""
    path = Path(module_path).resolve()
    key = str(path)
    if key in _module_cache:
        return _module_cache[key]
    if not path.exists():
        raise FilterError(f"filter module not found: {path}")
    dotted = _dotted_name_for(path)
    if dotted is not None:
        try:
            module = importlib.import_module(dotted)
        except ImportError as exc:
            raise FilterError(
                f"error importing filter module {dotted!r} ({path}): {exc}"
            ) from exc
        _module_cache[key] = module
        return module
    spec = importlib.util.spec_from_file_location(
        f"repro_filter_{path.stem}_{abs(hash(key)) & 0xFFFFFF:x}", path
    )
    if spec is None or spec.loader is None:
        raise FilterError(f"cannot load filter module: {path}")
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    except Exception as exc:
        sys.modules.pop(spec.name, None)
        raise FilterError(f"error executing filter module {path}: {exc}") from exc
    _module_cache[key] = module
    return module


def load_function(module_path: str | Path, func_name: str) -> Callable:
    """Load ``func_name`` from the module at ``module_path``."""
    module = load_module(module_path)
    try:
        func = getattr(module, func_name)
    except AttributeError:
        raise FilterError(
            f"filter function {func_name!r} not found in {module_path}"
        ) from None
    if not callable(func):
        raise FilterError(f"{func_name!r} in {module_path} is not callable")
    return func
