"""Filter registry: ids for built-ins and dynamically-loaded filters.

Real MRNet identifies filters by integer ids (``TFILTER_SUM``, ...)
and lets tools register new ones at run time with
``load_filterFunc(so_file, func_name)`` (paper §2.4).  The registry
reproduces that: built-in transformation and synchronization filters
get well-known ids, and :meth:`FilterRegistry.load_filter_func`
assigns fresh ids to user filters.

Synchronization filters are stateful per stream per node, so the
registry stores *factories* for them; transformation filters are
stateless objects paired with per-stream :class:`FilterState`.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Sequence

from .base import NULL_FILTER, FilterError, FunctionFilter
from .sync import (
    DoNotWaitFilter,
    SynchronizationFilter,
    TimeOutFilter,
    WaitForAllFilter,
)
from .transform import (
    avg_filter,
    concat_filter,
    max_filter,
    min_filter,
    scan_filter,
    sum_filter,
    wavg_filter,
    window_filter,
)

__all__ = [
    "TFILTER_NULL",
    "TFILTER_MIN",
    "TFILTER_MAX",
    "TFILTER_SUM",
    "TFILTER_AVG",
    "TFILTER_WAVG",
    "TFILTER_CONCAT",
    "TFILTER_SCAN",
    "TFILTER_WINDOW",
    "SFILTER_WAITFORALL",
    "SFILTER_TIMEOUT",
    "SFILTER_DONTWAIT",
    "FilterRegistry",
    "default_registry",
]

# Well-known transformation filter ids (mirroring MRNet's constants).
TFILTER_NULL = 0
TFILTER_MIN = 1
TFILTER_MAX = 2
TFILTER_SUM = 3
TFILTER_AVG = 4
TFILTER_CONCAT = 5
TFILTER_WAVG = 6
TFILTER_SCAN = 7
TFILTER_WINDOW = 8

# Well-known synchronization filter ids.
SFILTER_WAITFORALL = 100
SFILTER_TIMEOUT = 101
SFILTER_DONTWAIT = 102

_FIRST_USER_ID = 1000

SyncFactory = Callable[..., SynchronizationFilter]


class FilterRegistry:
    """Maps filter ids to filter objects / factories.

    One registry is shared by a whole network instantiation so that
    ids resolved at the front-end mean the same thing at every comm
    node (real MRNet propagates the shared-object path instead; in a
    single Python process sharing the registry is the equivalent).
    """

    def __init__(self):
        self._transform: Dict[int, FunctionFilter] = {}
        self._sync: Dict[int, SyncFactory] = {}
        self._next_id = _FIRST_USER_ID
        self._install_builtins()

    def _install_builtins(self) -> None:
        self._transform[TFILTER_NULL] = NULL_FILTER
        self._transform[TFILTER_MIN] = min_filter
        self._transform[TFILTER_MAX] = max_filter
        self._transform[TFILTER_SUM] = sum_filter
        self._transform[TFILTER_AVG] = avg_filter
        self._transform[TFILTER_WAVG] = wavg_filter
        self._transform[TFILTER_CONCAT] = concat_filter
        self._transform[TFILTER_SCAN] = scan_filter
        self._transform[TFILTER_WINDOW] = window_filter
        self._sync[SFILTER_WAITFORALL] = WaitForAllFilter
        self._sync[SFILTER_TIMEOUT] = TimeOutFilter
        self._sync[SFILTER_DONTWAIT] = DoNotWaitFilter

    # -- lookup ------------------------------------------------------------

    def get_transform(self, filter_id: int) -> FunctionFilter:
        try:
            return self._transform[filter_id]
        except KeyError:
            raise FilterError(f"unknown transformation filter id {filter_id}") from None

    def is_transform(self, filter_id: int) -> bool:
        return filter_id in self._transform

    def make_sync(
        self,
        filter_id: int,
        children: Sequence[object],
        clock: Callable[[], float] = time.monotonic,
        **params,
    ) -> SynchronizationFilter:
        """Instantiate a synchronization filter for one node's children."""
        try:
            factory = self._sync[filter_id]
        except KeyError:
            raise FilterError(
                f"unknown synchronization filter id {filter_id}"
            ) from None
        return factory(children, clock=clock, **params)

    def is_sync(self, filter_id: int) -> bool:
        return filter_id in self._sync

    # -- registration --------------------------------------------------------

    def register_transform(self, filt: FunctionFilter) -> int:
        """Register a transformation filter object; returns its id."""
        fid = self._next_id
        self._next_id += 1
        self._transform[fid] = filt
        return fid

    def register_sync(self, factory: SyncFactory) -> int:
        """Register a synchronization filter factory; returns its id."""
        fid = self._next_id
        self._next_id += 1
        self._sync[fid] = factory
        return fid

    def load_filter_func(self, module_path: str, func_name: str, fmt=None) -> int:
        """Load a filter function from a Python file (MRNet's dlopen flow).

        ``module_path`` is a path to a ``.py`` file (our stand-in for a
        shared object); ``func_name`` names a filter function inside
        it.  Returns the new filter id.
        """
        from .loader import load_function

        func = load_function(module_path, func_name)
        return self.register_transform(FunctionFilter(func, func_name, fmt))


def default_registry() -> FilterRegistry:
    """A fresh registry with only the built-ins installed."""
    return FilterRegistry()
