"""Call-path prefix-tree merge filter.

The paper's extensibility pitch — "custom filters can be loaded
dynamically into the network to perform tool-specific aggregation
operations" (§1) — found its best-known use after publication in
stack-trace aggregation tools built on MRNet, which merge every
process's call path into one prefix tree annotated with task counts
(a few kilobytes summarising a million stacks).  This module provides
that reduction as a library filter, and it doubles as the repository's
reference example of a *structured* custom aggregation (the built-ins
are all flat numerics).

Wire format: each back-end sends its call path as a string array
(``"%as"``, e.g. ``("main", "solve", "mpi_waitall")``).  The filter's
output — also tree-composable — is a serialized prefix tree as three
parallel arrays:

* ``"%as"`` frame names in preorder,
* ``"%aud"`` depth of each node,
* ``"%auld"`` number of contributing processes per node.

:class:`PathTree` is the in-memory form with merge/serialize/parse;
:class:`PathTreeFilter` wraps it for MRNet streams.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from ..core.formats import parse_format
from ..core.packet import Packet
from .base import FilterError, FilterState, FunctionFilter

__all__ = ["PathTree", "PathTreeFilter", "pathtree_filter"]

_PATH_FMT = parse_format("%as")
_TREE_FMT = parse_format("%as %aud %auld")


class PathTree:
    """A prefix tree of call paths with per-node process counts."""

    __slots__ = ("children", "count")

    def __init__(self):
        self.children: Dict[str, "PathTree"] = {}
        self.count = 0  # processes whose path passes through this node

    # -- building -----------------------------------------------------------

    def add_path(self, frames: Sequence[str], count: int = 1) -> None:
        """Insert one call path contributed by *count* processes."""
        if count < 1:
            raise ValueError("count must be positive")
        node = self
        for frame in frames:
            node = node.children.setdefault(frame, PathTree())
            node.count += count

    def merge(self, other: "PathTree") -> None:
        """Fold *other* into this tree (associative, commutative)."""
        for frame, child in other.children.items():
            mine = self.children.setdefault(frame, PathTree())
            mine.count += child.count
            mine.merge(child)

    # -- queries ----------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return sum(1 + c.num_nodes for c in self.children.values())

    @property
    def num_processes(self) -> int:
        """Processes represented (sum of top-level counts)."""
        return sum(c.count for c in self.children.values())

    def paths(self) -> List[Tuple[Tuple[str, ...], int]]:
        """(path, leaf count) for every leaf, lexicographic order."""
        out: List[Tuple[Tuple[str, ...], int]] = []

        def walk(node: "PathTree", prefix: Tuple[str, ...]) -> None:
            for frame in sorted(node.children):
                child = node.children[frame]
                path = prefix + (frame,)
                consumed = sum(g.count for g in child.children.values())
                ending_here = child.count - consumed
                if ending_here > 0:
                    out.append((path, ending_here))
                walk(child, path)

        walk(self, ())
        return out

    def render(self, indent: str = "  ") -> str:
        """Human-readable tree (STAT-style)."""
        lines: List[str] = []

        def walk(node: "PathTree", depth: int) -> None:
            for frame in sorted(node.children):
                child = node.children[frame]
                lines.append(f"{indent * depth}{frame} [{child.count}]")
                walk(child, depth + 1)

        walk(self, 0)
        return "\n".join(lines)

    # -- codec -----------------------------------------------------------------

    def to_arrays(self) -> Tuple[Tuple[str, ...], Tuple[int, ...], Tuple[int, ...]]:
        """Preorder (names, depths, counts) arrays."""
        names: List[str] = []
        depths: List[int] = []
        counts: List[int] = []

        def walk(node: "PathTree", depth: int) -> None:
            for frame in sorted(node.children):
                child = node.children[frame]
                names.append(frame)
                depths.append(depth)
                counts.append(child.count)
                walk(child, depth + 1)

        walk(self, 0)
        return tuple(names), tuple(depths), tuple(counts)

    @classmethod
    def from_arrays(
        cls,
        names: Sequence[str],
        depths: Sequence[int],
        counts: Sequence[int],
    ) -> "PathTree":
        if not (len(names) == len(depths) == len(counts)):
            raise FilterError("path-tree arrays disagree in length")
        root = cls()
        stack: List[PathTree] = [root]
        for name, depth, count in zip(names, depths, counts):
            if depth + 1 > len(stack):
                raise FilterError(f"malformed preorder: depth jump at {name!r}")
            del stack[depth + 1 :]
            parent = stack[depth]
            if name in parent.children:
                raise FilterError(f"duplicate sibling {name!r} in preorder")
            node = cls()
            node.count = int(count)
            parent.children[name] = node
            stack.append(node)
        return root

    def __eq__(self, other) -> bool:
        if not isinstance(other, PathTree):
            return NotImplemented
        return self.to_arrays() == other.to_arrays()

    def __repr__(self) -> str:
        return f"PathTree(nodes={self.num_nodes}, processes={self.num_processes})"


class PathTreeFilter(FunctionFilter):
    """Merge call paths / partial prefix trees into one prefix tree.

    Accepts ``"%as"`` leaf inputs (one process's call path) and
    ``"%as %aud %auld"`` partial trees from lower levels; emits a
    partial tree.  Bind with Wait-For-All synchronization for one
    merged tree per wave.
    """

    def __init__(self, name: str = "pathtree"):
        super().__init__(self._run, name, None)

    def _run(self, packets: Sequence[Packet], state: FilterState) -> List[Packet]:
        if not packets:
            return []
        tree = PathTree()
        for p in packets:
            if p.fmt == _PATH_FMT:
                (frames,) = p.unpack()
                tree.add_path(frames)
            elif p.fmt == _TREE_FMT:
                tree.merge(PathTree.from_arrays(*p.unpack()))
            else:
                raise FilterError(
                    f"pathtree filter cannot accept format {p.fmt.canonical!r}"
                )
        first = packets[0]
        return [
            Packet(
                first.stream_id,
                first.tag,
                _TREE_FMT,
                tree.to_arrays(),
                origin_rank=first.origin_rank,
            )
        ]


pathtree_filter = PathTreeFilter()


def pathtree_filter_func(packets, state):
    """Module-level filter function form of the path-tree merge filter,
    loadable across process boundaries via ``filter_specs``."""
    return pathtree_filter(packets, state)
