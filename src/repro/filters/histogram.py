"""Histogram transformation filter.

Paradyn "uses a custom histogram filter to place its back-ends into
equivalence classes based on the program resources ... discovered by
each back-end" (paper §1).  This module provides the reusable,
value-histogram half of that machinery; the checksum equivalence-class
filter built on the same pattern lives in
:mod:`repro.paradyn.eqclass`.

The filter is *tree-composable*: leaf inputs are scalar samples
(``"%lf"``) which it bins against edges fixed at construction, while
interior inputs are partial count vectors (``"%auld"``) which it sums
element-wise.  Either way the output is a ``"%auld"`` count vector, so
the same filter id can be bound at every level of the MRNet tree and
the front-end receives the exact global histogram.
"""

from __future__ import annotations

import bisect
from typing import List, Sequence

from ..core.formats import parse_format
from ..core.packet import Packet
from .base import FilterError, FilterState, FunctionFilter

__all__ = ["HistogramFilter"]

_SCALAR_FMT = parse_format("%lf")
_COUNTS_FMT = parse_format("%auld")


class HistogramFilter(FunctionFilter):
    """Histogram values into fixed bins; merge partial histograms.

    Parameters
    ----------
    edges:
        Strictly increasing bin edges ``e0 < e1 < ... < ek``; values
        land in bin *i* when ``e_i <= v < e_{i+1}``.  Values below
        ``e0`` or at/above ``ek`` land in two extra overflow bins, so
        the output vector has ``k + 1`` entries:
        ``[underflow, bin0..bin{k-1}, overflow]`` flattened as
        ``k - 1 + 2`` counts.
    """

    def __init__(self, edges: Sequence[float], name: str = "histogram"):
        edges = [float(e) for e in edges]
        if len(edges) < 2:
            raise FilterError("histogram needs at least two edges")
        if any(a >= b for a, b in zip(edges, edges[1:])):
            raise FilterError("histogram edges must be strictly increasing")
        super().__init__(self._run, name, None)
        self.edges = edges
        self.nbins = len(edges) + 1  # interior bins + under/overflow

    def bin_index(self, value: float) -> int:
        """Index of the count slot *value* falls into."""
        return bisect.bisect_right(self.edges, value)

    def _run(self, packets: Sequence[Packet], state: FilterState) -> List[Packet]:
        if not packets:
            return []
        counts = [0] * self.nbins
        for p in packets:
            if p.fmt == _SCALAR_FMT:
                counts[self.bin_index(p.values[0])] += 1
            elif p.fmt == _COUNTS_FMT:
                partial = p.values[0]
                if len(partial) != self.nbins:
                    raise FilterError(
                        f"partial histogram has {len(partial)} bins, "
                        f"expected {self.nbins}"
                    )
                for i, c in enumerate(partial):
                    counts[i] += c
            else:
                raise FilterError(
                    f"histogram filter cannot accept format "
                    f"{p.fmt.canonical!r}"
                )
        first = packets[0]
        return [
            Packet(
                first.stream_id,
                first.tag,
                _COUNTS_FMT,
                (tuple(counts),),
                origin_rank=first.origin_rank,
            )
        ]
