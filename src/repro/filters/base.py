"""Filter framework core (paper §2.4).

MRNet distinguishes two filter kinds:

* **Synchronization filters** organise asynchronously-arriving packets
  from a node's children into *waves*.  They are type-independent and
  perform no data transformation.
* **Transformation filters** consume a wave of packets and emit one or
  more output packets; they are bound to a packet format and may carry
  state between invocations ("using static storage structures").

The paper's C++ filter functions have the signature::

   void filter_func(std::vector<Packet*>& in,
                    std::vector<Packet*>& out,
                    void** clientData);

We express the same contract in Python: a *filter function* is any
callable ``f(packets: Sequence[Packet], state: FilterState) ->
list[Packet]``.  ``state`` plays the role of ``clientData`` — a
per-stream, per-node mutable mapping that persists across waves.
:class:`TransformationFilter` wraps a filter function together with its
format requirement; :func:`make_filter` adapts plain callables.
"""

from __future__ import annotations

from typing import Callable, List, MutableMapping, Optional, Protocol, Sequence

from ..core.formats import FormatString, parse_format
from ..core.packet import Packet

__all__ = [
    "FilterState",
    "FilterError",
    "FilterFunc",
    "TransformationFilter",
    "FunctionFilter",
    "make_filter",
]


class FilterError(RuntimeError):
    """Raised when a filter is misused (e.g. format mismatch)."""


def _snapshot_value(value):
    """One state value → a JSON-able form (checkpoint encoding).

    Deques keep their bound, numeric arrays flatten to lists; nested
    containers recurse.  Unknown object types are rejected so a
    checkpoint never silently drops state.
    """
    from collections import deque

    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, deque):
        return {
            "__kind__": "deque",
            "maxlen": value.maxlen,
            "items": [_snapshot_value(v) for v in value],
        }
    if isinstance(value, (list, tuple)):
        return [_snapshot_value(v) for v in value]
    if hasattr(value, "tolist"):  # numpy scalar or ndarray
        return {"__kind__": "array", "items": value.tolist()}
    raise FilterError(f"cannot checkpoint state value of type {type(value)!r}")


def _restore_value(value):
    """Inverse of :func:`_snapshot_value`."""
    from collections import deque

    if isinstance(value, dict):
        kind = value.get("__kind__")
        if kind == "deque":
            return deque(
                (_restore_value(v) for v in value["items"]),
                maxlen=value["maxlen"],
            )
        if kind == "array":
            import numpy as np

            return np.asarray(value["items"])
        return {k: _restore_value(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_restore_value(v) for v in value]
    return value


class FilterState(dict, MutableMapping):
    """Per-stream, per-node filter state (the paper's ``clientData``).

    A plain dict subclass: distinct class so signatures read clearly
    and so tests can assert state objects are not shared across nodes.
    """


FilterFunc = Callable[[Sequence[Packet], FilterState], List[Packet]]


class TransformationFilter(Protocol):
    """Structural interface every transformation filter satisfies.

    Attributes
    ----------
    name:
        Human-readable filter name (unique within a registry).
    fmt:
        Required packet format, or ``None`` for format-agnostic
        filters (e.g. the null filter).
    """

    name: str
    fmt: Optional[FormatString]

    def make_state(self) -> FilterState:
        """Create fresh per-stream state for one node."""
        ...

    def __call__(
        self, packets: Sequence[Packet], state: FilterState
    ) -> List[Packet]:
        """Transform one wave of input packets into output packets."""
        ...


class FunctionFilter:
    """Adapter turning a plain filter function into a filter object.

    ``chunkwise`` marks filters whose reduction commutes with slicing
    the wave's array payload: running the filter once per aligned chunk
    (one fragment from every child) and concatenating the outputs
    equals running it once on the whole wave.  Element-wise reductions
    (min/max/sum/avg) qualify — chunks partition the element index
    space, so the cross-child reduction of each element range is final.
    Filters that mix elements across positions (concat, scan, window)
    or emit more than one packet per wave (null) do not; their chunked
    waves are reassembled before the filter runs.  Chunkwise filters
    are what :class:`~repro.core.stream_manager.StreamManager` runs
    *incrementally per chunk*, giving pipelined waves.
    """

    #: Default: reassemble chunked waves before running this filter.
    chunkwise: bool = False

    def __init__(
        self,
        func: FilterFunc,
        name: str,
        fmt: str | FormatString | None = None,
        state_factory: Callable[[], FilterState] = FilterState,
    ):
        self._func = func
        self.name = name
        self.fmt = (
            fmt
            if isinstance(fmt, FormatString) or fmt is None
            else parse_format(fmt)
        )
        self._state_factory = state_factory

    def make_state(self) -> FilterState:
        return self._state_factory()

    def get_state(self, state: FilterState) -> dict:
        """Serialize one node's per-stream *state* to a JSON-able dict.

        The checkpoint path (``TAG_CHECKPOINT``) ships this snapshot to
        the node's parent so an adopter can resume partial reductions
        after the node dies.  The default handles scalars, strings,
        (bounded) deques, numeric arrays, and nested containers —
        everything the built-in stateful filters (scan, window) keep.
        """
        return {key: _snapshot_value(value) for key, value in state.items()}

    def set_state(self, state: FilterState, snapshot: dict) -> None:
        """Restore *state* from a :meth:`get_state` snapshot, in place."""
        state.clear()
        for key, value in snapshot.items():
            state[key] = _restore_value(value)

    def check_packet(self, packet: Packet) -> None:
        """Enforce the paper's type requirement for transformation filters.

        "the data format string of the stream's packets and the filter
        must be the same" (§2.4).
        """
        if self.fmt is not None and packet.fmt != self.fmt:
            raise FilterError(
                f"filter {self.name!r} requires format "
                f"{self.fmt.canonical!r} but packet has "
                f"{packet.fmt.canonical!r}"
            )

    def __call__(
        self, packets: Sequence[Packet], state: FilterState
    ) -> List[Packet]:
        for packet in packets:
            self.check_packet(packet)
        out = self._func(packets, state)
        if out is None:
            return []
        return list(out)

    def __repr__(self) -> str:
        fmt = self.fmt.canonical if self.fmt is not None else "*"
        return f"<Filter {self.name} fmt={fmt!r}>"


def make_filter(
    func: FilterFunc,
    name: str | None = None,
    fmt: str | FormatString | None = None,
) -> FunctionFilter:
    """Wrap *func* as a :class:`FunctionFilter`.

    ``name`` defaults to the function's ``__name__``; ``fmt`` of
    ``None`` means the filter accepts packets of any format.
    """
    return FunctionFilter(func, name or func.__name__, fmt)


def null_filter(packets: Sequence[Packet], state: FilterState) -> List[Packet]:
    """Identity transformation: pass every packet through unchanged."""
    return list(packets)


NULL_FILTER = FunctionFilter(null_filter, "null", None)
