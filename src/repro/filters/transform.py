"""Built-in transformation filters (paper §2.4).

The paper ships "basic scalar operations: min, max, sum and average on
integers or floats" and "concatenation: operation that inputs n scalars
and outputs a vector of length n of the same base type".  All are
reproduced here, plus the weighted-average variant needed for exact
averages over unbalanced trees (the plain average filter — like real
MRNet's ``TFILTER_AVG`` — averages its direct inputs, which is exact
only when every input summarises the same number of leaves).

Reduction filters operate *field-wise across the packets of one wave*:
a wave of packets with format ``"%d %f"`` reduces to a single packet
``"%d %f"`` whose first field is the reduction of all first fields and
so on.  Array fields reduce element-wise and must agree in length.

Array fields that arrived as numpy views (large wire arrays decode to
read-only ndarrays — see :mod:`repro.core.packet`) reduce *vectorized*:
one ufunc call per input instead of a Python-level loop per element,
and the output packet carries the result ndarray via
:meth:`Packet.trusted` so it re-encodes with a single byteswap copy.
Sums of 64-bit integer arrays keep the exact Python fold (numpy would
wrap on overflow where the scalar path raises); 32-bit-and-narrower
sums accumulate in int64, which cannot overflow, and are bounds-checked
against the field type exactly like the eager path.

Every filter here is associative in the tree sense: reducing partial
results of disjoint waves equals reducing the union (for ``avg`` this
holds only for balanced fan-in; use ``wavg`` otherwise), which is what
makes them usable at every level of the MRNet tree.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from ..core.formats import FormatError, FormatString, TypeCode, parse_format
from ..core.packet import NATIVE_DTYPE, Packet
from .base import FilterError, FilterState, FunctionFilter

__all__ = [
    "ReductionFilter",
    "ConcatenationFilter",
    "AverageFilter",
    "WeightedAverageFilter",
    "ScanFilter",
    "WindowFilter",
    "min_filter",
    "max_filter",
    "sum_filter",
    "avg_filter",
    "concat_filter",
    "wavg_filter",
    "scan_filter",
    "window_filter",
]

# 64-bit integer sums stay on the exact Python fold: an int64/uint64
# accumulator could silently wrap where Python ints cannot.
_WIDE_INTS = (TypeCode.INT64, TypeCode.UINT64)


def _reduce_field(op: Callable[[Any, Any], Any], values: Sequence[Any], is_array: bool):
    """Fold *op* over one field position of a wave (exact scalar path)."""
    if is_array:
        values = [v.tolist() if isinstance(v, np.ndarray) else v for v in values]
        lengths = {len(v) for v in values}
        if len(lengths) > 1:
            raise FilterError(
                f"array fields must agree in length to reduce, got {sorted(lengths)}"
            )
        it = iter(values)
        acc = list(next(it))
        for vec in it:
            for i, x in enumerate(vec):
                acc[i] = op(acc[i], x)
        return tuple(acc)
    it = iter(values)
    acc = next(it)
    for x in it:
        acc = op(acc, x)
    return acc


def _check_lengths(values: Sequence[Any]) -> None:
    lengths = {len(v) for v in values}
    if len(lengths) > 1:
        raise FilterError(
            f"array fields must agree in length to reduce, got {sorted(lengths)}"
        )


def _reduce_field_vector(
    ufunc: np.ufunc, code: TypeCode, values: Sequence[Any]
) -> np.ndarray:
    """Vectorized element-wise reduction of one ndarray-backed field."""
    _check_lengths(values)
    if code.is_float:
        dtype = np.dtype(np.float64)
    elif ufunc is np.add:
        dtype = np.dtype(np.int64)  # cannot overflow for <= 32-bit elements
    else:
        dtype = NATIVE_DTYPE[code]  # min/max stay in-type
    arrs = [np.asarray(v, dtype=dtype) for v in values]
    acc = arrs[0]
    for arr in arrs[1:]:
        acc = ufunc(acc, arr)
    if code.is_integral and ufunc is np.add and acc.size:
        lo, hi = code.bounds
        if int(acc.min()) < lo or int(acc.max()) > hi:
            raise FormatError(f"array values out of range for {code}")
    if acc is arrs[0] and acc.flags.writeable is False:
        return acc
    acc.setflags(write=False)
    return acc


def _emit(first: Packet, values: Sequence[Any]) -> List[Packet]:
    """Re-stamp *first* with computed *values*, keeping ndarrays lazy."""
    values = tuple(values)
    if any(isinstance(v, np.ndarray) for v in values):
        return [
            Packet.trusted(
                first.stream_id, first.tag, first.fmt, values, first.origin_rank
            )
        ]
    return [first.replace(values=values)]


class ReductionFilter(FunctionFilter):
    """Field-wise reduction of a wave into a single packet.

    Parameters
    ----------
    op:
        Associative, commutative binary operator.
    name:
        Registry name, e.g. ``"sum"``.
    fmt:
        Optional required format; ``None`` accepts any numeric format
        (the wave itself must still be format-homogeneous).
    ufunc:
        Optional numpy equivalent of *op*; when given, array fields
        that arrived as ndarrays reduce vectorized.
    """

    def __init__(
        self,
        op: Callable[[Any, Any], Any],
        name: str,
        fmt=None,
        ufunc: Optional[np.ufunc] = None,
    ):
        super().__init__(self._run, name, fmt)
        self._op = op
        self._ufunc = ufunc

    def _check_numeric(self, fmt: FormatString) -> None:
        for field in fmt.fields:
            if not (field.code.is_integral or field.code.is_float):
                raise FilterError(
                    f"filter {self.name!r} cannot reduce field {field.spec}"
                )

    def _vectorizable(self, field, vals: Sequence[Any]) -> bool:
        return (
            field.is_array
            and self._ufunc is not None
            and not (self._ufunc is np.add and field.code in _WIDE_INTS)
            and any(isinstance(v, np.ndarray) for v in vals)
        )

    def _run(self, packets: Sequence[Packet], state: FilterState) -> List[Packet]:
        if not packets:
            return []
        first = packets[0]
        for p in packets[1:]:
            if p.fmt != first.fmt:
                raise FilterError(
                    f"wave mixes formats {first.fmt.canonical!r} and "
                    f"{p.fmt.canonical!r}"
                )
        self._check_numeric(first.fmt)
        out_values = []
        for i, field in enumerate(first.fmt.fields):
            vals = [p.raw_values[i] for p in packets]
            if self._vectorizable(field, vals):
                out_values.append(
                    _reduce_field_vector(self._ufunc, field.code, vals)
                )
            else:
                out_values.append(_reduce_field(self._op, vals, field.is_array))
        return _emit(first, out_values)


class AverageFilter(FunctionFilter):
    """Arithmetic mean of direct inputs (real MRNet ``TFILTER_AVG``).

    Integer fields use floor division to stay in-type, mirroring the
    C implementation; float fields average exactly.  Over a multi-level
    tree this computes a *mean of partial means*, exact only when each
    input aggregates equally many leaves — use
    :class:`WeightedAverageFilter` when fan-in is uneven.
    """

    def __init__(self, name: str = "avg", fmt=None):
        super().__init__(self._run, name, fmt)

    def _run(self, packets: Sequence[Packet], state: FilterState) -> List[Packet]:
        if not packets:
            return []
        first = packets[0]
        for p in packets[1:]:
            if p.fmt != first.fmt:
                raise FilterError("wave mixes formats")
        n = len(packets)
        out_values = []
        for i, field in enumerate(first.fmt.fields):
            if not (field.code.is_integral or field.code.is_float):
                raise FilterError(f"avg cannot reduce field {field.spec}")
            vals = [p.raw_values[i] for p in packets]
            if (
                field.is_array
                and field.code not in _WIDE_INTS
                and any(isinstance(v, np.ndarray) for v in vals)
            ):
                # Vectorized: sum then divide element-wise.  The mean
                # of in-range values is in-range, so no bounds check.
                _check_lengths(vals)
                if field.code.is_float:
                    arrs = [np.asarray(v, dtype=np.float64) for v in vals]
                else:
                    arrs = [np.asarray(v, dtype=np.int64) for v in vals]
                total = arrs[0]
                for arr in arrs[1:]:
                    total = total + arr
                avg = total // n if field.code.is_integral else total / n
                avg.setflags(write=False)
                out_values.append(avg)
                continue
            total = _reduce_field(lambda a, b: a + b, vals, field.is_array)
            if field.is_array:
                if field.code.is_integral:
                    out_values.append(tuple(t // n for t in total))
                else:
                    out_values.append(tuple(t / n for t in total))
            else:
                out_values.append(total // n if field.code.is_integral else total / n)
        return _emit(first, out_values)


class WeightedAverageFilter(FunctionFilter):
    """Exact tree average over ``"%lf %ud"`` (partial mean, leaf count).

    Back-ends send ``(value, 1)``; every node outputs the count-weighted
    mean of its inputs together with the total count, so the value the
    front-end receives is the exact global mean regardless of tree
    shape.
    """

    FMT = parse_format("%lf %ud")

    def __init__(self, name: str = "wavg"):
        super().__init__(self._run, name, self.FMT)

    def _run(self, packets: Sequence[Packet], state: FilterState) -> List[Packet]:
        if not packets:
            return []
        total_count = sum(p.values[1] for p in packets)
        if total_count == 0:
            return [packets[0].replace(values=(0.0, 0))]
        weighted = sum(p.values[0] * p.values[1] for p in packets)
        return [packets[0].replace(values=(weighted / total_count, total_count))]


class ConcatenationFilter(FunctionFilter):
    """Concatenate scalar or array inputs into one array packet.

    "inputs n scalars and outputs a vector of length n of the same base
    type".  At upper tree levels the inputs are already vectors, so
    array inputs are accepted and flattened; ordering follows the wave
    order (i.e. child order), which preserves back-end rank order when
    used with a Wait-For-All synchronizer over an order-preserving
    tree.  Numeric inputs that arrived as ndarray views concatenate
    with one ``np.concatenate`` call and stay an ndarray end-to-end.
    """

    def __init__(self, name: str = "concat"):
        super().__init__(self._run, name, None)

    def _run(self, packets: Sequence[Packet], state: FilterState) -> List[Packet]:
        if not packets:
            return []
        first = packets[0]
        if len(first.fmt.fields) != 1:
            raise FilterError("concat requires single-field packets")
        code = first.fmt.fields[0].code
        for p in packets:
            if len(p.fmt.fields) != 1 or p.fmt.fields[0].code is not code:
                raise FilterError(
                    f"concat wave mixes base types "
                    f"({first.fmt.canonical!r} vs {p.fmt.canonical!r})"
                )
        out_fmt = parse_format(f"%a{code.value}")
        vals = [p.raw_values[0] for p in packets]
        if code is not TypeCode.STRING and any(
            isinstance(v, np.ndarray) for v in vals
        ):
            dtype = NATIVE_DTYPE[code]
            parts = [
                np.asarray(v, dtype=dtype)
                if p.fmt.fields[0].is_array
                else np.asarray([v], dtype=dtype)
                for p, v in zip(packets, vals)
            ]
            out_arr = np.concatenate(parts)
            out_arr.setflags(write=False)
            return [
                Packet.trusted(
                    first.stream_id,
                    first.tag,
                    out_fmt,
                    (out_arr,),
                    first.origin_rank,
                )
            ]
        out: List[Any] = []
        for p, v in zip(packets, vals):
            if p.fmt.fields[0].is_array:
                out.extend(v.tolist() if isinstance(v, np.ndarray) else v)
            else:
                out.append(v)
        return [
            Packet(
                first.stream_id,
                first.tag,
                out_fmt,
                (tuple(out),),
                origin_rank=first.origin_rank,
            )
        ]


class ScanFilter(FunctionFilter):
    """Prefix scan (running sum) across the wave, in child order.

    The tree-collective formulation of ``MPI_Scan`` (NetFPGA scan,
    arXiv:1408.4939): each back-end contributes one numeric block — a
    scalar or a single array field — and the front-end receives the
    element-by-element running sum over all contributions, ordered by
    wave (i.e. child/rank) order.

    Scan composes associatively across tree levels through a flagged
    output convention.  Raw contributions are single-field packets
    (``"%<code>"`` or ``"%a<code>"``); a node's output is
    ``"%d %a<code>"`` whose leading flag is 1, meaning "this block is
    already scanned".  When a node's inputs include flagged blocks
    from lower levels, they are used as-is; raw blocks are cumsum'd;
    then each block is offset by the running total of the blocks
    before it — ``A ∥ (B + last(A))`` — which is exactly how partial
    scans of disjoint rank ranges compose.

    Per-node partial state rides :class:`FilterState`: after every
    wave ``state["last_total"]`` holds the wave's final cumulative
    value, so a tool-side filter stacked on top can build running
    scans across waves.
    """

    #: Leading already-scanned flag prepended to every output block.
    FLAG_SCANNED = 1

    def __init__(self, name: str = "scan"):
        super().__init__(self._run, name, None)

    @staticmethod
    def _block(packet: Packet):
        """One input as ``(code, is_scanned, 1-D ndarray)``."""
        fields = packet.fmt.fields
        if (
            len(fields) == 2
            and not fields[0].is_array
            and fields[0].code is TypeCode.INT32
            and fields[1].is_array
        ):
            flag = packet.raw_values[0]
            if flag == ScanFilter.FLAG_SCANNED:
                return fields[1].code, True, packet.raw_values[1]
        if len(fields) != 1:
            raise FilterError(
                f"scan requires single-field contributions, got "
                f"{packet.fmt.canonical!r}"
            )
        spec = fields[0]
        if spec.code is TypeCode.STRING or spec.code is TypeCode.BYTES:
            raise FilterError(f"scan cannot scan field {spec.spec}")
        value = packet.raw_values[0]
        if not spec.is_array:
            value = (value,)
        return spec.code, False, value

    def _run(self, packets: Sequence[Packet], state: FilterState) -> List[Packet]:
        if not packets:
            return []
        blocks = [self._block(p) for p in packets]
        code = blocks[0][0]
        if any(b[0] is not code for b in blocks):
            raise FilterError("scan wave mixes base types")
        if code.is_float:
            acc_dtype = np.dtype(np.float64)
        elif code is TypeCode.UINT64:
            acc_dtype = np.dtype(np.uint64)
        else:
            acc_dtype = np.dtype(np.int64)
        out_parts: List[np.ndarray] = []
        carry = acc_dtype.type(0)
        for _code, scanned, value in blocks:
            arr = np.asarray(value, dtype=acc_dtype)
            if not scanned:
                arr = np.cumsum(arr, dtype=acc_dtype)
            if carry:
                arr = arr + carry
            if arr.size:
                carry = arr[-1]
            out_parts.append(arr)
        out_arr = np.concatenate(out_parts) if out_parts else np.empty(0, acc_dtype)
        if code.is_integral and out_arr.size:
            lo, hi = code.bounds
            if int(out_arr.min()) < lo or int(out_arr.max()) > hi:
                raise FormatError(f"array values out of range for {code}")
        out_arr = np.asarray(out_arr, dtype=NATIVE_DTYPE[code])
        out_arr.setflags(write=False)
        state["last_total"] = out_arr[-1].item() if out_arr.size else 0
        first = packets[0]
        out_fmt = parse_format(f"%d %a{code.value}")
        return [
            Packet.trusted(
                first.stream_id,
                first.tag,
                out_fmt,
                (self.FLAG_SCANNED, out_arr),
                first.origin_rank,
            )
        ]


class WindowFilter(FunctionFilter):
    """Windowed aggregation: mean of the last *window* wave sums.

    Each wave is first reduced element-wise across children (sum), and
    that per-wave total is pushed into a sliding window riding
    :class:`FilterState` (``state["window"]``, a bounded deque).  The
    emitted packet is the element-wise mean over the window — a
    smoothed time series of the tree-wide aggregate, one output per
    wave.  Integer fields floor-divide to stay in-type, mirroring
    :class:`AverageFilter`; contributions must be single numeric
    fields of equal length.
    """

    def __init__(self, name: str = "window", window: int = 4):
        super().__init__(self._run, name, None)
        if window < 1:
            raise FilterError("window must be >= 1")
        self.window = window

    def _run(self, packets: Sequence[Packet], state: FilterState) -> List[Packet]:
        if not packets:
            return []
        first = packets[0]
        fields = first.fmt.fields
        if len(fields) != 1:
            raise FilterError("window requires single-field contributions")
        code = fields[0].code
        if not (code.is_integral or code.is_float):
            raise FilterError(f"window cannot aggregate field {fields[0].spec}")
        for p in packets[1:]:
            if p.fmt != first.fmt:
                raise FilterError("wave mixes formats")
        acc_dtype = np.dtype(np.float64 if code.is_float else np.int64)
        vals = [
            np.atleast_1d(np.asarray(p.raw_values[0], dtype=acc_dtype))
            for p in packets
        ]
        _check_lengths(vals)
        total = vals[0]
        for arr in vals[1:]:
            total = total + arr
        window = state.get("window")
        if window is None or window.maxlen != self.window:
            from collections import deque

            window = state["window"] = deque(maxlen=self.window)
        window.append(total)
        items = list(window)
        mean = items[0].astype(acc_dtype)
        for arr in items[1:]:
            mean = mean + arr
        n = len(items)
        mean = mean // n if code.is_integral else mean / n
        if code.is_integral:
            lo, hi = code.bounds
            if mean.size and (int(mean.min()) < lo or int(mean.max()) > hi):
                raise FormatError(f"array values out of range for {code}")
        out = np.asarray(mean, dtype=NATIVE_DTYPE[code])
        out.setflags(write=False)
        if fields[0].is_array:
            return [
                Packet.trusted(
                    first.stream_id, first.tag, first.fmt, (out,), first.origin_rank
                )
            ]
        return [first.replace(values=(out[0].item(),))]


min_filter = ReductionFilter(min, "min", ufunc=np.minimum)
max_filter = ReductionFilter(max, "max", ufunc=np.maximum)
sum_filter = ReductionFilter(lambda a, b: a + b, "sum", ufunc=np.add)
avg_filter = AverageFilter()
wavg_filter = WeightedAverageFilter()
concat_filter = ConcatenationFilter()
scan_filter = ScanFilter()
window_filter = WindowFilter()

# Element-wise reductions commute with slicing the element index space,
# so these four may run incrementally over aligned pipeline fragments.
min_filter.chunkwise = True
max_filter.chunkwise = True
sum_filter.chunkwise = True
avg_filter.chunkwise = True
