"""Built-in transformation filters (paper §2.4).

The paper ships "basic scalar operations: min, max, sum and average on
integers or floats" and "concatenation: operation that inputs n scalars
and outputs a vector of length n of the same base type".  All are
reproduced here, plus the weighted-average variant needed for exact
averages over unbalanced trees (the plain average filter — like real
MRNet's ``TFILTER_AVG`` — averages its direct inputs, which is exact
only when every input summarises the same number of leaves).

Reduction filters operate *field-wise across the packets of one wave*:
a wave of packets with format ``"%d %f"`` reduces to a single packet
``"%d %f"`` whose first field is the reduction of all first fields and
so on.  Array fields reduce element-wise and must agree in length.

Every filter here is associative in the tree sense: reducing partial
results of disjoint waves equals reducing the union (for ``avg`` this
holds only for balanced fan-in; use ``wavg`` otherwise), which is what
makes them usable at every level of the MRNet tree.
"""

from __future__ import annotations

from typing import Any, Callable, List, Sequence

from ..core.formats import FormatString, parse_format
from ..core.packet import Packet
from .base import FilterError, FilterState, FunctionFilter

__all__ = [
    "ReductionFilter",
    "ConcatenationFilter",
    "AverageFilter",
    "WeightedAverageFilter",
    "min_filter",
    "max_filter",
    "sum_filter",
    "avg_filter",
    "concat_filter",
    "wavg_filter",
]


def _reduce_field(op: Callable[[Any, Any], Any], values: Sequence[Any], is_array: bool):
    """Fold *op* over one field position of a wave."""
    if is_array:
        lengths = {len(v) for v in values}
        if len(lengths) > 1:
            raise FilterError(
                f"array fields must agree in length to reduce, got {sorted(lengths)}"
            )
        it = iter(values)
        acc = list(next(it))
        for vec in it:
            for i, x in enumerate(vec):
                acc[i] = op(acc[i], x)
        return tuple(acc)
    it = iter(values)
    acc = next(it)
    for x in it:
        acc = op(acc, x)
    return acc


class ReductionFilter(FunctionFilter):
    """Field-wise reduction of a wave into a single packet.

    Parameters
    ----------
    op:
        Associative, commutative binary operator.
    name:
        Registry name, e.g. ``"sum"``.
    fmt:
        Optional required format; ``None`` accepts any numeric format
        (the wave itself must still be format-homogeneous).
    """

    def __init__(self, op: Callable[[Any, Any], Any], name: str, fmt=None):
        super().__init__(self._run, name, fmt)
        self._op = op

    def _check_numeric(self, fmt: FormatString) -> None:
        for field in fmt.fields:
            if not (field.code.is_integral or field.code.is_float):
                raise FilterError(
                    f"filter {self.name!r} cannot reduce field {field.spec}"
                )

    def _run(self, packets: Sequence[Packet], state: FilterState) -> List[Packet]:
        if not packets:
            return []
        first = packets[0]
        for p in packets[1:]:
            if p.fmt != first.fmt:
                raise FilterError(
                    f"wave mixes formats {first.fmt.canonical!r} and "
                    f"{p.fmt.canonical!r}"
                )
        self._check_numeric(first.fmt)
        values = tuple(
            _reduce_field(
                self._op, [p.values[i] for p in packets], field.is_array
            )
            for i, field in enumerate(first.fmt.fields)
        )
        return [first.replace(values=values)]


class AverageFilter(FunctionFilter):
    """Arithmetic mean of direct inputs (real MRNet ``TFILTER_AVG``).

    Integer fields use floor division to stay in-type, mirroring the
    C implementation; float fields average exactly.  Over a multi-level
    tree this computes a *mean of partial means*, exact only when each
    input aggregates equally many leaves — use
    :class:`WeightedAverageFilter` when fan-in is uneven.
    """

    def __init__(self, name: str = "avg", fmt=None):
        super().__init__(self._run, name, fmt)

    def _run(self, packets: Sequence[Packet], state: FilterState) -> List[Packet]:
        if not packets:
            return []
        first = packets[0]
        for p in packets[1:]:
            if p.fmt != first.fmt:
                raise FilterError("wave mixes formats")
        n = len(packets)
        out_values = []
        for i, field in enumerate(first.fmt.fields):
            if not (field.code.is_integral or field.code.is_float):
                raise FilterError(f"avg cannot reduce field {field.spec}")
            total = _reduce_field(
                lambda a, b: a + b, [p.values[i] for p in packets], field.is_array
            )
            if field.is_array:
                if field.code.is_integral:
                    out_values.append(tuple(t // n for t in total))
                else:
                    out_values.append(tuple(t / n for t in total))
            else:
                out_values.append(total // n if field.code.is_integral else total / n)
        return [first.replace(values=tuple(out_values))]


class WeightedAverageFilter(FunctionFilter):
    """Exact tree average over ``"%lf %ud"`` (partial mean, leaf count).

    Back-ends send ``(value, 1)``; every node outputs the count-weighted
    mean of its inputs together with the total count, so the value the
    front-end receives is the exact global mean regardless of tree
    shape.
    """

    FMT = parse_format("%lf %ud")

    def __init__(self, name: str = "wavg"):
        super().__init__(self._run, name, self.FMT)

    def _run(self, packets: Sequence[Packet], state: FilterState) -> List[Packet]:
        if not packets:
            return []
        total_count = sum(p.values[1] for p in packets)
        if total_count == 0:
            return [packets[0].replace(values=(0.0, 0))]
        weighted = sum(p.values[0] * p.values[1] for p in packets)
        return [packets[0].replace(values=(weighted / total_count, total_count))]


class ConcatenationFilter(FunctionFilter):
    """Concatenate scalar or array inputs into one array packet.

    "inputs n scalars and outputs a vector of length n of the same base
    type".  At upper tree levels the inputs are already vectors, so
    array inputs are accepted and flattened; ordering follows the wave
    order (i.e. child order), which preserves back-end rank order when
    used with a Wait-For-All synchronizer over an order-preserving
    tree.
    """

    def __init__(self, name: str = "concat"):
        super().__init__(self._run, name, None)

    def _run(self, packets: Sequence[Packet], state: FilterState) -> List[Packet]:
        if not packets:
            return []
        first = packets[0]
        if len(first.fmt.fields) != 1:
            raise FilterError("concat requires single-field packets")
        code = first.fmt.fields[0].code
        out: List[Any] = []
        for p in packets:
            if len(p.fmt.fields) != 1 or p.fmt.fields[0].code is not code:
                raise FilterError(
                    f"concat wave mixes base types "
                    f"({first.fmt.canonical!r} vs {p.fmt.canonical!r})"
                )
            if p.fmt.fields[0].is_array:
                out.extend(p.values[0])
            else:
                out.append(p.values[0])
        out_fmt = parse_format(f"%a{code.value}")
        return [
            Packet(
                first.stream_id,
                first.tag,
                out_fmt,
                (tuple(out),),
                origin_rank=first.origin_rank,
            )
        ]


min_filter = ReductionFilter(min, "min")
max_filter = ReductionFilter(max, "max")
sum_filter = ReductionFilter(lambda a, b: a + b, "sum")
avg_filter = AverageFilter()
wavg_filter = WeightedAverageFilter()
concat_filter = ConcatenationFilter()
