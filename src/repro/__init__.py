"""PyMRNet: a Python reproduction of MRNet (Roth, Arnold & Miller, SC'03).

MRNet is a software-based multicast/reduction network for scalable
parallel tools: a tree of internal processes between a tool's
front-end and back-ends that multicasts control downstream and
aggregates data upstream through synchronization and transformation
filters.

Quick start (Figure 2's float-maximum tool)::

    from repro import Network, TFILTER_MAX
    from repro.topology import balanced_tree

    with Network(balanced_tree(4, 2)) as net:
        comm = net.get_broadcast_communicator()
        stream = net.new_stream(comm, transform=TFILTER_MAX)
        stream.send("%d", 17)                      # broadcast the init
        for rank, be in net.backends.items():      # drive the back-ends
            pkt, bstream = be.recv()
            bstream.send("%lf", float(rank))
        (maximum,) = stream.recv_values()

Subpackages: :mod:`repro.core` (packets, streams, comm nodes, Network
API), :mod:`repro.filters`, :mod:`repro.topology`,
:mod:`repro.transport`, :mod:`repro.sim` (the Blue Pacific stand-in
that regenerates the paper's figures), :mod:`repro.paradyn` (the §3
real-world tool integration).
"""

from .core import (
    BackEnd,
    BackEndStream,
    Communicator,
    FormatError,
    FormatString,
    Network,
    NetworkError,
    NetworkShutdown,
    Packet,
    PacketDecodeError,
    Stream,
    StreamClosed,
    parse_format,
)
from .filters import (
    SFILTER_DONTWAIT,
    SFILTER_TIMEOUT,
    SFILTER_WAITFORALL,
    TFILTER_AVG,
    TFILTER_CONCAT,
    TFILTER_MAX,
    TFILTER_MIN,
    TFILTER_NULL,
    TFILTER_SCAN,
    TFILTER_SUM,
    TFILTER_WAVG,
    TFILTER_WINDOW,
    FilterError,
    FilterState,
    make_filter,
)

__version__ = "1.0.0"

__all__ = [
    "Network",
    "NetworkError",
    "Communicator",
    "Stream",
    "StreamClosed",
    "BackEnd",
    "BackEndStream",
    "NetworkShutdown",
    "Packet",
    "PacketDecodeError",
    "FormatString",
    "FormatError",
    "parse_format",
    "FilterError",
    "FilterState",
    "make_filter",
    "TFILTER_NULL",
    "TFILTER_MIN",
    "TFILTER_MAX",
    "TFILTER_SUM",
    "TFILTER_AVG",
    "TFILTER_WAVG",
    "TFILTER_CONCAT",
    "TFILTER_SCAN",
    "TFILTER_WINDOW",
    "SFILTER_WAITFORALL",
    "SFILTER_TIMEOUT",
    "SFILTER_DONTWAIT",
    "__version__",
]
