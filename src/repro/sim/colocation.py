"""Co-location analysis: internal processes vs. application processes
(paper §2.6).

The paper argues against co-locating MRNet internal processes with
application processes on two grounds:

1. **contention** — "the internal processes would contend with
   application processes for CPU and network resources, perhaps
   seriously impacting the application's performance"; and
2. **imbalance** — "differing loads across MRNet internal processes
   could create an imbalance among the application processes, skewing
   their performance.  Because a parallel program's speed is often
   limited by its slowest process, this performance skew would
   increase the tool's impact on the application."

This module quantifies both with a bulk-synchronous application model:
every application process computes for ``iteration_compute`` seconds
per iteration and then synchronizes, so the iteration time is the
*maximum* per-process compute time.  A co-located internal process
steals CPU from its host in proportion to the tool traffic it handles
(fan-in × message rate × per-message cost), slowing exactly the
application processes that share its host — contention *and*
imbalance in one number.  The paper's recommended dedicated placement
leaves every application host untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from ..topology.spec import TopologySpec

__all__ = ["ColocationParams", "ColocationResult", "simulate_colocation"]


@dataclass(frozen=True)
class ColocationParams:
    """Knobs of the co-location model."""

    #: Application compute time per BSP iteration (seconds).
    iteration_compute: float = 1.0
    #: CPU cost an internal process pays per tool message handled.
    per_message_cost: float = 120e-6
    #: CPUs per host (Blue Pacific nodes had four 604e processors; one
    #: is assumed to run the application process, so tool load on the
    #: same CPU slows the app 1:1 while spare CPUs absorb nothing of
    #: the app's share under the conservative single-CPU-share model).
    contention: float = 1.0


@dataclass
class ColocationResult:
    """Application-impact metrics for one placement."""

    #: Per-application-process iteration time (seconds), indexed by rank.
    per_process_time: Dict[int, float]
    #: Tool CPU utilization of each host carrying an internal process.
    tool_utilization: Dict[str, float]

    @property
    def iteration_time(self) -> float:
        """BSP iteration time: the slowest process gates everyone."""
        return max(self.per_process_time.values())

    @property
    def mean_process_time(self) -> float:
        times = list(self.per_process_time.values())
        return sum(times) / len(times)

    @property
    def imbalance(self) -> float:
        """max/mean process time: 1.0 means perfectly balanced."""
        return self.iteration_time / self.mean_process_time

    @property
    def slowdown(self) -> float:
        """Iteration time relative to an undisturbed application."""
        base = min(self.per_process_time.values())
        return self.iteration_time / base if base > 0 else float("inf")


def simulate_colocation(
    spec: TopologySpec,
    messages_per_second: float,
    params: ColocationParams = ColocationParams(),
) -> ColocationResult:
    """Application impact of the tool under the given placement.

    ``spec`` encodes the placement through its host assignment: an
    application process runs beside every *back-end* (leaf) host; an
    internal process on the same host as some back-end steals CPU from
    that host's application process.  With the dedicated placement
    (distinct hosts everywhere) no application host carries tool load
    and the result is perfectly balanced.

    ``messages_per_second`` is the per-back-end upstream message rate
    (e.g. ``5 * metrics`` for Paradyn's sampling); an internal process
    with fan-in *k* handles ``k``× that rate plus one forward.
    """
    if messages_per_second < 0:
        raise ValueError("message rate cannot be negative")
    # Tool CPU utilization per host from internal processes.
    tool_util: Dict[str, float] = {}
    for node in spec.nodes():
        if node.is_leaf or node is spec.root:
            continue
        fanin = len(node.children)
        handled = messages_per_second * (fanin + 1)  # receives + forward
        util = min(1.0, handled * params.per_message_cost)
        tool_util[node.host] = tool_util.get(node.host, 0.0) + util

    per_process: Dict[int, float] = {}
    for rank, leaf in enumerate(spec.leaves()):
        stolen = min(1.0, tool_util.get(leaf.host, 0.0) * params.contention)
        # The app process keeps (1 - stolen) of its CPU.
        remaining = max(1e-6, 1.0 - stolen)
        per_process[rank] = params.iteration_compute / remaining
    return ColocationResult(per_process, tool_util)
