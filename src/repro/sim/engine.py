"""Discrete-event simulation engine.

The paper's evaluation ran on ASCI Blue Pacific with up to 600 tool
back-ends.  We regenerate those experiments on a discrete-event
simulator: virtual time, an event queue, and simple FIFO resources for
per-process serialization (CPU / NIC send path).  The engine is
deliberately minimal — events are ``(time, seq, callback)`` triples —
because every model built on it (collectives, instantiation, start-up)
is itself small.

Determinism: ties in time break by scheduling order (a monotone
sequence number), so runs are exactly reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

__all__ = ["Simulator", "FifoResource"]


class Simulator:
    """A minimal deterministic discrete-event simulator."""

    def __init__(self):
        self._now = 0.0
        self._queue: List[Tuple[float, int, Callable[[], Any]]] = []
        self._seq = itertools.count()
        self._events_run = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    @property
    def events_run(self) -> int:
        return self._events_run

    def at(self, when: float, callback: Callable[[], Any]) -> None:
        """Schedule *callback* at absolute virtual time *when*."""
        if when < self._now:
            raise ValueError(
                f"cannot schedule in the past ({when} < now {self._now})"
            )
        heapq.heappush(self._queue, (when, next(self._seq), callback))

    def after(self, delay: float, callback: Callable[[], Any]) -> None:
        """Schedule *callback* *delay* seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        self.at(self._now + delay, callback)

    def run(self, until: Optional[float] = None) -> float:
        """Run events until the queue drains (or virtual *until*).

        Returns the finishing virtual time.
        """
        while self._queue:
            when, _, callback = self._queue[0]
            if until is not None and when > until:
                self._now = until
                return self._now
            heapq.heappop(self._queue)
            self._now = when
            self._events_run += 1
            callback()
        return self._now

    def step(self) -> bool:
        """Run exactly one event; returns False when the queue is empty."""
        if not self._queue:
            return False
        when, _, callback = heapq.heappop(self._queue)
        self._now = when
        self._events_run += 1
        callback()
        return True

    @property
    def pending(self) -> int:
        return len(self._queue)


class FifoResource:
    """A serially-reusable resource (a CPU, a NIC send path).

    ``occupy(start, duration)`` books the resource no earlier than
    *start*, queued FIFO behind earlier bookings, and returns the
    ``(begin, end)`` interval granted.  This models LogP's requirement
    that a process issues at most one send per gap ``g`` and serializes
    receive overheads on a busy front-end.
    """

    __slots__ = ("free_at", "busy_time")

    def __init__(self):
        self.free_at = 0.0
        self.busy_time = 0.0

    def occupy(self, start: float, duration: float) -> Tuple[float, float]:
        if duration < 0:
            raise ValueError(f"negative duration {duration}")
        begin = max(start, self.free_at)
        end = begin + duration
        self.free_at = end
        self.busy_time += duration
        return begin, end

    def utilization(self, horizon: float) -> float:
        """Fraction of [0, horizon] this resource was busy."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)
