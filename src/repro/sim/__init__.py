"""Discrete-event simulation substrate standing in for ASCI Blue Pacific."""

from .clocks import BLUE_PACIFIC_CLOCKS, ClockSimParams, JitteredLink, SkewedClock
from .cluster import BLUE_PACIFIC, ClusterParams
from .collectives import CollectiveResult, CollectiveSim
from .colocation import ColocationParams, ColocationResult, simulate_colocation
from .engine import FifoResource, Simulator
from .frontend_load import (
    PARADYN_LOAD,
    LoadModelParams,
    frontend_load_fraction,
    load_curve,
    offered_rate,
)
from .instantiation import InstantiationResult, simulate_instantiation
from .trace import MessageEvent, SimTrace
from .logp import (
    BLUE_PACIFIC_LOGP,
    LogGPParams,
    balanced_kary_broadcast_closed_form,
    broadcast_latency,
    injection_gap,
    message_cost,
    pipelined_gap,
    pipelined_throughput,
    reduction_latency,
    roundtrip_latency,
)

__all__ = [
    "Simulator",
    "FifoResource",
    "LogGPParams",
    "BLUE_PACIFIC_LOGP",
    "message_cost",
    "broadcast_latency",
    "reduction_latency",
    "roundtrip_latency",
    "injection_gap",
    "pipelined_gap",
    "pipelined_throughput",
    "balanced_kary_broadcast_closed_form",
    "ClusterParams",
    "BLUE_PACIFIC",
    "CollectiveSim",
    "CollectiveResult",
    "ColocationParams",
    "ColocationResult",
    "simulate_colocation",
    "InstantiationResult",
    "simulate_instantiation",
    "MessageEvent",
    "SimTrace",
    "LoadModelParams",
    "PARADYN_LOAD",
    "frontend_load_fraction",
    "load_curve",
    "offered_rate",
    "SkewedClock",
    "JitteredLink",
    "ClockSimParams",
    "BLUE_PACIFIC_CLOCKS",
]
