"""Front-end data-processing load model (Figure 9, §4.2.2).

The experiment: each of *D* Paradyn daemons samples *M* metrics at 5
samples/second/metric, so the tool generates ``5·D·M`` samples per
second.  Figure 9 plots "the ratio of the rate at which the Paradyn
front-end processed performance data samples to the rate at which the
daemons generated the samples" — the fraction of offered load.

Model.  Daemons batch one message per sampling period containing all
*M* metric samples ("as the number of metrics per daemon increases,
Paradyn increases the size of its messages ... rather than the number
of messages"), so a receiver of *D* daemons handles ``5·D`` messages
per second, each costing ``per_message + M·per_sample`` seconds of CPU
(header handling/dispatch plus per-sample alignment and reduction).

* **Without MRNet** the front-end is that receiver *and* performs the
  full pipeline per sample (alignment, aggregation, history/visi
  delivery), so its service capacity is ``1 / (5·D·(a + M·b_fe))``
  relative to offered load.  Past saturation the measured fraction
  collapses faster than capacity/offered because the overloaded
  front-end also pays for the growing backlog (kernel buffering,
  socket reads it cannot keep up with, allocation churn) — we model
  this receive-livelock effect with a quadratic overload penalty,
  which matches the paper's two anchors (≈ 0.6 at D=64, M=32 and
  < 0.05 at D=256, M=32).
* **With MRNet** each internal process handles only its own fan-out
  ``f`` daemons-worth of messages with the cheaper filter-only
  per-sample cost, and the front-end sees one aggregated
  message stream per wave through its root fan-out.  Every process
  must keep up, so the fraction is the minimum over tree levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..topology.spec import TopologySpec

__all__ = [
    "LoadModelParams",
    "PARADYN_LOAD",
    "frontend_load_fraction",
    "offered_rate",
    "load_curve",
]

SAMPLES_PER_SEC_PER_METRIC = 5.0


@dataclass(frozen=True)
class LoadModelParams:
    """Calibrated CPU costs, in seconds."""

    #: Per-message fixed cost at the non-MRNet front-end (receive,
    #: dispatch, bookkeeping).
    fe_per_message: float = 300e-6
    #: Per-sample cost of the full front-end pipeline (align, reduce,
    #: histogram update, visi delivery).
    fe_per_sample: float = 116e-6
    #: Per-message fixed cost inside an MRNet internal process.
    node_per_message: float = 60e-6
    #: Per-sample cost of the Performance Data Aggregation filter.
    node_per_sample: float = 25e-6
    #: Overload exponent: fraction = (capacity/offered)**overload_exp
    #: once offered exceeds capacity (receive-livelock collapse).
    overload_exp: float = 2.0


#: Calibration anchors (paper §4.2.2): without MRNet, D=64, M=32 →
#: ≈ 60% of offered load; D=256, M=32 → < 5%; all MRNet fan-outs → 1.0.
PARADYN_LOAD = LoadModelParams()


def offered_rate(daemons: int, metrics: int) -> float:
    """Samples/second generated tool-wide: ``5·D·M`` (§4.2.2)."""
    return SAMPLES_PER_SEC_PER_METRIC * daemons * metrics


def _station_fraction(
    messages_per_sec: float, samples_per_message: float, per_message: float,
    per_sample: float, overload_exp: float,
) -> float:
    """Fraction of offered load one processing station keeps up with."""
    busy_per_sec = messages_per_sec * (
        per_message + samples_per_message * per_sample
    )
    if busy_per_sec <= 1.0:
        return 1.0
    return (1.0 / busy_per_sec) ** overload_exp


def frontend_load_fraction(
    daemons: int,
    metrics: int,
    topology: Optional[TopologySpec] = None,
    params: LoadModelParams = PARADYN_LOAD,
) -> float:
    """Fraction of offered load serviced (one Figure 9 data point).

    ``topology=None`` is the "Flat"/no-MRNet configuration: the
    front-end receives every daemon's messages directly and runs the
    full pipeline.  Otherwise the fraction is limited by the busiest
    process in the tree (interior processes run the aggregation
    filter; the front-end consumes already-aggregated waves).
    """
    if daemons < 1 or metrics < 1:
        raise ValueError("daemons and metrics must be >= 1")
    msg_rate_per_daemon = SAMPLES_PER_SEC_PER_METRIC  # one msg per period
    if topology is None:
        return _station_fraction(
            msg_rate_per_daemon * daemons,
            metrics,
            params.fe_per_message,
            params.fe_per_sample,
            params.overload_exp,
        )
    if topology.num_backends != daemons:
        raise ValueError(
            f"topology has {topology.num_backends} back-ends, expected {daemons}"
        )
    # Interior processes: one message per child per period, M samples each.
    worst = 1.0
    for node in topology.nodes():
        if node.is_leaf:
            continue
        fanout = len(node.children)
        if node is topology.root:
            # The front-end consumes aggregated waves: per period it sees
            # `fanout` messages and M samples total, at full-pipeline cost.
            frac = _station_fraction(
                msg_rate_per_daemon * fanout,
                metrics / fanout,
                params.fe_per_message,
                params.fe_per_sample,
                params.overload_exp,
            )
        else:
            frac = _station_fraction(
                msg_rate_per_daemon * fanout,
                metrics,
                params.node_per_message,
                params.node_per_sample,
                params.overload_exp,
            )
        worst = min(worst, frac)
    return worst


def load_curve(
    daemon_counts: List[int],
    metrics: int,
    topology_factory=None,
    params: LoadModelParams = PARADYN_LOAD,
) -> List[float]:
    """One Figure 9 curve: fraction vs daemon count.

    ``topology_factory(d)`` builds the tree for *d* daemons (``None``
    for the flat configuration).
    """
    out = []
    for d in daemon_counts:
        topo = topology_factory(d) if topology_factory is not None else None
        out.append(frontend_load_fraction(d, metrics, topo, params))
    return out
