"""LogP/LogGP cost model and the paper's Figure 4 topology analysis.

Section 2.6 compares balanced and unbalanced topologies "assuming a
LogP model with a minimum gap g between successive send operations in
a process, an overhead o for each send and receive, and a message
transfer latency L".  The paper's arithmetic for the 16-back-end
balanced tree of Figure 4a — broadcast completes in ``8g + 4o + 2L``
and a new broadcast can start every ``4g`` — corresponds to the
following per-level model for a node with fan-out *k*:

* the node occupies its send path for ``k`` gaps, so the last child's
  message leaves after ``k·g``;
* each hop then costs one send overhead + latency + one receive
  overhead, which the paper folds into ``2o + L`` counted once per
  level (the per-message ``o`` overlaps the gap except for the last
  message on the level).

Hence a fully-populated *k*-ary tree of depth *d* broadcasts in
``d·(k·g + 2o + L)`` — for Figure 4a (k=4, d=2): ``8g + 4o + 2L`` — and
the front-end can inject a new operation every ``k·g`` (``4g``),
whereas the unbalanced Figure 4b root with six-way fan-out needs
``6g``.  :func:`broadcast_latency` generalises the recursion to
arbitrary trees (the i-th child of a node receives at
``i·g + 2o + L``); :func:`reduction_latency` mirrors it for upward
flows; :func:`pipelined_gap` gives the steady-state operation interval.

LogGP's per-byte gap *G* extends the model to long messages
(:func:`message_cost`), used by the start-up and data-volume models.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from ..topology.spec import TopologyNode, TopologySpec

__all__ = [
    "LogGPParams",
    "BLUE_PACIFIC_LOGP",
    "message_cost",
    "broadcast_latency",
    "reduction_latency",
    "roundtrip_latency",
    "injection_gap",
    "pipelined_gap",
    "pipelined_throughput",
    "balanced_kary_broadcast_closed_form",
]


@dataclass(frozen=True)
class LogGPParams:
    """LogGP parameters, all in seconds (G per byte).

    ``L`` wire latency, ``o`` per-message CPU overhead (send and
    receive each pay one ``o``), ``g`` minimum interval between
    successive sends from one process, ``G`` per-byte gap for long
    messages (LogGP extension; 0 recovers plain LogP).
    """

    L: float = 50e-6
    o: float = 25e-6
    g: float = 1.5e-3
    G: float = 8e-9

    def with_(self, **kwargs) -> "LogGPParams":
        return replace(self, **kwargs)


#: Calibrated against the paper's measured anchors on ASCI Blue Pacific
#: (IBM SP switch, 332 MHz PowerPC 604e; see EXPERIMENTS.md):
#: flat round-trip ≈ 1.3 s at 600 back-ends, tree round-trips ≈ 0.1 s.
BLUE_PACIFIC_LOGP = LogGPParams(L=60e-6, o=250e-6, g=2.0e-3, G=9e-9)


def message_cost(params: LogGPParams, nbytes: int = 0) -> float:
    """End-to-end cost of one message: ``o + L + (n-1)·G + o``."""
    wire = params.L + max(0, nbytes - 1) * params.G
    return params.o + wire + params.o


def broadcast_latency(
    spec: TopologySpec, params: LogGPParams, nbytes: int = 0
) -> float:
    """Completion time of one root-to-leaves broadcast.

    Child *i* (1-based) of a node receives at
    ``parent_time + i·g + 2o + L (+ bytes·G)`` and recurses; the answer
    is the max over leaves.
    """
    per_hop = message_cost(params, nbytes)

    def down(node: TopologyNode, t: float) -> float:
        if node.is_leaf:
            return t
        worst = t
        for i, child in enumerate(node.children, start=1):
            arrive = t + i * params.g + per_hop
            worst = max(worst, down(child, arrive))
        return worst

    return down(spec.root, 0.0)


def reduction_latency(
    spec: TopologySpec, params: LogGPParams, nbytes: int = 0
) -> float:
    """Completion time of one leaves-to-root reduction.

    Leaves send at t=0.  A parent's inbound processing is serialized:
    messages are consumed at ``g`` intervals in arrival order, each
    paying the per-hop cost; the node forwards once every child has
    been consumed.
    """
    per_hop = message_cost(params, nbytes)

    def up(node: TopologyNode) -> float:
        if node.is_leaf:
            return 0.0
        arrivals = sorted(up(child) + per_hop for child in node.children)
        t = 0.0
        for a in arrivals:
            t = max(t, a) + params.g
        return t

    return up(spec.root)


def roundtrip_latency(
    spec: TopologySpec, params: LogGPParams, nbytes: int = 0
) -> float:
    """Broadcast followed by a reduction (the Figure 7b operation).

    An upper bound pairing: the reduction starts when the *last* leaf
    has the broadcast (leaves reply on receipt, but the slowest leaf
    dominates both phases on balanced trees, so the sum is tight
    there and a mild over-estimate on unbalanced ones).
    """
    return broadcast_latency(spec, params, nbytes) + reduction_latency(
        spec, params, nbytes
    )


def injection_gap(spec: TopologySpec, params: LogGPParams) -> float:
    """Interval at which the front-end can inject new operations.

    The root sends one message per child per operation, so it is free
    again after ``root_fanout · g`` — the paper's "new broadcast each
    4g cycles" for Figure 4a versus "at least 6g" for Figure 4b.
    """
    return len(spec.root.children) * params.g


def pipelined_gap(spec: TopologySpec, params: LogGPParams) -> float:
    """Steady-state interval between successive collective operations.

    Each process handles ``(#children + (1 if it has a parent else 0))``
    messages per operation, each costing one gap ``g``; the pipeline
    rate is set by the busiest process.  For the Figure 4a root
    (fan-out 4, no parent) this is the paper's ``4g``; for Figure 4b's
    root it is ``6g``.
    """
    worst = 0.0
    for node in spec.nodes():
        msgs = len(node.children)
        if node is not spec.root and node.children:
            msgs += 1  # forwarding through an internal node
        worst = max(worst, msgs * params.g)
    return worst


def pipelined_throughput(spec: TopologySpec, params: LogGPParams) -> float:
    """Operations per second for back-to-back collectives."""
    return 1.0 / pipelined_gap(spec, params)


def balanced_kary_broadcast_closed_form(
    fanout: int, depth: int, params: LogGPParams
) -> float:
    """The paper's closed form ``d·(k·g + 2o + L)`` (§2.6)."""
    return depth * (fanout * params.g + 2 * params.o + params.L)
