"""Simulated tool instantiation (Figure 7a, §2.5 mode 1).

"the front-end consults the configuration and uses rsh or ssh to
create internal processes for the first level of the communication
tree ... Each internal node establishes its children processes and
their respective connections sequentially.  However, since the various
processes are expected to run on different compute nodes, sub-trees in
different branches of the network are created concurrently."

The model: launching one child occupies the parent for ``rsh_cost``
(serialized per parent), the child is alive ``boot_delay`` after its
launch completes and immediately begins launching its own children.
Once a subtree is fully alive its root reports upward (endpoint
report, one small message per edge).  Instantiation latency is the
time until the front-end has every subtree's report.

With a flat topology the front-end launches every back-end itself —
N·rsh_cost of pure serialization, the paper's rapidly-growing "Flat"
curve; multi-level trees parallelize launches across subtrees so the
curve flattens to roughly (critical-path fan-outs)·rsh_cost.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict

from ..core.failure import backoff_delays
from ..topology.spec import TopologyNode, TopologySpec
from .cluster import BLUE_PACIFIC, ClusterParams
from .engine import FifoResource, Simulator
from .logp import message_cost

__all__ = ["InstantiationResult", "simulate_instantiation"]

_REPORT_BYTES = 64


@dataclass
class InstantiationResult:
    """Outcome of one simulated mode-1 instantiation."""

    latency: float
    processes: int
    launches_on_critical_path: int
    events: int
    launch_failures: int = 0


def simulate_instantiation(
    spec: TopologySpec,
    params: ClusterParams = BLUE_PACIFIC,
    launch_failure_rate: float = 0.0,
    launch_attempts: int = 5,
    seed: int = 0,
) -> InstantiationResult:
    """Simulate creating the whole MRNet process tree.

    ``launch_failure_rate`` models flaky process creation (the runtime
    counterpart is :func:`~repro.transport.tcp.tcp_connect_socket_retry`):
    each launch attempt independently fails with that probability on a
    ``seed``-determined schedule, and the launcher retries with the
    same capped-backoff policy the real transport uses, up to
    ``launch_attempts`` tries.  A slot that exhausts its attempts
    still comes up on one final forced try (mode-1 instantiation has
    no partial-tree semantics) — the cost model simply charges the
    full retry schedule.
    """
    sim = Simulator()
    launchers: Dict[tuple, FifoResource] = {
        node.key: FifoResource() for node in spec.nodes()
    }
    report_cost = message_cost(params.logp, _REPORT_BYTES)
    rng = random.Random(seed)
    failures = 0

    alive_at: Dict[tuple, float] = {spec.root.key: 0.0}
    reported_at: Dict[tuple, float] = {}
    critical_launches: Dict[tuple, int] = {spec.root.key: 0}

    def launch_cost() -> float:
        """One child's launcher occupancy including seeded retries."""
        nonlocal failures
        if launch_failure_rate <= 0.0:
            return params.rsh_cost
        cost = params.rsh_cost
        delays = backoff_delays(launch_attempts, rng=rng)
        for delay in delays:
            if rng.random() >= launch_failure_rate:
                return cost
            failures += 1
            cost += delay + params.rsh_cost
        return cost

    # Launch times resolve bottom-up deterministically; a DES is still
    # used so launcher serialization and report messages share one
    # timeline (and so the engine is exercised at full scale).
    def launch_children(node: TopologyNode) -> None:
        parent_ready = alive_at[node.key]
        launcher = launchers[node.key]
        for child in node.children:
            _, launch_done = launcher.occupy(parent_ready, launch_cost())
            child_alive = launch_done + params.boot_delay
            alive_at[child.key] = child_alive
            critical_launches[child.key] = critical_launches[node.key] + int(
                round((launch_done - parent_ready) / params.rsh_cost)
            )
            launch_children(child)

    launch_children(spec.root)

    # Reports: a leaf reports when alive; an interior node reports when
    # every child's report has arrived (paper: the sub-tree root reports
    # the endpoints reachable through it).
    def report_time(node: TopologyNode) -> float:
        if node.key in reported_at:
            return reported_at[node.key]
        if node.is_leaf:
            t = alive_at[node.key]
        else:
            t = alive_at[node.key]
            for child in node.children:
                t = max(t, report_time(child) + report_cost)
        reported_at[node.key] = t
        return t

    done = report_time(spec.root)
    sim.at(done, lambda: None)
    sim.run()

    return InstantiationResult(
        latency=done,
        processes=len(spec),
        launches_on_critical_path=max(critical_launches.values()),
        events=sim.events_run,
        launch_failures=failures,
    )
