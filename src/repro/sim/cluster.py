"""Simulated cluster parameters (the ASCI Blue Pacific stand-in).

The paper's testbed — 280 four-way PowerPC 604e nodes on an IBM SP
switch, AIX 5.1, PSSP 3.4 — is not available, so every figure is
regenerated on a discrete-event model of a cluster.  The parameters
here are calibrated so the paper's *measured anchor points* come out
at roughly the right magnitude (see EXPERIMENTS.md for the
paper-vs-measured table); the claims we reproduce are about *shape*
(who wins, where curves take off), which is insensitive to modest
calibration error.

Anchors used for calibration:

* Figure 7a: flat instantiation ≈ 850–900 s at 600 back-ends (rsh is
  the unit cost: ≈ 1.4 s per launch, serialized at the front-end).
* Figure 7b: flat round-trip ≈ 1.3 s at 600; multi-level trees stay
  ≈ 0.1 s.
* Figure 7c: ≈ 80 ops/s peak reduction throughput (a fixed ≈ 12 ms
  per-operation turn-around in the tool front-end harness), flat
  decaying below 10 ops/s by 600.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .logp import BLUE_PACIFIC_LOGP, LogGPParams

__all__ = ["ClusterParams", "BLUE_PACIFIC"]


@dataclass(frozen=True)
class ClusterParams:
    """All cost knobs for the simulated cluster, in seconds."""

    #: Point-to-point message costs (LogGP).
    logp: LogGPParams = BLUE_PACIFIC_LOGP
    #: CPU time an internal process spends running a transformation
    #: filter over one complete wave.
    filter_cost: float = 50e-6
    #: Fixed front-end turn-around per collective operation (the test
    #: harness's own loop: issue, bookkeeping, timestamping).  Caps
    #: peak throughput near the paper's ≈ 80 ops/s.
    frontend_op_cost: float = 12e-3
    #: Wall time one rsh/ssh process launch occupies the launching
    #: parent (§2.5: launches are serialized per parent).
    rsh_cost: float = 1.4
    #: Delay from launch until the new process can act (exec + connect).
    boot_delay: float = 0.08

    def with_(self, **kwargs) -> "ClusterParams":
        return replace(self, **kwargs)


#: Default calibration (see module docstring).
BLUE_PACIFIC = ClusterParams()
