"""Discrete-event simulation of tree collectives (Figures 7b and 7c).

Each process in the topology gets two FIFO resources: a *send path*
(successive sends serialize at LogP gap ``g``) and a *CPU* (receive
overheads and filter execution serialize at ``o``/``filter_cost``).
Messages move between processes through LogGP wire cost
``L + bytes·G``.  On top of that, three experiments:

* :meth:`CollectiveSim.broadcast` — one root-to-leaves multicast;
* :meth:`CollectiveSim.roundtrip` — a broadcast where every leaf
  replies on receipt and every interior node reduces its children's
  replies before forwarding (Figure 7b's "broadcast followed by a
  reduction");
* :meth:`CollectiveSim.pipelined_reductions` — leaves emit *n* waves
  back to back and the simulator measures the steady-state rate at
  which aggregated results emerge at the front-end (Figure 7c).

The flat topology reproduces the serialized point-to-point behaviour
of MRNet-less tools: the front-end's own resources become the
bottleneck and latency grows linearly while throughput collapses.
Multi-level trees spread the same per-message costs over interior
processes, which is the entire point of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from ..topology.spec import TopologyNode, TopologySpec
from .cluster import BLUE_PACIFIC, ClusterParams
from .engine import FifoResource, Simulator

__all__ = ["CollectiveSim", "CollectiveResult"]


@dataclass
class CollectiveResult:
    """Outcome of one simulated experiment."""

    latency: float
    #: Per-wave front-end completion times (pipelined experiments).
    completions: List[float] = field(default_factory=list)
    events: int = 0

    @property
    def throughput(self) -> float:
        """Sustained operations/second over the whole experiment.

        Leaves start emitting at t=0, so ``waves / last_completion`` is
        the offered-rate-matched service rate; with a saturated
        pipeline (as in Figure 7c) it converges to the steady-state
        rate as the wave count grows.
        """
        if not self.completions or self.completions[-1] <= 0:
            return 0.0
        return len(self.completions) / self.completions[-1]


class _SimProc:
    """Per-process simulation state."""

    __slots__ = ("node", "parent", "send", "cpu", "arrived", "is_leaf")

    def __init__(self, node: TopologyNode, parent: Optional["_SimProc"]):
        self.node = node
        self.parent = parent
        self.send = FifoResource()
        self.cpu = FifoResource()
        self.arrived: Dict[int, int] = {}  # wave -> messages received
        self.is_leaf = node.is_leaf


class CollectiveSim:
    """A simulated MRNet process tree ready to run collective ops."""

    def __init__(
        self,
        spec: TopologySpec,
        params: ClusterParams = BLUE_PACIFIC,
        trace=None,
    ):
        self.spec = spec
        self.params = params
        self.sim = Simulator()
        self.trace = trace  # Optional[repro.sim.trace.SimTrace]
        self.procs: Dict[tuple, _SimProc] = {}
        self._build(spec.root, None)
        self.root = self.procs[spec.root.key]
        self.leaves = [self.procs[leaf.key] for leaf in spec.leaves()]

    def _build(self, node: TopologyNode, parent: Optional[_SimProc]) -> None:
        proc = _SimProc(node, parent)
        self.procs[node.key] = proc
        for child in node.children:
            self._build(child, proc)

    def cpu_utilizations(self) -> Dict[str, float]:
        """Per-process CPU utilization over the experiment just run.

        §2.6 lists "CPU utilization of the MRNet internal processes" as
        a configuration-quality measure; this reports it (plus the
        front-end's) after any experiment method has completed.
        """
        horizon = self.sim.now
        return {
            f"{key[0]}:{key[1]}": proc.cpu.utilization(horizon)
            for key, proc in self.procs.items()
            if not proc.is_leaf
        }

    # -- message primitive ---------------------------------------------------

    def _send(
        self,
        src: _SimProc,
        dst: _SimProc,
        t: float,
        nbytes: int,
        on_delivered: Callable[[float], None],
    ) -> None:
        """Schedule one message send; *on_delivered* gets the delivery time."""
        p = self.params.logp
        begin, _ = src.send.occupy(t, p.g)
        departure = begin + p.o
        wire = p.L + max(0, nbytes - 1) * p.G
        arrival = departure + wire

        def on_arrival():
            _, done = dst.cpu.occupy(self.sim.now, p.o)
            if self.trace is not None:
                from .trace import MessageEvent

                self.trace.record(
                    MessageEvent(
                        src=src.node.label,
                        dst=dst.node.label,
                        send_start=begin,
                        departure=departure,
                        arrival=arrival,
                        delivered=done,
                        nbytes=nbytes,
                    )
                )
            self.sim.at(done, lambda: on_delivered(done))

        self.sim.at(arrival, on_arrival)

    # -- experiments -----------------------------------------------------------

    def broadcast(self, nbytes: int = 64) -> CollectiveResult:
        """One multicast from the front-end to every back-end."""
        deliveries: List[float] = []
        expected = len(self.leaves)

        def down(proc: _SimProc, t: float) -> None:
            for child_node in proc.node.children:
                child = self.procs[child_node.key]

                def deliver(when: float, child=child) -> None:
                    if child.is_leaf:
                        deliveries.append(when)
                    else:
                        down(child, when)

                self._send(proc, child, t, nbytes, deliver)

        start = self.params.frontend_op_cost
        down(self.root, start)
        self.sim.run()
        assert len(deliveries) == expected, "broadcast missed some leaves"
        return CollectiveResult(
            latency=max(deliveries) - 0.0, events=self.sim.events_run
        )

    def roundtrip(self, nbytes: int = 64) -> CollectiveResult:
        """Broadcast + reduction: Figure 7b's measured operation."""
        finished: List[float] = []

        def reduce_arrival(proc: _SimProc, wave: int = 0) -> None:
            proc.arrived[wave] = proc.arrived.get(wave, 0) + 1
            if proc.arrived[wave] == len(proc.node.children):
                _, done = proc.cpu.occupy(self.sim.now, self.params.filter_cost)
                if proc.parent is None:
                    finished.append(done)
                else:
                    self._send(
                        proc,
                        proc.parent,
                        done,
                        nbytes,
                        lambda when, p=proc.parent: reduce_arrival(p),
                    )

        def down(proc: _SimProc, t: float) -> None:
            for child_node in proc.node.children:
                child = self.procs[child_node.key]

                def deliver(when: float, child=child) -> None:
                    if child.is_leaf:
                        # Leaf replies immediately with its contribution.
                        self._send(
                            child,
                            child.parent,
                            when,
                            nbytes,
                            lambda w, p=child.parent: reduce_arrival(p),
                        )
                    else:
                        down(child, when)

                self._send(proc, child, t, nbytes, deliver)

        down(self.root, self.params.frontend_op_cost)
        self.sim.run()
        assert finished, "reduction never completed"
        return CollectiveResult(latency=finished[0], events=self.sim.events_run)

    def pipelined_reductions(self, waves: int = 50, nbytes: int = 64) -> CollectiveResult:
        """Back-to-back reductions: Figure 7c's throughput experiment.

        Every leaf emits *waves* messages as fast as its send path
        allows; interior nodes aggregate per wave; the front-end pays
        its per-operation cost for each aggregated wave it consumes.
        """
        completions: List[float] = []

        def arrival(proc: _SimProc, wave: int) -> None:
            proc.arrived[wave] = proc.arrived.get(wave, 0) + 1
            if proc.arrived[wave] == len(proc.node.children):
                del proc.arrived[wave]
                if proc.parent is None:
                    _, done = proc.cpu.occupy(
                        self.sim.now, self.params.frontend_op_cost
                    )
                    self.sim.at(done, lambda: completions.append(done))
                else:
                    _, done = proc.cpu.occupy(self.sim.now, self.params.filter_cost)
                    self._send(
                        proc,
                        proc.parent,
                        done,
                        nbytes,
                        lambda w, p=proc.parent, wv=wave: arrival(p, wv),
                    )

        for leaf in self.leaves:
            for wave in range(waves):
                self._send(
                    leaf,
                    leaf.parent,
                    0.0,
                    nbytes,
                    lambda w, p=leaf.parent, wv=wave: arrival(p, wv),
                )
        self.sim.run()
        assert len(completions) == waves, (
            f"only {len(completions)}/{waves} waves completed"
        )
        completions.sort()
        return CollectiveResult(
            latency=completions[-1],
            completions=completions,
            events=self.sim.events_run,
        )
