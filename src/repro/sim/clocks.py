"""Simulated host clocks with skew and message-latency jitter.

The clock-skew experiment (§4.2.1) needs three things the real testbed
provided: per-host clocks with unknown offsets, message exchanges whose
one-way latencies are asymmetric and jittery, and a
globally-synchronous oracle (Blue Pacific's SP switch clock) to grade
the detected skews against.  This module simulates all three.

A :class:`SkewedClock` reads ``true_time + offset`` (drift over the
few seconds of a start-up phase is negligible and the paper's
algorithm measures *offset*, i.e. skew, not drift — so offsets are
constant).  :class:`JitteredLink` draws one-way latencies from a
shifted exponential: ``base + Exp(jitter)``, the classic heavy-tail
model for switch/OS-induced delay where the *minimum* observed RTT is
the cleanest sample — which is why both the paper's schemes take the
smallest-|skew| observation over repeated trials.

Calibration: links between tree neighbours (same switch hop count,
uncontended during the local phase) get lower jitter than front-end ↔
daemon "direct" paths, whose packets cross the whole fabric while 512
daemons are all talking to the same front-end.  That contention
asymmetry is what makes the tree-based scheme's errors (≈ 10.5 %)
smaller than the direct scheme's (≈ 17.5 %) in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SkewedClock", "JitteredLink", "ClockSimParams", "BLUE_PACIFIC_CLOCKS"]


@dataclass(frozen=True)
class ClockSimParams:
    """Calibrated latency/skew magnitudes, in seconds."""

    #: Standard deviation of per-host clock offsets.
    skew_sigma: float = 5e-3
    #: Deterministic one-way latency between tree neighbours.
    local_base: float = 300e-6
    #: Exponential jitter scale between tree neighbours.
    local_jitter: float = 120e-6
    #: Deterministic one-way latency front-end ↔ daemon (direct scheme).
    direct_base: float = 350e-6
    #: Exponential jitter scale on direct paths (fabric + contention).
    direct_jitter: float = 150e-6
    #: Asymmetry: fraction of the base by which forward and return
    #: one-way latencies differ (what round-trip halving mis-estimates).
    asymmetry: float = 0.35


BLUE_PACIFIC_CLOCKS = ClockSimParams()


class SkewedClock:
    """A host clock with a fixed offset from true (oracle) time."""

    __slots__ = ("offset",)

    def __init__(self, offset: float):
        self.offset = float(offset)

    def read(self, true_time: float) -> float:
        """This host's clock value at oracle time *true_time*."""
        return true_time + self.offset

    @classmethod
    def random(cls, rng: np.random.Generator, sigma: float) -> "SkewedClock":
        return cls(rng.normal(0.0, sigma))


class JitteredLink:
    """A link with asymmetric, jittered one-way latencies.

    The forward and return directions have different deterministic
    bases (``base·(1 ± asymmetry/2)``), plus independent exponential
    jitter per message.  Round-trip halving therefore carries a
    systematic error of ``±base·asymmetry/2`` on top of jitter noise —
    exactly the error source both skew-detection schemes fight.
    """

    __slots__ = ("_fwd_base", "_ret_base", "_jitter", "_rng")

    def __init__(
        self,
        rng: np.random.Generator,
        base: float,
        jitter: float,
        asymmetry: float,
    ):
        direction = rng.choice([-1.0, 1.0])
        self._fwd_base = base * (1.0 + direction * asymmetry / 2.0)
        self._ret_base = base * (1.0 - direction * asymmetry / 2.0)
        self._jitter = jitter
        self._rng = rng

    def forward_delay(self) -> float:
        """One-way latency for a request (parent→child / FE→daemon)."""
        return self._fwd_base + self._rng.exponential(self._jitter)

    def return_delay(self) -> float:
        """One-way latency for the response."""
        return self._ret_base + self._rng.exponential(self._jitter)
