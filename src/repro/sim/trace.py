"""Event tracing for simulated collectives.

Attach a :class:`SimTrace` to a :class:`~repro.sim.collectives.CollectiveSim`
and every simulated message is recorded (source, destination,
departure, arrival, delivery).  Two consumers:

* :meth:`SimTrace.to_chrome_trace` — Chrome/Perfetto ``chrome://tracing``
  JSON, one track per process, so a simulated Figure 7 experiment can
  be inspected visually (flat topologies show the front-end's wall of
  serialized receives; trees show the pipeline).
* :meth:`SimTrace.summary` — aggregate counts used by tests and
  notebooks (messages per process, busiest link).
"""

from __future__ import annotations

import json
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

__all__ = ["MessageEvent", "SimTrace"]


@dataclass(frozen=True)
class MessageEvent:
    """One simulated message, fully timestamped (seconds)."""

    src: str
    dst: str
    send_start: float  # send path occupied
    departure: float  # left the NIC
    arrival: float  # hit the destination wire-side
    delivered: float  # destination CPU finished the receive overhead
    nbytes: int

    @property
    def latency(self) -> float:
        return self.delivered - self.send_start


@dataclass
class SimTrace:
    """A recording of every message in one simulated experiment."""

    events: List[MessageEvent] = field(default_factory=list)

    def record(self, event: MessageEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    # -- analysis ------------------------------------------------------------

    def messages_per_process(self) -> Dict[str, Tuple[int, int]]:
        """``process -> (sent, received)`` counts."""
        sent, received = Counter(), Counter()
        for e in self.events:
            sent[e.src] += 1
            received[e.dst] += 1
        out: Dict[str, Tuple[int, int]] = {}
        for name in set(sent) | set(received):
            out[name] = (sent[name], received[name])
        return out

    def busiest_receiver(self) -> Tuple[str, int]:
        """The process that received the most messages."""
        received = Counter(e.dst for e in self.events)
        if not received:
            return ("", 0)
        name, count = received.most_common(1)[0]
        return name, count

    def summary(self) -> Dict[str, object]:
        per_proc = self.messages_per_process()
        name, count = self.busiest_receiver()
        return {
            "messages": len(self.events),
            "bytes": sum(e.nbytes for e in self.events),
            "processes": len(per_proc),
            "busiest_receiver": name,
            "busiest_receiver_msgs": count,
            "makespan": max((e.delivered for e in self.events), default=0.0),
        }

    # -- export -----------------------------------------------------------------

    def to_chrome_trace(self) -> str:
        """Chrome/Perfetto trace-event JSON (microsecond timestamps).

        Each message becomes a duration event on its *destination's*
        track (the receive overhead) plus a flow arrow from the
        sender's departure, which is how pipelining and front-end
        serialization become visible.
        """
        pids = {}

        def pid(name: str) -> int:
            return pids.setdefault(name, len(pids) + 1)

        events = []
        for name in sorted({e.src for e in self.events} | {e.dst for e in self.events}):
            events.append(
                {
                    "name": "process_name",
                    "ph": "M",
                    "pid": pid(name),
                    "args": {"name": name},
                }
            )
        for i, e in enumerate(self.events):
            us = 1e6
            events.append(
                {
                    "name": f"send->{e.dst}",
                    "ph": "X",
                    "pid": pid(e.src),
                    "tid": 1,
                    "ts": e.send_start * us,
                    "dur": max((e.departure - e.send_start) * us, 0.01),
                    "args": {"bytes": e.nbytes},
                }
            )
            events.append(
                {
                    "name": f"recv<-{e.src}",
                    "ph": "X",
                    "pid": pid(e.dst),
                    "tid": 1,
                    "ts": e.arrival * us,
                    "dur": max((e.delivered - e.arrival) * us, 0.01),
                    "args": {"bytes": e.nbytes},
                }
            )
            events.append(
                {
                    "name": "msg",
                    "ph": "s",
                    "id": i,
                    "pid": pid(e.src),
                    "tid": 1,
                    "ts": e.departure * us,
                }
            )
            events.append(
                {
                    "name": "msg",
                    "ph": "f",
                    "bp": "e",
                    "id": i,
                    "pid": pid(e.dst),
                    "tid": 1,
                    "ts": e.arrival * us,
                }
            )
        return json.dumps({"traceEvents": events})
