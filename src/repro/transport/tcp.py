"""TCP transport: channel ends over real sockets.

Real MRNet links are TCP connections.  This module provides
:class:`TcpChannelEnd` objects that are drop-in compatible with
:class:`~repro.transport.channel.ChannelEnd` — they ``send`` byte
payloads and deliver inbound payloads into an
:class:`~repro.transport.channel.Inbox` — but move the bytes through a
socket with a 4-byte big-endian length frame.

Use :func:`tcp_pair` for an in-process connected pair (tests, single
host), or :class:`TcpListener` + :func:`tcp_connect` for genuinely
separate endpoints (e.g. one process tree per terminal on localhost).
Each end runs a small reader thread that feeds its inbox, mirroring
how a comm node's event loop owns its socket set.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from typing import Callable, Optional, Tuple

from .channel import Inbox

__all__ = [
    "TcpChannelEnd",
    "TcpListener",
    "tcp_pair",
    "tcp_connect",
    "tcp_connect_socket",
    "tcp_connect_socket_ex",
    "tcp_connect_socket_retry",
    "tcp_connect_socket_retry_ex",
    "tcp_connect_retry",
    "HELLO_SHM_FLAG",
]

_LEN = struct.Struct(">I")
_MAX_FRAME = 1 << 30
_HAS_SENDMSG = hasattr(socket.socket, "sendmsg")

#: High bit of the connection hello: the connector is offering a
#: shared-memory upgrade and a JSON offer frame follows (see
#: :mod:`repro.transport.shm`).  Link ids never reach this bit.
HELLO_SHM_FLAG = 0x8000_0000


def sendmsg_all(sock: socket.socket, buffers) -> None:
    """Write *buffers* to a blocking socket as one vectored send.

    ``sendmsg`` gathers the length prefix and payload frames straight
    from their owning buffers — no join copy.  Short writes (small
    ``SO_SNDBUF``) are continued from the partial offset.
    """
    if _HAS_SENDMSG:
        # Common case: the whole frame fits the socket buffer in one
        # vectored write — no memoryview wrapping, no continuation.
        sent = sock.sendmsg(buffers)
        total = 0
        for b in buffers:
            total += len(b)
        if sent == total:
            return
        views = [memoryview(b) for b in buffers if len(b)]
    else:  # pragma: no cover - non-POSIX fallback
        sock.sendall(b"".join(buffers))
        return
    while sent:
        if sent >= len(views[0]):
            sent -= len(views[0])
            views.pop(0)
        else:
            views[0] = views[0][sent:]
            sent = 0
    while views:
        sent = sock.sendmsg(views)
        while sent:
            if sent >= len(views[0]):
                sent -= len(views[0])
                views.pop(0)
            else:
                views[0] = views[0][sent:]
                sent = 0


class TcpChannelEnd:
    """One end of a TCP link, presenting the ChannelEnd interface.

    Keeps plain-int transport counters (frames/bytes in each
    direction), exposed via :meth:`link_metrics` — integer adds on the
    send/read paths, no registry lookups on the hot path.
    """

    #: Transport classification for the obs ``links{kind=...}`` census.
    transport_kind = "tcp"

    def __init__(self, sock: socket.socket, link_id: int, inbox: Inbox):
        self.link_id = link_id
        self._sock = sock
        self._inbox = inbox
        self._send_lock = threading.Lock()
        self._closed = False
        self.frames_out = 0
        self.bytes_out = 0
        self.frames_in = 0
        self.bytes_in = 0
        # Cleared to stall the reader between frames (fault injection:
        # a consumer that stops draining, so peer send queues back up).
        self._reading = threading.Event()
        self._reading.set()
        self._reader = threading.Thread(
            target=self._read_loop, name=f"tcp-reader-{link_id}", daemon=True
        )
        self._reader.start()

    def pause_reading(self) -> None:
        """Stall the reader thread before its next frame (fault injection)."""
        self._reading.clear()

    def resume_reading(self) -> None:
        self._reading.set()

    def send(self, payload: bytes) -> None:
        if self._closed:
            raise ConnectionError(f"tcp link {self.link_id} is closed")
        if not isinstance(payload, (bytes, bytearray, memoryview)):
            raise TypeError("channel payloads must be bytes")
        # Vectored write: the kernel gathers prefix + payload, so the
        # frame is never joined into a transient Python bytes object.
        with self._send_lock:
            try:
                sendmsg_all(self._sock, (_LEN.pack(len(payload)), payload))
                self.frames_out += 1
                self.bytes_out += len(payload) + _LEN.size
            except OSError as exc:
                self._closed = True
                raise ConnectionError(str(exc)) from exc

    def link_metrics(self) -> dict:
        """Point-in-time transport numbers for this link (JSON-able)."""
        return {
            "link_id": self.link_id,
            "frames_in": self.frames_in,
            "bytes_in": self.bytes_in,
            "frames_out": self.frames_out,
            "bytes_out": self.bytes_out,
            "closed": self._closed,
        }

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            try:
                self._sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            self._sock.close()
            # Release a paused reader (fault injection) so it observes
            # the dead socket and exits instead of waiting forever.
            self._reading.set()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- reader -----------------------------------------------------------

    def _read_exact(self, n: int) -> Optional[bytes]:
        buf = bytearray()
        while len(buf) < n:
            try:
                chunk = self._sock.recv(n - len(buf))
            except OSError:
                return None
            if not chunk:
                return None
            buf.extend(chunk)
        return bytes(buf)

    def _read_loop(self) -> None:
        while True:
            self._reading.wait()
            header = self._read_exact(_LEN.size)
            if header is None:
                break
            (length,) = _LEN.unpack(header)
            if length > _MAX_FRAME:
                break
            payload = self._read_exact(length)
            if payload is None:
                break
            self.frames_in += 1
            self.bytes_in += length + _LEN.size
            self._inbox._deliver(self.link_id, payload)
        self._closed = True
        self._inbox._deliver(self.link_id, None)


_link_lock = threading.Lock()
_next_link_id = 1_000_000  # distinct range from in-memory channels


def _alloc_link_id() -> int:
    global _next_link_id
    with _link_lock:
        _next_link_id += 1
        return _next_link_id


def tcp_pair(inbox_a: Inbox, inbox_b: Inbox) -> Tuple[TcpChannelEnd, TcpChannelEnd]:
    """A connected pair of TCP ends sharing one link id."""
    sock_a, sock_b = socket.socketpair()
    link_id = _alloc_link_id()
    return (
        TcpChannelEnd(sock_a, link_id, inbox_a),
        TcpChannelEnd(sock_b, link_id, inbox_b),
    )


class TcpListener:
    """Accepts connections, producing TcpChannelEnds for a local inbox."""

    def __init__(self, inbox: Inbox, host: str = "127.0.0.1", port: int = 0):
        self._inbox = inbox
        self._server = socket.create_server((host, port))
        self.address = self._server.getsockname()

    def accept(self, timeout: Optional[float] = None):
        """Accept one connection, assigning it a fresh *local* link id.

        Link ids are local names for connections (routing tables and
        buffers key on them), so the two ends of one socket may use
        different ids.  The connector's hello id is consumed from the
        wire but deliberately not reused: distinct processes allocate
        ids independently, so trusting the remote id could collide
        with this process's existing links.

        A connector offering the shared-memory upgrade (see
        :mod:`repro.transport.shm`) gets it here: the returned end is
        then a :class:`~repro.transport.shm.ShmChannelEnd` — same
        interface, same inbox deliveries.
        """
        sock, pair = self.accept_socket_ex(timeout)
        if pair is not None:
            from .shm import ShmChannelEnd

            return ShmChannelEnd(
                sock, pair[0], pair[1], _alloc_link_id(), self._inbox
            )
        return TcpChannelEnd(sock, _alloc_link_id(), self._inbox)

    def accept_socket(self, timeout: Optional[float] = None) -> socket.socket:
        """Accept one connection and return the raw connected socket.

        The link handshake is consumed, but no reader thread is
        started — callers that register the socket with an event loop
        use this instead of :meth:`accept`.  Shared-memory offers are
        refused (NAK), so the connector transparently stays on TCP;
        use :meth:`accept_socket_ex` to take the upgrade.
        """
        sock, _ = self.accept_socket_ex(timeout, allow_shm=False)
        return sock

    def accept_socket_ex(
        self, timeout: Optional[float] = None, allow_shm: bool = True
    ):
        """Accept one connection; returns ``(socket, shm_rings_or_None)``.

        Consumes the hello and, when the connector offered a
        shared-memory upgrade, completes the negotiation: the second
        element is the acceptor-side ``(tx, rx)`` ring pair on
        success, ``None`` after a NAK or a plain hello.
        """
        self._server.settimeout(timeout)
        sock, _ = self._server.accept()
        # Bound the hello exchange so a half-open connector cannot
        # wedge the accept loop.
        sock.settimeout(timeout if timeout else 30.0)
        raw = b""
        while len(raw) < _LEN.size:
            chunk = sock.recv(_LEN.size - len(raw))
            if not chunk:
                raise ConnectionError("peer closed during link handshake")
            raw += chunk
        (hello,) = _LEN.unpack(raw)  # hello id consumed; see accept()
        pair = None
        if hello & HELLO_SHM_FLAG:
            from .shm import accept_shm_offer

            pair = accept_shm_offer(sock, allow=allow_shm)
        sock.settimeout(None)
        return sock, pair

    def close(self) -> None:
        self._server.close()


def tcp_connect_socket(
    address: Tuple[str, int], timeout: Optional[float] = None
) -> socket.socket:
    """Connect to a :class:`TcpListener`, returning the raw socket.

    Performs the hello handshake but starts no reader thread; pair
    with an event loop (or wrap in :class:`TcpChannelEnd` manually).
    """
    sock, _ = tcp_connect_socket_ex(address, timeout=timeout)
    return sock


def tcp_connect_socket_ex(
    address: Tuple[str, int],
    timeout: Optional[float] = None,
    shm: bool = False,
    capacity: Optional[int] = None,
):
    """Connect with an optional shared-memory offer.

    Returns ``(socket, shm_rings_or_None)``: the second element is the
    connector-side ``(tx, rx)`` ring pair when ``shm=True`` and the
    acceptor took the upgrade, else ``None`` (the socket is then an
    ordinary framed TCP link — transparent fallback).
    """
    sock = socket.create_connection(address, timeout=timeout)
    pair = None
    try:
        if shm:
            from .shm import DEFAULT_CAPACITY, offer_shm

            # Bound the negotiation round-trip too, not just connect.
            sock.settimeout(timeout if timeout else 30.0)
            pair = offer_shm(
                sock, _alloc_link_id(), capacity or DEFAULT_CAPACITY
            )
        else:
            sock.sendall(_LEN.pack(_alloc_link_id()))
        sock.settimeout(None)
    except BaseException:
        sock.close()
        raise
    return sock, pair


def tcp_connect(
    address: Tuple[str, int], inbox: Inbox, timeout: Optional[float] = None
) -> TcpChannelEnd:
    """Connect to a :class:`TcpListener` and build this side's end."""
    return TcpChannelEnd(
        tcp_connect_socket(address, timeout), _alloc_link_id(), inbox
    )


def tcp_connect_socket_retry(
    address: Tuple[str, int],
    attempts: int = 5,
    timeout: Optional[float] = 5.0,
    base: float = 0.1,
    cap: float = 2.0,
    sleep: Callable[[float], None] = time.sleep,
) -> socket.socket:
    """Connect with capped exponential backoff (tree instantiation).

    One long blocking connect penalizes the common failure (the peer
    is simply not listening *yet* — launch races during §2.5
    instantiation) with a full connect timeout per try and gives the
    caller a bare ``OSError`` with no MRNet context.  Retrying with
    short per-attempt timeouts and jittered backoff converges fast
    when the peer comes up, and a final failure raises
    :class:`~repro.core.failure.InstantiationError` naming the
    unreachable address and attempt count.
    """
    sock, _ = tcp_connect_socket_retry_ex(
        address, attempts=attempts, timeout=timeout, base=base, cap=cap,
        sleep=sleep,
    )
    return sock


def tcp_connect_socket_retry_ex(
    address: Tuple[str, int],
    attempts: int = 5,
    timeout: Optional[float] = 5.0,
    base: float = 0.1,
    cap: float = 2.0,
    sleep: Callable[[float], None] = time.sleep,
    shm: bool = False,
    capacity: Optional[int] = None,
):
    """Retrying :func:`tcp_connect_socket_ex`; same backoff policy.

    Returns ``(socket, shm_rings_or_None)``.
    """
    from ..core.failure import InstantiationError, backoff_delays

    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    delays = backoff_delays(attempts, base=base, cap=cap)
    last: Optional[Exception] = None
    for k in range(attempts):
        try:
            return tcp_connect_socket_ex(
                address, timeout=timeout, shm=shm, capacity=capacity
            )
        except OSError as exc:
            last = exc
            if k < len(delays):
                sleep(delays[k])
    raise InstantiationError(address, attempts, str(last))


def tcp_connect_retry(
    address: Tuple[str, int],
    inbox: Inbox,
    attempts: int = 5,
    timeout: Optional[float] = 5.0,
    shm: bool = False,
    capacity: Optional[int] = None,
    **kwargs,
):
    """Retrying variant of :func:`tcp_connect` (same backoff policy).

    With ``shm=True`` the connect offers the shared-memory upgrade;
    the returned end is then a
    :class:`~repro.transport.shm.ShmChannelEnd` when the peer accepts,
    else a plain :class:`TcpChannelEnd`.
    """
    sock, pair = tcp_connect_socket_retry_ex(
        address, attempts=attempts, timeout=timeout, shm=shm,
        capacity=capacity, **kwargs,
    )
    if pair is not None:
        from .shm import ShmChannelEnd

        return ShmChannelEnd(
            sock, pair[0], pair[1], _alloc_link_id(), inbox, owner=True
        )
    return TcpChannelEnd(sock, _alloc_link_id(), inbox)
