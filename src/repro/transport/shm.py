"""Shared-memory ring transport for co-located links.

MRNet's links are TCP connections, but a link whose two endpoints run
on the *same host* pays the full loopback stack — two syscalls per
frame on the read side alone — for bytes that never leave the machine.
Topology-aware systems (Karonis et al.'s multilevel collectives) treat
intra-host edges as a different, cheaper medium; this module is that
medium for the process runtime.

Design
------

Each upgraded link owns **two single-producer/single-consumer byte
rings** in POSIX shared memory (``multiprocessing.shared_memory``),
one per direction, carrying exactly the same 4-byte-length-framed
packet batches as the TCP transport — so
:func:`repro.core.batching.decode_batch` and ``Packet.lazy_from_wire``
work unchanged on frames read out of the ring (one copy out of shared
memory, zero further copies).

Ring layout (``HEADER`` = 64 bytes, then ``capacity`` data bytes)::

    [0:8)   tail   u64 LE  monotonic bytes written (producer-owned)
    [8:16)  head   u64 LE  monotonic bytes read    (consumer-owned)
    [16]    closed         either side marks an orderly close
    [17]    stalled        producer found no room; consumer credits

Cursors are monotonic, so ``tail - head`` is the exact occupancy and
the ring may be filled completely (no wasted slot).  The producer
writes data before publishing ``tail``; the consumer reads data before
publishing ``head`` — each cursor has exactly one writer, which is the
whole SPSC correctness argument.

The TCP socket the link was negotiated on is kept as a **doorbell**:
one byte is sent when a write makes the ring non-empty (the consumer
may be asleep in ``select``) and when the consumer frees space for a
stalled producer.  Reusing the socket means liveness is unchanged —
kill or sever the peer and the doorbell socket reports EOF through
exactly the same code paths a TCP link would, so the fault-tolerance
machinery (heartbeats, degrade/repair policies) needs no new cases.

Negotiation rides the existing link hello (see
:class:`repro.transport.tcp.TcpListener`): a connector that wants the
upgrade sets the high bit of its hello id and follows it with a JSON
offer naming the two segments; the acceptor attaches and answers one
``ACK`` byte, or ``NAK`` — in which case both sides silently fall back
to plain TCP on the already-connected socket.  Failure anywhere
(segment creation, attach, an old peer) degrades to TCP, never to an
error.
"""

from __future__ import annotations

import json
import select
import socket
import struct
import threading
import time
from typing import List, Optional, Tuple

from .channel import Inbox

__all__ = [
    "ShmRing",
    "ShmChannelEnd",
    "offer_shm",
    "accept_shm_offer",
    "shm_available",
    "live_segments",
    "DEFAULT_CAPACITY",
]

_LEN = struct.Struct(">I")
_U64 = struct.Struct("<Q")

#: Per-direction ring size.  Must exceed the largest single frame a
#: node can emit (the adaptive flush bound is 64 KiB; oversized lone
#: packets are rare and still fit with room to spare).
DEFAULT_CAPACITY = 1 << 20

_ACK = b"\x06"
_NAK = b"\x15"
_MAX_OFFER = 4096

# Names of shared-memory segments this process currently has mapped.
# The pytest leak guard asserts this drains to empty after each test,
# turning a forgotten close()/unlink() into a hard failure instead of
# an interpreter-exit ResourceWarning nobody reads.
_live_lock = threading.Lock()
_live_segments: set = set()
# Segments *created* by this process — attaches to these must not
# unregister from the resource tracker (the creator's unlink() will,
# and a double-unregister makes the tracker daemon print a KeyError).
_created_names: set = set()


def live_segments() -> List[str]:
    """Names of shm segments currently open in this process (leak guard)."""
    with _live_lock:
        return sorted(_live_segments)


def shm_available() -> bool:
    """True when POSIX shared memory works here (it may not in
    minimal containers without /dev/shm)."""
    try:
        ring = ShmRing.create(4096)
    except Exception:
        return False
    ring.close()
    ring.unlink()
    return True


def _untrack(shm) -> None:
    """Detach *shm* from the resource tracker (attach side only).

    ``SharedMemory(name=...)`` registers even non-creating attaches
    with the tracker (bpo-39959), so both processes would try to
    unlink at exit and the second would warn.  The creator stays
    registered — if it dies without cleanup, its tracker still
    reclaims the segment.
    """
    with _live_lock:
        # Note shm.name (no leading slash), not the raw _name.
        if shm.name in _created_names:
            return  # same-process attach: creator's unlink unregisters
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


class ShmRing:
    """One direction of a co-located link: an SPSC byte ring in shm.

    One process is the producer (:meth:`try_write`), the other the
    consumer (:meth:`read_frames`); each instance is used in a single
    role.  Frames are 4-byte-length-prefixed byte strings, identical
    to the TCP wire framing.
    """

    HEADER = 64

    def __init__(self, shm, capacity: int, created: bool):
        self._shm = shm
        self._buf = shm.buf
        self.capacity = capacity
        self.name = shm.name
        self._created = created
        self._open = True
        self._tail = _U64.unpack_from(self._buf, 0)[0]  # producer cursor
        self._head = _U64.unpack_from(self._buf, 8)[0]  # consumer cursor

    @classmethod
    def create(cls, capacity: int = DEFAULT_CAPACITY) -> "ShmRing":
        """Create a fresh ring segment (the connector does this)."""
        from multiprocessing.shared_memory import SharedMemory

        if capacity <= cls.HEADER:
            raise ValueError("ring capacity too small")
        shm = SharedMemory(create=True, size=cls.HEADER + capacity)
        shm.buf[: cls.HEADER] = b"\0" * cls.HEADER
        with _live_lock:
            _live_segments.add(shm.name)
            _created_names.add(shm.name)
        return cls(shm, capacity, created=True)

    @classmethod
    def attach(cls, name: str, capacity: int) -> "ShmRing":
        """Map an existing ring by name (the acceptor does this)."""
        from multiprocessing.shared_memory import SharedMemory

        shm = SharedMemory(name=name)
        _untrack(shm)
        if shm.size < cls.HEADER + capacity:
            shm.close()
            raise ValueError(f"segment {name} smaller than offered capacity")
        with _live_lock:
            _live_segments.add(shm.name)
        return cls(shm, capacity, created=False)

    # -- producer side ------------------------------------------------------

    def try_write(self, payload) -> Tuple[bool, bool]:
        """Append one framed *payload* if it fits.

        Returns ``(written, was_empty)``.  ``was_empty`` means the
        consumer may be asleep and needs a doorbell.  A refusal sets
        the ``stalled`` flag so the consumer knows to send a credit
        doorbell once it frees space.  Frames larger than the ring can
        never fit and raise ``ValueError``.
        """
        buf = self._buf
        cap = self.capacity
        n = len(payload)
        need = 4 + n
        if need > cap:
            raise ValueError(
                f"frame of {n} bytes exceeds shm ring capacity {cap}"
            )
        tail = self._tail
        head = _U64.unpack_from(buf, 8)[0]
        if need > cap - (tail - head):
            buf[17] = 1  # stalled: consumer credits when space frees
            return False, False
        base = self.HEADER
        pos = tail % cap
        if pos + 4 <= cap:
            _LEN.pack_into(buf, base + pos, n)
        else:
            pre = _LEN.pack(n)
            k = cap - pos
            buf[base + pos : base + cap] = pre[:k]
            buf[base : base + 4 - k] = pre[k:]
        pos = (pos + 4) % cap
        if n:
            if pos + n <= cap:
                buf[base + pos : base + pos + n] = payload
            else:
                k = cap - pos
                view = memoryview(payload)
                buf[base + pos : base + cap] = view[:k]
                buf[base : base + n - k] = view[k:]
        was_empty = head == tail
        self._tail = tail + need
        _U64.pack_into(buf, 0, self._tail)  # publish after the data
        return True, was_empty

    # -- consumer side ------------------------------------------------------

    def read_frames(self, limit: Optional[int] = None) -> Tuple[List[bytes], bool]:
        """Drain complete frames; ``(frames, credit_due)``.

        ``credit_due`` is True when the drain freed space a stalled
        producer is waiting on — the caller must send a doorbell byte
        so the producer retries.  Each frame is one copy out of shared
        memory (``bytes``), which downstream lazy decoding wraps
        without further copies.
        """
        buf = self._buf
        cap = self.capacity
        base = self.HEADER
        head = self._head
        frames: List[bytes] = []
        while True:
            tail = _U64.unpack_from(buf, 0)[0]
            if head == tail:
                break
            pos = head % cap
            if pos + 4 <= cap:
                (n,) = _LEN.unpack_from(buf, base + pos)
            else:
                k = cap - pos
                (n,) = _LEN.unpack(
                    bytes(buf[base + pos : base + cap])
                    + bytes(buf[base : base + 4 - k])
                )
            if tail - head < 4 + n:  # defensive: producer publishes last
                break
            pos = (pos + 4) % cap
            if pos + n <= cap:
                frames.append(bytes(buf[base + pos : base + pos + n]))
            else:
                k = cap - pos
                frames.append(
                    bytes(buf[base + pos : base + cap])
                    + bytes(buf[base : base + n - k])
                )
            head += 4 + n
            if limit is not None and len(frames) >= limit:
                break
        credit = False
        if head != self._head:
            self._head = head
            _U64.pack_into(buf, 8, head)  # publish after the copy-out
            if buf[17]:
                buf[17] = 0
                credit = True
        return frames, credit

    def read_frames_inplace(self, limit: Optional[int] = None) -> List[object]:
        """Drain complete frames **without copying them out of the ring**.

        Frames that sit contiguously in the ring come back as
        ``memoryview`` slices aliasing shared memory directly — zero
        copies; frames that wrap the ring edge are stitched into
        ``bytes`` as before (rare: only the frame straddling the wrap
        point).  The consumer cursor is advanced privately but **not
        published**: the producer still sees the old head, so the
        aliased bytes cannot be overwritten until the caller finishes
        with the views and calls :meth:`commit_read`.  Interleaving a
        plain :meth:`read_frames` between the two is not allowed.
        """
        buf = self._buf
        cap = self.capacity
        base = self.HEADER
        head = self._head
        frames: List[object] = []
        while True:
            tail = _U64.unpack_from(buf, 0)[0]
            if head == tail:
                break
            pos = head % cap
            if pos + 4 <= cap:
                (n,) = _LEN.unpack_from(buf, base + pos)
            else:
                k = cap - pos
                (n,) = _LEN.unpack(
                    bytes(buf[base + pos : base + cap])
                    + bytes(buf[base : base + 4 - k])
                )
            if tail - head < 4 + n:  # defensive: producer publishes last
                break
            pos = (pos + 4) % cap
            if pos + n <= cap:
                frames.append(buf[base + pos : base + pos + n])
            else:
                k = cap - pos
                frames.append(
                    bytes(buf[base + pos : base + cap])
                    + bytes(buf[base : base + n - k])
                )
            head += 4 + n
            if limit is not None and len(frames) >= limit:
                break
        self._head = head
        return frames

    def commit_read(self) -> bool:
        """Publish the consumer cursor after an in-place read.

        Returns True when the commit freed space a stalled producer is
        waiting on (the caller owes it a credit doorbell).  Callers
        must drop every ``memoryview`` obtained from
        :meth:`read_frames_inplace` (or copy what they keep) before the
        producer can reuse the bytes — i.e. before calling this.
        """
        buf = self._buf
        if self._head == _U64.unpack_from(buf, 8)[0]:
            return False
        _U64.pack_into(buf, 8, self._head)
        if buf[17]:
            buf[17] = 0
            return True
        return False

    @property
    def readable(self) -> bool:
        """True when at least one unread byte is in the ring."""
        if not self._open:
            return False
        return _U64.unpack_from(self._buf, 0)[0] != self._head

    # -- lifecycle ----------------------------------------------------------

    def mark_closed(self) -> None:
        """Set the shared orderly-close flag (peer sees it on drain)."""
        try:
            self._buf[16] = 1
        except (ValueError, TypeError):
            pass

    @property
    def peer_closed(self) -> bool:
        try:
            return bool(self._buf[16])
        except (ValueError, TypeError):
            return True

    def close(self) -> None:
        """Unmap the segment (idempotent)."""
        if not self._open:
            return
        self._open = False
        with _live_lock:
            _live_segments.discard(self.name)
        try:
            self._shm.close()
        except (BufferError, OSError):  # pragma: no cover - exported view
            pass

    def unlink(self) -> None:
        """Remove the segment name (idempotent; either side may call).

        Both ends of a dead link unlink so the segment cannot outlive
        a SIGKILLed creator.  The attach side was already unregistered
        from the resource tracker (see :func:`_untrack`), so it skips
        ``SharedMemory.unlink``'s second unregister; the creator side
        unregisters even when the peer removed the file first.
        """
        with _live_lock:
            _created_names.discard(self.name)
        if self._created:
            try:
                self._shm.unlink()
            except FileNotFoundError:
                # The peer unlinked first; the file is gone but our
                # tracker registration is not — drop it or the tracker
                # warns about a "leaked" segment at interpreter exit.
                try:
                    from multiprocessing import resource_tracker

                    resource_tracker.unregister(
                        self._shm._name, "shared_memory"
                    )
                except Exception:
                    pass
            except OSError:
                pass
        else:
            try:
                from multiprocessing.shared_memory import _posixshmem

                _posixshmem.shm_unlink(self._shm._name)
            except (ImportError, FileNotFoundError, OSError):
                pass


# -- negotiation ------------------------------------------------------------


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    data = b""
    while len(data) < n:
        chunk = sock.recv(n - len(data))
        if not chunk:
            raise ConnectionError("peer closed during shm handshake")
        data += chunk
    return data


def offer_shm(
    sock: socket.socket, link_id: int, capacity: int = DEFAULT_CAPACITY
) -> Optional[Tuple[ShmRing, ShmRing]]:
    """Offer a shared-memory upgrade on a just-connected socket.

    Sends the flagged hello plus the segment offer and waits for the
    acceptor's verdict.  Returns ``(tx, rx)`` rings on ACK; on NAK —
    or if this host cannot create segments at all — sends/settles a
    plain hello and returns ``None`` so the caller proceeds over TCP.
    """
    from .tcp import HELLO_SHM_FLAG

    tx = rx = None
    try:
        tx = ShmRing.create(capacity)
        rx = ShmRing.create(capacity)
    except Exception:
        if tx is not None:
            tx.close()
            tx.unlink()
        sock.sendall(_LEN.pack(link_id))
        return None
    offer = json.dumps(
        {"tx": tx.name, "rx": rx.name, "cap": capacity}
    ).encode("ascii")
    try:
        sock.sendall(
            _LEN.pack(link_id | HELLO_SHM_FLAG) + _LEN.pack(len(offer)) + offer
        )
        verdict = _recv_exact(sock, 1)
    except OSError:
        _destroy(tx, rx)
        raise
    if verdict == _ACK:
        return tx, rx
    _destroy(tx, rx)
    return None


def accept_shm_offer(
    sock: socket.socket, allow: bool = True
) -> Optional[Tuple[ShmRing, ShmRing]]:
    """Consume the offer frame following a flagged hello; ACK or NAK.

    Returns the acceptor-perspective ``(tx, rx)`` rings on success
    (the connector's ``rx`` is our ``tx``), or ``None`` after a NAK —
    the socket then simply stays a plain TCP link, which is the
    transparent-fallback contract.
    """
    (n,) = _LEN.unpack(_recv_exact(sock, 4))
    if n > _MAX_OFFER:
        raise ConnectionError(f"oversized shm offer ({n} bytes)")
    doc = json.loads(_recv_exact(sock, n))
    pair = None
    if allow:
        rx = tx = None
        try:
            capacity = int(doc["cap"])
            rx = ShmRing.attach(doc["tx"], capacity)
            tx = ShmRing.attach(doc["rx"], capacity)
            pair = (tx, rx)
        except Exception:
            if rx is not None:
                rx.close()
            pair = None
    sock.sendall(_ACK if pair else _NAK)
    return pair


def _destroy(*rings: ShmRing) -> None:
    for ring in rings:
        ring.close()
        ring.unlink()


# -- passive channel end ----------------------------------------------------


class ShmChannelEnd:
    """A co-located link end for passive processes (front-end,
    back-ends): a reader thread selects on the doorbell socket and
    drains the receive ring into an :class:`Inbox`, mirroring
    :class:`~repro.transport.tcp.TcpChannelEnd`'s contract exactly
    (payload deliveries, ``None`` on close, pause/resume hooks).

    Event-loop processes use
    :class:`repro.transport.eventloop.ShmLink` instead — same rings,
    no thread.
    """

    #: Transport classification for the obs ``links{kind=...}`` census.
    transport_kind = "shm"

    #: A send blocked this long on a full ring means the peer stopped
    #: draining entirely; surface it as a dead link, like a TCP send
    #: that never completes.
    SEND_TIMEOUT = 30.0

    def __init__(
        self,
        sock: socket.socket,
        tx: ShmRing,
        rx: ShmRing,
        link_id: int,
        inbox: Inbox,
        owner: bool = False,
    ):
        self.link_id = link_id
        self._sock = sock
        self._tx = tx
        self._rx = rx
        self._inbox = inbox
        self._owner = owner
        self._send_lock = threading.Lock()
        self._release_lock = threading.Lock()
        self._released = False
        self._closed = False
        self.frames_out = 0
        self.bytes_out = 0
        self.frames_in = 0
        self.bytes_in = 0
        # Set whenever a doorbell arrives: any byte may be the credit
        # a blocked sender is waiting on.
        self._space = threading.Event()
        self._reading = threading.Event()
        self._reading.set()
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # e.g. a socketpair doorbell in tests
        sock.setblocking(False)
        self._reader = threading.Thread(
            target=self._read_loop, name=f"shm-reader-{link_id}", daemon=True
        )
        self._reader.start()

    def pause_reading(self) -> None:
        """Stall ring drains before the next batch (fault injection)."""
        self._reading.clear()

    def resume_reading(self) -> None:
        self._reading.set()

    def send(self, payload) -> None:
        if self._closed:
            raise ConnectionError(f"shm link {self.link_id} is closed")
        if not isinstance(payload, (bytes, bytearray, memoryview)):
            raise TypeError("channel payloads must be bytes")
        deadline = time.monotonic() + self.SEND_TIMEOUT
        with self._send_lock:
            while True:
                if self._closed:
                    raise ConnectionError(
                        f"shm link {self.link_id} is closed"
                    )
                try:
                    ok, was_empty = self._tx.try_write(payload)
                except ValueError as exc:
                    # Released mapping (concurrent close) or an
                    # impossible frame: either way this link is done.
                    raise ConnectionError(str(exc)) from exc
                if ok:
                    break
                # Ring full: the peer credits us via doorbell once it
                # drains (try_write set the stalled flag).  Short poll
                # as a safety net against a lost credit.
                self._space.clear()
                self._space.wait(timeout=0.05)
                if time.monotonic() > deadline:
                    raise ConnectionError(
                        f"shm link {self.link_id}: send timed out "
                        f"(peer not draining)"
                    )
            self.frames_out += 1
            self.bytes_out += len(payload) + _LEN.size
            if was_empty:
                self._doorbell()

    def _doorbell(self) -> None:
        try:
            self._sock.send(b"\x01")
        except (BlockingIOError, InterruptedError):
            pass  # socket buffer full: doorbells are already pending
        except OSError:
            pass  # dying link: the reader surfaces it via EOF

    def link_metrics(self) -> dict:
        """Point-in-time transport numbers for this link (JSON-able)."""
        return {
            "link_id": self.link_id,
            "kind": "shm",
            "frames_in": self.frames_in,
            "bytes_in": self.bytes_in,
            "frames_out": self.frames_out,
            "bytes_out": self.bytes_out,
            "closed": self._closed,
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._tx.mark_closed()
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        # The reader thread notices EOF within one poll interval and
        # performs the final drain + release; if it is already gone,
        # release here.
        if not self._reader.is_alive():
            self._release()

    @property
    def closed(self) -> bool:
        return self._closed

    # -- reader -------------------------------------------------------------

    def _read_loop(self) -> None:
        sock = self._sock
        rx = self._rx
        eof = False
        while not eof and not self._closed:
            try:
                readable, _, _ = select.select([sock], [], [], 0.05)
            except (OSError, ValueError):
                break
            if readable:
                while True:
                    try:
                        data = sock.recv(4096)
                    except (BlockingIOError, InterruptedError):
                        break
                    except OSError:
                        data = b""
                    if not data:
                        eof = True
                        break
                    if len(data) < 4096:
                        break
                self._space.set()  # any doorbell may be a credit
            self._reading.wait()
            self._drain_rx(rx)
            if rx.peer_closed and not rx.readable:
                eof = True
        # Final drain: frames the peer wrote before closing are valid.
        try:
            self._drain_rx(rx)
        except Exception:
            pass
        self._closed = True
        self._space.set()
        self._release()
        self._inbox._deliver(self.link_id, None)

    def _drain_rx(self, rx: ShmRing) -> None:
        frames, credit = rx.read_frames()
        if credit:
            self._doorbell()
        for frame in frames:
            self.frames_in += 1
            self.bytes_in += len(frame) + _LEN.size
            self._inbox._deliver(self.link_id, frame)

    def _release(self) -> None:
        with self._release_lock:
            if self._released:
                return
            self._released = True
        try:
            self._sock.close()
        except OSError:
            pass
        for ring in (self._tx, self._rx):
            ring.close()
            # Both sides unlink: if the creator was SIGKILLed its
            # segments must not outlive the link, and a double unlink
            # is a caught FileNotFoundError.  Existing mappings stay
            # valid, so a peer still draining is unaffected.
            ring.unlink()
