"""Point-to-point channels between MRNet processes.

Real MRNet processes talk over TCP connections.  The threaded runtime
models each parent↔child connection as a :class:`Channel`: a pair of
one-directional mailboxes carrying *byte strings* (framed packet
batches).  Keeping the inter-process payload as bytes — never Python
objects — forces every hop through the packet codec, mirroring the
serialize/deserialize boundary of the real system while staying
in-process.

Each process owns one :class:`Inbox`; all channels that terminate at a
process deliver into that inbox tagged with the channel's id, so a
process event loop blocks on a single queue (like ``select`` over its
socket set).
"""

from __future__ import annotations

import itertools
import queue
import threading
from dataclasses import dataclass
from typing import Callable, Optional, Tuple

__all__ = ["ChannelClosed", "Inbox", "Channel", "ChannelEnd"]

_channel_ids = itertools.count()


class ChannelClosed(ConnectionError):
    """Raised on send to / drain of a closed channel."""


@dataclass(frozen=True)
class _Delivery:
    """One inbound message: which link it came from and its payload."""

    link_id: int
    payload: Optional[bytes]  # None signals the peer closed the link


class Inbox:
    """A process's single inbound mailbox, fed by many channels.

    ``on_deliver`` (when set) is invoked after every delivery, from the
    *sender's* thread.  An event loop blocked in ``select`` installs
    its wakeup here so in-process channel traffic interrupts the wait
    exactly like socket readiness does.
    """

    def __init__(self):
        self._q: "queue.Queue[_Delivery]" = queue.Queue()
        self.on_deliver: Optional[Callable[[], None]] = None

    def get(self, timeout: Optional[float] = None) -> Tuple[int, Optional[bytes]]:
        """Block for the next delivery; ``(link_id, payload)``.

        ``payload`` of ``None`` means the link closed.  Raises
        :class:`queue.Empty` on timeout.
        """
        d = self._q.get(timeout=timeout)
        return d.link_id, d.payload

    def get_nowait(self) -> Tuple[int, Optional[bytes]]:
        d = self._q.get_nowait()
        return d.link_id, d.payload

    def empty(self) -> bool:
        return self._q.empty()

    def _deliver(self, link_id: int, payload: Optional[bytes]) -> None:
        self._q.put(_Delivery(link_id, payload))
        callback = self.on_deliver
        if callback is not None:
            callback()


class ChannelEnd:
    """One end of a channel: sends to the peer's inbox."""

    #: Transport classification for the obs ``links{kind=...}`` census.
    transport_kind = "channel"

    def __init__(self, link_id: int, peer_inbox: Inbox, state: "_ChannelState"):
        self.link_id = link_id
        self._peer_inbox = peer_inbox
        self._state = state

    def send(self, payload: bytes) -> None:
        """Deliver *payload* to the peer process.

        ``bytes`` payloads (the normal case — ``PacketBuffer.encode``
        output) are delivered as-is with no copy; other buffer types
        are snapshotted so the receiver owns immutable bytes.
        """
        if self._state.closed:
            raise ChannelClosed(f"channel {self.link_id} is closed")
        if not isinstance(payload, bytes):
            if not isinstance(payload, (bytearray, memoryview)):
                raise TypeError("channel payloads must be bytes")
            payload = bytes(payload)
        self._peer_inbox._deliver(self.link_id, payload)

    def close(self) -> None:
        """Close the channel; the peer sees an end-of-link delivery."""
        with self._state.lock:
            if self._state.closed:
                return
            self._state.closed = True
        self._peer_inbox._deliver(self.link_id, None)

    @property
    def closed(self) -> bool:
        return self._state.closed


class _ChannelState:
    """Shared closed-flag between the two ends."""

    def __init__(self):
        self.closed = False
        self.lock = threading.Lock()


class Channel:
    """A bidirectional link between two processes.

    Both directions share one ``link_id`` so that each side can key
    its routing tables consistently (a node's "child link 3" and that
    child's "parent link 3" are the same connection).
    """

    def __init__(self, inbox_a: Inbox, inbox_b: Inbox, link_id: Optional[int] = None):
        self.link_id = next(_channel_ids) if link_id is None else link_id
        state = _ChannelState()
        # End A sends into B's inbox and vice versa.
        self.end_a = ChannelEnd(self.link_id, inbox_b, state)
        self.end_b = ChannelEnd(self.link_id, inbox_a, state)

    def __repr__(self) -> str:
        return f"Channel(id={self.link_id})"
