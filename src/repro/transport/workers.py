"""Worker pool for CPU-heavy filter stages.

A colocated event loop hosts many comm nodes on one thread; a single
big ndarray reduction would stall every sibling for its duration.
:class:`FilterWorkerPool` lets a :class:`~repro.core.stream_manager.
StreamManager` ship the transform call to a small pool of daemon
threads and collect the result back *on the loop thread* at the next
iteration, so the loop itself never blocks on filter CPU.

Ordering is the whole contract: waves of one stream must pass through
its transform in arrival order (the transform closure mutates
per-stream ``transform_state``).  The pool therefore serializes tasks
**per key** — tasks sharing a key run one at a time, FIFO, while tasks
of different keys spread across the workers.  Completions are parked
in a deque and handed back only through :meth:`drain_completed`,
which the event loop calls on its own thread; callbacks thus never
race the loop.
"""

from __future__ import annotations

import collections
import queue
import threading
from typing import Callable, Deque, Dict, List, Optional, Tuple

__all__ = ["FilterWorkerPool"]


class FilterWorkerPool:
    """N daemon threads running keyed, per-key-FIFO tasks.

    Parameters
    ----------
    n_workers:
        Thread count; ``0`` is allowed and makes :meth:`submit` refuse
        (callers check :attr:`enabled` and run inline instead).
    wake:
        Called (from a worker thread) whenever a completion is parked,
        so a sleeping event loop re-selects and drains it.
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry` receiving
        ``worker_tasks_offloaded`` / ``worker_tasks_completed``
        counters and a ``worker_queue_depth`` gauge.
    """

    def __init__(
        self,
        n_workers: int,
        wake: Optional[Callable[[], None]] = None,
        registry=None,
        name: str = "filter-worker",
    ):
        self.n_workers = max(0, int(n_workers))
        self._wake = wake
        self._lock = threading.Lock()
        self._tasks: "queue.SimpleQueue" = queue.SimpleQueue()
        # key -> deque of tasks waiting for the key's in-flight task.
        # Presence of a key means a task for it is queued or running.
        self._key_busy: Dict[object, Deque[Tuple[Callable, Callable]]] = {}
        self._done: Deque[Tuple[Callable, object, Optional[BaseException]]] = (
            collections.deque()
        )
        self._depth = 0
        self._shutdown = False
        self._c_offloaded = self._c_completed = None
        if registry is not None:
            self._c_offloaded = registry.counter(
                "worker_tasks_offloaded", "Filter transforms shipped to the worker pool"
            )
            self._c_completed = registry.counter(
                "worker_tasks_completed", "Offloaded transforms finished by workers"
            )
            registry.gauge(
                "worker_queue_depth",
                "Offloaded transforms queued or running",
                fn=lambda: self._depth,
            )
        self._threads: List[threading.Thread] = []
        for i in range(self.n_workers):
            t = threading.Thread(target=self._run, name=f"{name}-{i}", daemon=True)
            t.start()
            self._threads.append(t)

    @property
    def enabled(self) -> bool:
        return self.n_workers > 0 and not self._shutdown

    @property
    def queue_depth(self) -> int:
        """Tasks currently queued or running."""
        return self._depth

    # -- producer side (loop thread) ---------------------------------------

    def submit(self, key: object, fn: Callable[[], object], callback) -> None:
        """Queue ``fn`` for a worker; ``callback(result, exc)`` later.

        Tasks sharing *key* run strictly one at a time in submission
        order.  The callback fires on the thread that calls
        :meth:`drain_completed` — for an event loop, the loop thread.
        """
        if not self.enabled:
            raise RuntimeError("worker pool is disabled or shut down")
        with self._lock:
            self._depth += 1
            waiting = self._key_busy.get(key)
            if waiting is None:
                self._key_busy[key] = collections.deque()
                self._tasks.put((key, fn, callback))
            else:
                waiting.append((fn, callback))
        if self._c_offloaded is not None:
            self._c_offloaded.value += 1

    def drain_completed(self) -> int:
        """Fire parked completion callbacks; returns how many ran."""
        n = 0
        while True:
            try:
                callback, result, exc = self._done.popleft()
            except IndexError:
                return n
            n += 1
            callback(result, exc)

    # -- worker side --------------------------------------------------------

    def _run(self) -> None:
        while True:
            task = self._tasks.get()
            if task is None:
                return
            key, fn, callback = task
            result = exc = None
            try:
                result = fn()
            except BaseException as e:  # surface to the loop, don't die
                exc = e
            with self._lock:
                self._depth -= 1
                self._done.append((callback, result, exc))
                if self._c_completed is not None:
                    self._c_completed.value += 1
                waiting = self._key_busy.get(key)
                if waiting:
                    next_fn, next_cb = waiting.popleft()
                    self._tasks.put((key, next_fn, next_cb))
                else:
                    self._key_busy.pop(key, None)
            wake = self._wake
            if wake is not None:
                wake()

    def shutdown(self, join: bool = True) -> None:
        self._shutdown = True
        for _ in self._threads:
            self._tasks.put(None)
        if join:
            for t in self._threads:
                t.join(timeout=2.0)
        self._threads.clear()
